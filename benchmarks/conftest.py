"""Shared infrastructure for the benchmark harness.

Every benchmark file regenerates one table or figure of the paper. The
``report`` fixture renders a paper-vs-measured table, writes it through
pytest's captured stdout *and* to the live terminal (so ``pytest
benchmarks/ | tee bench_output.txt`` records it), and appends it to
``.artifacts/experiments/`` for the EXPERIMENTS.md record.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.bench.context import artifacts_dir, get_context
from repro.bench.tables import format_table
from repro.bench.trajectory import record as record_trajectory


def _emit(text: str, name: str) -> None:
    print(text)
    # Captured stdout is hidden for passing tests; echo to the real
    # terminal too so the tee'd bench log contains every table.
    try:
        sys.__stdout__.write(text + "\n")
        sys.__stdout__.flush()
    except Exception:
        pass
    out_dir = artifacts_dir() / "experiments"
    out_dir.mkdir(parents=True, exist_ok=True)
    with (out_dir / f"{name}.txt").open("a") as f:
        f.write(text + "\n")


def pytest_runtest_logreport(report):
    """Append every passing benchmark's wall-clock to the perf trajectory.

    Writes ``BENCH_<yyyymmdd>.json`` at the repo root (see
    :mod:`repro.bench.trajectory`); disable with ``REPRO_BENCH_FILE=""``.
    """
    if report.when != "call" or not report.passed:
        return
    record_trajectory(report.nodeid, {"duration_s": report.duration})


@pytest.fixture
def trajectory(request):
    """``trajectory(metrics, meta=...)`` — record richer benchmark metrics."""

    def _record(metrics, meta=None):
        record_trajectory(request.node.nodeid, metrics, meta=meta)

    return _record


@pytest.fixture
def report(request):
    """``report(title, headers, rows, note="...")`` — render and record."""

    def _report(title, headers, rows, note=""):
        _emit(format_table(title, headers, rows, note), request.node.name)

    return _report


@pytest.fixture(scope="session")
def ctx3():
    """The java/spark/flink context (most experiments)."""
    return get_context(("java", "spark", "flink"))


@pytest.fixture(scope="session")
def ctx_pg():
    """The java/spark/flink/postgres context (Figs. 12(d), 13)."""
    return get_context(("java", "spark", "flink", "postgres"))


@pytest.fixture(scope="session")
def ctx2():
    """A two-platform context (Fig. 1 uses two underlying platforms)."""
    return get_context(("java", "spark"), train_points=8000)


def fmt_runtime(value: float) -> str:
    """Render a measured runtime like the paper's figures annotate bars."""
    if value == float("inf"):
        return "out-of-memory"
    if value >= 3600.0:
        return "aborted-1h"
    return f"{value:.1f}"
