"""Shared computation for the Fig. 11 / Table III benchmarks.

The single-platform experiment (8 queries × dataset sizes × 3 platforms ×
2 optimizers) is the most expensive benchmark; Fig. 11 prints its bars and
choices, Table III its summary. This module computes the grid once per
process and caches it.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List

from repro.rheem.datasets import GB
from repro.workloads import crocopr, kmeans, sgd, simwords, sgd as _sgd
from repro.workloads import tpch, word2nvec, wordcount

#: query name -> (builder, list of dataset sizes) — the Fig. 11 grid.
FIG11_GRID = {
    "WordCount": (wordcount.plan, wordcount.FIG11_SIZES),
    "Word2NVec": (word2nvec.plan, word2nvec.FIG11_SIZES),
    "SimWords": (simwords.plan, simwords.FIG11_SIZES),
    "Aggregate (Q1)": (tpch.q1, tpch.FIG11_SIZES),
    "Join (Q3)": (tpch.q3, tpch.FIG11_SIZES),
    "K-means": (kmeans.plan, kmeans.FIG11_SIZES[:3]),
    "SGD": (sgd.plan, sgd.FIG11_SIZES[:5]),
    "CrocoPR": (crocopr.plan, crocopr.FIG11_SIZES[:5]),
}


@dataclass
class Fig11Case:
    query: str
    size_bytes: float
    bars: Dict[str, float]  # per-platform runtimes (inf = failed)
    rheemix_runtime: float
    rheemix_platforms: str
    robopt_runtime: float
    robopt_platforms: str

    @property
    def best_single(self) -> float:
        return min(self.bars.values())

    def diff(self, runtime: float) -> float:
        """Difference from the optimal single-platform runtime (>= 0)."""
        if runtime == float("inf"):
            return float("inf")
        return max(0.0, runtime - self.best_single)


@lru_cache(maxsize=1)
def fig11_results() -> List[Fig11Case]:
    """Run the whole single-platform experiment once per process."""
    from repro.bench.context import get_context

    ctx = get_context(("java", "spark", "flink"))
    robopt = ctx.robopt()
    rheemix = ctx.rheemix()
    cases: List[Fig11Case] = []
    for query, (builder, sizes) in FIG11_GRID.items():
        for size in sizes:
            plan = builder(size)
            bars = ctx.single_platform_runtimes(plan)
            r_rob = robopt.optimize(plan).execution_plan
            r_rx = rheemix.optimize(plan).execution_plan
            cases.append(
                Fig11Case(
                    query=query,
                    size_bytes=size,
                    bars=bars,
                    rheemix_runtime=ctx.measure(r_rx),
                    rheemix_platforms="+".join(r_rx.platforms_used()),
                    robopt_runtime=ctx.measure(r_rob),
                    robopt_platforms="+".join(r_rob.platforms_used()),
                )
            )
    return cases
