"""Table II — The real queries and datasets of the evaluation.

Not an experiment per se, but the harness verifies that every workload
plan has exactly the operator count the paper reports and spans the
dataset-size ranges the figures sweep, and prints the table.
"""

import pytest

from repro.rheem.datasets import GB, MB, PAPER_DATASETS
from repro.workloads import (
    TABLE2,
    crocopr,
    kmeans,
    sgd,
    simwords,
    tpch,
    word2nvec,
    wordcount,
)

#: query -> (expected ops, dataset, size range of the figures)
EXPECTED = {
    "WordCount": (6, "wikipedia", "30MB - 1TB"),
    "Word2NVec": (14, "wikipedia", "3MB - 150MB"),
    "SimWords": (26, "wikipedia", "3MB - 150MB"),
    "TPC-H Q1": (7, "tpch", "1GB - 1TB"),
    "TPC-H Q3": (18, "tpch", "1GB - 1TB"),
    "Kmeans": (7, "uscensus1990", "36MB - 1TB"),
    "SGD": (6, "higgs", "740MB - 1TB"),
    "CrocoPR": (22, "dbpedia", "200MB - 1TB"),
}


def _build(name):
    module, _, _ = TABLE2[name]
    if name == "TPC-H Q1":
        return module.q1()
    if name == "TPC-H Q3":
        return module.q3()
    return module.plan()


def test_table2_operator_counts(benchmark, report):
    plans = benchmark.pedantic(
        lambda: {name: _build(name) for name in TABLE2}, rounds=1, iterations=1
    )
    rows = []
    for name, plan in plans.items():
        expected_ops, dataset, size_range = EXPECTED[name]
        topo = plan.topology_counts()
        rows.append(
            [
                name,
                plan.n_operators,
                expected_ops,
                dataset,
                size_range,
                f"p{topo.pipeline}/j{topo.juncture}/r{topo.replicate}/l{topo.loop}",
            ]
        )
        assert plan.n_operators == expected_ops, name
        plan.validate()
    report(
        "Table II — real queries and datasets",
        ["query", "#operators", "paper", "dataset", "sizes", "topologies"],
        rows,
        note="topologies: pipelines/junctures/replicates/loops in the plan",
    )


def test_table2_every_query_is_optimizable(benchmark, report, ctx3):
    """Every Table II plan flows through the full optimizer."""
    robopt = ctx3.robopt()
    rows = []

    def run_all():
        out = []
        for name in TABLE2:
            plan = _build(name)
            result = robopt.optimize(plan)
            out.append((name, result))
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for name, result in results:
        rows.append(
            [
                name,
                "+".join(result.execution_plan.platforms_used()),
                result.predicted_runtime,
                result.stats.latency_s * 1e3,
            ]
        )
    report(
        "Table II companion — Robopt on every query (default sizes)",
        ["query", "chosen platforms", "predicted runtime (s)", "opt. latency (ms)"],
        rows,
    )
    assert len(rows) == len(TABLE2)
