"""Table III — Summary of Fig. 11: runtime difference from the optimum.

Paper (seconds):

===========  ==============  ==============  =============  =============
query        RHEEMix max     RHEEMix avg     Robopt max     Robopt avg
===========  ==============  ==============  =============  =============
WordCount    0               0               0              0
Word2NVec    8               5               1              0.2
SimWords     0               0               0              0
Aggregate    305             73.8            3              0.6
Join         1152            317.2           4              0.8
K-means      5               1.25            0              0
SGD          343             120             343            63
CrocoPR      5412            828             0              0
===========  ==============  ==============  =============  =============

The shape to reproduce: Robopt's differences are zero-to-small almost
everywhere, while RHEEMix has a few catastrophic misses.
"""

import numpy as np
import pytest

from bench_helpers import FIG11_GRID, fig11_results


def _summaries(cases):
    out = {}
    for query in FIG11_GRID:
        rows = [c for c in cases if c.query == query]
        rx = [c.diff(c.rheemix_runtime) for c in rows]
        rb = [c.diff(c.robopt_runtime) for c in rows]
        finite = lambda xs: [x if np.isfinite(x) else 7200.0 for x in xs]
        rx, rb = finite(rx), finite(rb)
        out[query] = (max(rx), float(np.mean(rx)), max(rb), float(np.mean(rb)))
    return out


def test_table3_diff_from_optimal(benchmark, report):
    cases = benchmark.pedantic(fig11_results, rounds=1, iterations=1)
    summaries = _summaries(cases)
    rows = [
        [query, rx_max, rx_avg, rb_max, rb_avg]
        for query, (rx_max, rx_avg, rb_max, rb_avg) in summaries.items()
    ]
    report(
        "Table III — runtime difference from the optimal single platform (s)",
        ["query", "RHEEMix max", "RHEEMix avg", "Robopt max", "Robopt avg"],
        rows,
        note="negative-side differences (multi-platform plans beating every "
        "single platform) count as 0, as in the paper",
    )
    total_rx = sum(v[1] for v in summaries.values())
    total_rb = sum(v[1] for v in summaries.values())
    robopt_avgs = [v[3] for v in summaries.values()]
    rheemix_avgs = [v[1] for v in summaries.values()]
    assert sum(robopt_avgs) <= sum(rheemix_avgs), (
        "Robopt's aggregate deviation from optimal must not exceed RHEEMix's"
    )
    # Robopt's worst per-query average deviation stays moderate.
    assert max(robopt_avgs) <= max(max(rheemix_avgs), 100.0)
