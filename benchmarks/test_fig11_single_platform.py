"""Fig. 11 — Single-platform execution mode.

Paper: per-platform runtime bars for the eight Table II queries over
growing dataset sizes, with triangles marking RHEEMix's (red) and
Robopt's (green) choices. Robopt picks the fastest platform in 84% of
the cases vs. 43% for RHEEMix, and its misses cost milliseconds-to-
seconds while RHEEMix's cost minutes (up to 90 min for CrocoPR at 1 TB).

Note: in the reproduction the optimizers are free to combine platforms
(as in the paper's general setting); a "correct choice" means the chosen
plan is at least as fast as the best single platform (within 5%).
"""

import pytest

from bench_helpers import FIG11_GRID, fig11_results
from conftest import fmt_runtime

GB = 1024 ** 3


@pytest.mark.parametrize("query", list(FIG11_GRID))
def test_fig11_bars_and_choices(benchmark, report, query):
    cases = benchmark.pedantic(fig11_results, rounds=1, iterations=1)
    rows = []
    for case in cases:
        if case.query != query:
            continue
        best = min(case.bars, key=case.bars.get)
        rows.append(
            [
                f"{case.size_bytes / GB:.3f}GB",
                fmt_runtime(case.bars.get("java", float("inf"))),
                fmt_runtime(case.bars.get("spark", float("inf"))),
                fmt_runtime(case.bars.get("flink", float("inf"))),
                best,
                f"{case.rheemix_platforms}({fmt_runtime(case.rheemix_runtime)})",
                f"{case.robopt_platforms}({fmt_runtime(case.robopt_runtime)})",
            ]
        )
    report(
        f"Fig. 11 — {query}: per-platform runtimes and optimizer choices",
        ["size", "java", "spark", "flink", "fastest", "RHEEMix", "Robopt"],
        rows,
        note="runtimes in seconds; 'aborted-1h' and 'out-of-memory' as in the paper",
    )
    assert rows, "no cases ran for this query"


def test_fig11_choice_rates(benchmark, report):
    """The paper's headline: Robopt chooses the fastest platform in ~84%
    of the cases, RHEEMix in ~43%."""
    cases = benchmark.pedantic(fig11_results, rounds=1, iterations=1)
    tolerance = 1.05
    robopt_good = sum(
        1 for c in cases if c.robopt_runtime <= c.best_single * tolerance
    )
    rheemix_good = sum(
        1 for c in cases if c.rheemix_runtime <= c.best_single * tolerance
    )
    n = len(cases)
    report(
        "Fig. 11 summary — fastest-choice rate",
        ["optimizer", "correct choices", "total", "rate", "paper"],
        [
            ["Robopt", robopt_good, n, robopt_good / n, "84%"],
            ["RHEEMix", rheemix_good, n, rheemix_good / n, "43%"],
        ],
        note="correct = chosen plan within 5% of the best single platform",
    )
    assert robopt_good / n > 0.65, "Robopt should usually choose the fastest"
    assert robopt_good >= rheemix_good, "Robopt should match or beat RHEEMix"
