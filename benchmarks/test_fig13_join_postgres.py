"""Fig. 13 — The Join query (TPC-H Q3) with data stored in Postgres.

Paper: even though the data lives in Postgres, Robopt is up to 2.5×
faster than executing the join there: it pushes the projections/filters
into Postgres and moves the slimmed-down data into Spark for the join and
aggregation. RHEEMix produces the same plan in the paper.

The "Postgres" baseline executes everything Postgres can host inside
Postgres (the classical "run it where the data is" practice) and only
ships the final result out.
"""

import pytest

from repro.rheem.datasets import GB
from repro.rheem.execution_plan import ExecutionPlan
from repro.workloads import tpch


def _postgres_baseline(ctx, plan) -> ExecutionPlan:
    """All relational work in Postgres; the small remainder on Java."""
    pg = ctx.registry["postgres"]
    assignment = {
        op_id: ("postgres" if pg.supports(op.kind_name) else "java")
        for op_id, op in plan.operators.items()
    }
    return ExecutionPlan(plan, assignment, ctx.registry)


def test_fig13_join_in_postgres(benchmark, report, ctx_pg):
    robopt, rheemix = ctx_pg.robopt(), ctx_pg.rheemix()
    rows = []
    speedups = []
    for size in tpch.FIG13_SIZES:
        plan = tpch.q3(size, in_postgres=True)
        t_pg = ctx_pg.measure(_postgres_baseline(ctx_pg, plan))
        rob = robopt.optimize(plan).execution_plan
        rx = rheemix.optimize(plan).execution_plan
        t_rob, t_rx = ctx_pg.measure(rob), ctx_pg.measure(rx)
        speedups.append(t_pg / t_rob)
        rows.append(
            [
                f"{size / GB:.0f}GB",
                t_pg,
                f"{'+'.join(rx.platforms_used())}({t_rx:.1f})",
                f"{'+'.join(rob.platforms_used())}({t_rob:.1f})",
                t_pg / t_rob,
            ]
        )
        # The profitable plan keeps the relational prefix in Postgres.
        assert "postgres" in rob.platforms_used(), (
            "sources must stay in Postgres (pushdown)"
        )
    benchmark.pedantic(
        lambda: robopt.optimize(tpch.q3(tpch.FIG13_SIZES[0], in_postgres=True)),
        rounds=1,
        iterations=1,
    )
    report(
        "Fig. 13 — Join (Q3) with Postgres-resident data (runtimes, s)",
        ["size", "Postgres-only", "RHEEMix", "Robopt", "Pg/Robopt"],
        rows,
        note="paper: Robopt up to 2.5x faster than Postgres via projection "
        "pushdown + distributed join",
    )
    assert max(speedups) > 1.3, "cross-platform plan should beat Postgres-only"
