"""Fig. 1 — Benefit of using vectors in the plan enumeration.

Paper: with two underlying platforms, the vector-based enumeration
(Robopt) is several times faster than the traditional enumeration that
merely calls the ML model as a black box (Rheem-ML), with the factor
growing with the number of operators: WordCount (6 ops) ≈ 2×,
TPC-H Q3 (17 ops) ≈ 4×, synthetic dataflow (40 ops) ≈ 9×. Both systems
explore the same plans with the same pruning and the same model — the
measured gap is purely the data representation (vectors vs. objects).
"""

import pytest

from repro.baselines.rheem_ml import RheemMLOptimizer
from repro.bench.synthetic_setup import latency_setup
from repro.core.optimizer import Robopt
from repro.rheem.datasets import GB, MB
from repro.workloads import synthetic, tpch, wordcount

#: (label, plan builder, paper's approximate improvement factor)
TASKS = [
    ("WordCount (6 op.)", lambda: wordcount.plan(300 * MB), 2.0),
    ("TPC-H Q3 (18 op.)", lambda: tpch.q3(1 * GB), 4.0),
    ("Synthetic (40 op.)", lambda: synthetic.dataflow_plan(40), 9.0),
]

_results = {}


def _min_latency(optimizer, plan, repeats: int = 5) -> float:
    optimizer.optimize(plan)  # warm-up
    return min(optimizer.optimize(plan).stats.latency_s for _ in range(repeats))


@pytest.mark.parametrize("label,builder,paper_factor", TASKS, ids=[t[0] for t in TASKS])
def test_fig01_improvement_factor(benchmark, report, label, builder, paper_factor):
    registry, schema, model, _ = latency_setup(2)
    plan = builder()
    robopt = Robopt(registry, model, schema=schema)
    rheem_ml = RheemMLOptimizer(registry, model, schema=schema)

    t_vec = _min_latency(robopt, plan)
    t_obj = _min_latency(rheem_ml, plan)
    factor = t_obj / t_vec
    _results[label] = (t_vec, t_obj, factor, paper_factor)

    benchmark(lambda: robopt.optimize(plan))
    report(
        "Fig. 1 — vector-based vs. traditional enumeration (2 platforms)",
        ["task", "Robopt (ms)", "Rheem-ML (ms)", "factor", "paper factor"],
        [[label, t_vec * 1e3, t_obj * 1e3, factor, paper_factor]],
        note="factor = Rheem-ML latency / Robopt latency; same pruning, same model",
    )
    if plan.n_operators >= 15:
        assert factor > 1.0, "vector-based enumeration must beat the object-based one"
    else:
        # At ~6 operators both systems are dominated by fixed per-call
        # costs; parity is acceptable (the paper's factor-2 reflects JVM
        # object overheads our Python objects do not replicate at this
        # scale — see EXPERIMENTS.md).
        assert factor > 0.6


def test_fig01_factor_grows_with_operators(benchmark, report):
    """The paper's trend: the benefit grows with plan size."""
    benchmark(lambda: None)
    if len(_results) < len(TASKS):
        pytest.skip("per-task benchmarks did not all run")
    factors = [_results[label][2] for label, _, _ in TASKS]
    report(
        "Fig. 1 — improvement factor trend",
        ["task", "factor"],
        [[label, _results[label][2]] for label, _, _ in TASKS],
    )
    assert factors[-1] > factors[0], "improvement should grow with #operators"
