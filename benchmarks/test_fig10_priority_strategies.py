"""Fig. 10 — Effectiveness of the priority-based enumeration.

Paper: against classical top-down and bottom-up traversals (obtained by
swapping the priority function), the priority-based strategy is equal at
worst (2 joins) and up to 2.5× / 8.5× faster as joins and platforms grow,
because it enumerates fewer subplans.
"""

import pytest

from repro.bench.synthetic_setup import latency_setup
from repro.core.enumerator import PriorityEnumerator
from repro.core.pruning import ml_cost
from repro.workloads import synthetic


def _run(k: int, n_joins: int, priority: str):
    registry, schema, model, _ = latency_setup(k)
    plan = synthetic.join_plan(n_joins)
    enumerator = PriorityEnumerator(
        registry, ml_cost(model), priority=priority, schema=schema
    )
    best = None
    for _ in range(3):
        result = enumerator.enumerate_plan(plan)
        if best is None or result.stats.latency_s < best.stats.latency_s:
            best = result
    return best


@pytest.mark.parametrize("k", [3, 5])
def test_fig10_priority_vs_topdown_bottomup(benchmark, report, k):
    rows = []
    advantage = {}
    for n_joins in (2, 3, 4, 5):
        robopt = _run(k, n_joins, "robopt")
        topdown = _run(k, n_joins, "topdown")
        bottomup = _run(k, n_joins, "bottomup")
        advantage[n_joins] = (
            topdown.stats.latency_s / robopt.stats.latency_s,
            bottomup.stats.latency_s / robopt.stats.latency_s,
        )
        rows.append(
            [
                n_joins,
                robopt.stats.latency_s * 1e3,
                topdown.stats.latency_s * 1e3,
                bottomup.stats.latency_s * 1e3,
                robopt.stats.vectors_created,
                topdown.stats.vectors_created,
                bottomup.stats.vectors_created,
            ]
        )
    registry, schema, model, _ = latency_setup(k)
    benchmark(
        lambda: PriorityEnumerator(
            registry, ml_cost(model), schema=schema
        ).enumerate_plan(synthetic.join_plan(3))
    )
    report(
        f"Fig. 10 — priority-based vs. top-down/bottom-up ({k} platforms)",
        [
            "#joins",
            "Robopt (ms)",
            "top-down (ms)",
            "bottom-up (ms)",
            "Robopt #subplans",
            "top-down #subplans",
            "bottom-up #subplans",
        ],
        rows,
        note="paper: up to 2.5x over top-down and 8.5x over bottom-up at 5 joins",
    )
    # The priority-based order should enumerate no more subplans than the
    # traversal baselines at the largest plan.
    last = rows[-1]
    assert last[4] <= last[5] * 1.05, "priority should not enumerate more than top-down"
    assert last[4] <= last[6] * 1.05, "priority should not enumerate more than bottom-up"


def test_fig10_all_strategies_reach_same_optimum(benchmark, report):
    """Priority changes the traversal, not the answer (lossless pruning)."""
    registry, schema, model, _ = latency_setup(3)
    import numpy as np

    rng = np.random.default_rng(1)
    weights = rng.uniform(0, 1, schema.n_features)
    linear = lambda enum: enum.features @ weights
    plan = synthetic.join_plan(3)
    costs = {}
    for priority in ("robopt", "topdown", "bottomup"):
        result = PriorityEnumerator(
            registry, linear, priority=priority, schema=schema
        ).enumerate_plan(plan)
        costs[priority] = result.predicted_cost
    benchmark(lambda: None)
    report(
        "Fig. 10 companion — strategy-independence of the optimum",
        ["strategy", "best predicted cost"],
        [[name, value] for name, value in costs.items()],
    )
    assert costs["robopt"] == pytest.approx(costs["topdown"])
    assert costs["robopt"] == pytest.approx(costs["bottomup"])
