"""Batch-service throughput: the serving-layer benchmark.

Drives a 100-plan TDGEN batch (25 distinct structures, each queried at
four cardinalities within one fingerprint bucket — the parametric-reuse
situation the plan cache is built for) through
:class:`BatchOptimizationService` three ways:

* *naive serial* — one optimization per job, no cache, no singleton
  memoization; what a caller without ``repro.serve`` would do;
* *batched serial* — the service with the fingerprint cache and
  singleton memoization (core-count independent: this is the ISSUE 4
  ">= 2x faster than serial" demonstration);
* *pooled* — an auto-sized warm worker pool plus the cache. The pool is
  sized from the CPUs actually available to this process (affinity /
  cgroup aware), so a single-core box runs serially instead of
  oversubscribing; a second batch on the cache-cleared service measures
  how much the warm pool saves over the cold one.

Records ``plans_per_sec``, cache hit rate, p50/p95/p99 per-job latency
and the speedups to the perf trajectory (``BENCH_*.json``);
``scripts/check_bench_regression.py`` fails CI if ``plans_per_sec``
drops >30% or ``latency_p95_s`` regresses against the previous entry,
and the tier-2 pool-bench job fails if ``pool_speedup`` falls to 1.0 or
below on a multi-core runner.
"""

from __future__ import annotations

from repro.bench.trajectory import record as record_trajectory
from repro.rheem.platforms import synthetic_registry
from repro.serve import (
    BatchJob,
    BatchOptimizationService,
    PlanCache,
    available_cpus,
)
from repro.serve.testing import linear_robopt_factory
from repro.tdgen.jobgen import JobGenerator

# Seven synthetic platforms: enough operator alternatives that each plan
# costs real enumeration work (tens of ms), so pool parallelism and the
# cache have something to amortize.
N_PLATFORMS = 7
N_TEMPLATES = 25
QUERIES_PER_TEMPLATE = 4
N_JOBS = N_TEMPLATES * QUERIES_PER_TEMPLATE


def _batch_jobs():
    """100 TDGEN jobs: 25 distinct structures, each queried at four sizes
    within one cardinality bucket (the parametric-reuse case)."""
    registry = synthetic_registry(N_PLATFORMS)
    gen = JobGenerator(registry, seed=42)
    templates = gen.templates_for_shapes(
        ("pipeline", "juncture", "replicate", "loop"),
        max_operators=10,
        count=N_TEMPLATES,
        min_operators=6,
    )
    jobs = []
    for index, template in enumerate(templates):
        base = 10.0 ** (4 + index % 3)
        for q in range(QUERIES_PER_TEMPLATE):
            # Same structure, cardinalities within one power-of-two bucket.
            jobs.append(BatchJob(f"t{index}q{q}", template(base * (1 + 0.01 * q))))
    assert len(jobs) == N_JOBS
    return jobs


def test_batch_throughput(report, trajectory):
    factory = linear_robopt_factory(platforms=N_PLATFORMS, seed=3)
    registry = synthetic_registry(N_PLATFORMS)

    naive = BatchOptimizationService(
        factory, registry, workers=0, memoize_singletons=False
    )
    naive_report = naive.optimize_batch(_batch_jobs())
    assert naive_report.n_failed == 0

    batched = BatchOptimizationService(
        factory, registry, workers=0, cache=PlanCache(max_entries=512)
    )
    batched_report = batched.optimize_batch(_batch_jobs())
    assert batched_report.n_failed == 0

    cpus = available_cpus()
    # Auto-sized warm pool: workers = available CPUs, serial on one core.
    pooled = BatchOptimizationService(
        factory, registry, workers=None, cache=PlanCache(max_entries=512)
    )
    try:
        pooled_report = pooled.optimize_batch(_batch_jobs())
        assert pooled_report.n_failed == 0
        assert pooled_report.mode == ("pool" if cpus > 1 else "serial")

        # A second batch on the cache-cleared service re-optimizes every
        # representative on the already-warm pool: cold/warm isolates the
        # one-time pool spawn + worker init cost the warm architecture
        # amortizes across batches.
        pooled.cache.clear()
        warm_report = pooled.optimize_batch(_batch_jobs())
        assert warm_report.n_failed == 0
    finally:
        pooled.close()

    # Identical decisions regardless of execution mode.
    for a, b, c in zip(
        naive_report.outcomes, batched_report.outcomes, pooled_report.outcomes
    ):
        assert a.result.execution_plan.assignment == b.result.execution_plan.assignment
        assert a.result.execution_plan.assignment == c.result.execution_plan.assignment

    speedup = naive_report.wall_s / max(batched_report.wall_s, 1e-9)
    pool_speedup = naive_report.wall_s / max(pooled_report.wall_s, 1e-9)
    pool_warm_speedup = pooled_report.wall_s / max(warm_report.wall_s, 1e-9)
    tails = pooled_report.latency_percentiles()
    report(
        "Batch service throughput (100-plan TDGEN batch)",
        ["mode", "wall_s", "plans/s", "cache hit rate"],
        [
            ["naive serial (no cache/memo)", f"{naive_report.wall_s:.2f}",
             f"{naive_report.plans_per_sec:.1f}", "-"],
            ["batched serial + cache", f"{batched_report.wall_s:.2f}",
             f"{batched_report.plans_per_sec:.1f}",
             f"{batched_report.cache_hit_rate:.0%}"],
            [f"pool x{pooled_report.workers_requested} + cache (cold)",
             f"{pooled_report.wall_s:.2f}",
             f"{pooled_report.plans_per_sec:.1f}",
             f"{pooled_report.cache_hit_rate:.0%}"],
            [f"pool x{pooled_report.workers_requested} + cache (warm)",
             f"{warm_report.wall_s:.2f}",
             f"{warm_report.plans_per_sec:.1f}",
             f"{warm_report.cache_hit_rate:.0%}"],
        ],
        note=(
            f"batched {speedup:.2f}x, pooled {pool_speedup:.2f}x vs naive, "
            f"warm pool {pool_warm_speedup:.2f}x vs cold; "
            f"p50/p95/p99 {tails['p50'] * 1000:.0f}/{tails['p95'] * 1000:.0f}/"
            f"{tails['p99'] * 1000:.0f} ms "
            f"({cpus} CPU(s), workers {pooled_report.workers}"
            f"/{pooled_report.workers_requested} effective/requested)"
        ),
    )
    metrics = {
        "plans_per_sec": batched_report.plans_per_sec,
        "pooled_plans_per_sec": pooled_report.plans_per_sec,
        "naive_plans_per_sec": naive_report.plans_per_sec,
        "speedup": speedup,
        "pool_speedup": pool_speedup,
        "pool_warm_speedup": pool_warm_speedup,
        "latency_p50_s": tails["p50"],
        "latency_p95_s": tails["p95"],
        "latency_p99_s": tails["p99"],
        "cache_hit_rate": batched_report.cache_hit_rate,
        "n_jobs": batched_report.n_jobs,
        "workers": pooled_report.workers,
        "workers_requested": pooled_report.workers_requested,
        "cpus": cpus,
    }
    trajectory(metrics, meta={"platforms": N_PLATFORMS})
    # A stable series name for scripts/check_bench_regression.py.
    record_trajectory(
        "serve.batch_throughput", metrics, meta={"platforms": N_PLATFORMS}
    )
    # The ISSUE 4 acceptance bar: the batch path (cache + memoization)
    # must be >= 2x faster than naive one-at-a-time optimization.
    assert speedup >= 2.0
    # Pool parallelism needs real cores: on a single-core box auto-sizing
    # already degrades to serial, and on a multi-core one the warm pool
    # must actually beat naive serial (the ISSUE 6 regression gate) —
    # with >= 4 CPUs it must clear the original 2x bar as well.
    if cpus >= 2:
        assert pool_speedup > 1.0
    if cpus >= 4:
        assert pool_speedup >= 2.0


def test_batch_throughput_resilient(report, trajectory):
    """The no-fault cost of the resilience armor.

    Runs the same 100-plan batch through the fully-armored stack
    (fallback chain + circuit breaker, no chaos, no budget) in the same
    batched-serial configuration as the ``serve.batch_throughput``
    baseline, and records ``serve.batch_throughput_resilient``.
    ``scripts/check_bench_regression.py --overhead-against`` gates the
    two series: with nothing failing, the armor (one ``breaker.allow()``
    and an output-sanity check per predict) must cost < 5% throughput.
    """
    from repro.core.features import FeatureSchema
    from repro.serve import resilient_robopt_factory
    from repro.serve.testing import LinearRuntimeModel

    registry = synthetic_registry(N_PLATFORMS)
    schema = FeatureSchema(registry)
    model = LinearRuntimeModel(schema.n_features, seed=3)

    plain = BatchOptimizationService(
        linear_robopt_factory(platforms=N_PLATFORMS, seed=3),
        registry,
        workers=0,
        cache=PlanCache(max_entries=512),
    )
    plain_report = plain.optimize_batch(_batch_jobs())
    assert plain_report.n_failed == 0

    armored = BatchOptimizationService(
        resilient_robopt_factory(platforms=N_PLATFORMS, model=model),
        registry,
        workers=0,
        cache=PlanCache(max_entries=512),
    )
    armored_report = armored.optimize_batch(_batch_jobs())
    assert armored_report.n_failed == 0
    assert armored_report.n_degraded == 0  # nothing failed, nothing degraded

    # The healthy primary answers every prediction: same model, same
    # decisions as the unarmored stack.
    for a, b in zip(plain_report.outcomes, armored_report.outcomes):
        assert (
            a.result.execution_plan.assignment == b.result.execution_plan.assignment
        )

    overhead = 1.0 - armored_report.plans_per_sec / max(
        plain_report.plans_per_sec, 1e-9
    )
    report(
        "Resilience armor overhead (no faults, batched serial + cache)",
        ["stack", "wall_s", "plans/s"],
        [
            ["plain", f"{plain_report.wall_s:.2f}",
             f"{plain_report.plans_per_sec:.1f}"],
            ["fallback chain + breaker", f"{armored_report.wall_s:.2f}",
             f"{armored_report.plans_per_sec:.1f}"],
        ],
        note=f"overhead {overhead:+.1%} (CI gate: < 5%)",
    )
    metrics = {
        "plans_per_sec": armored_report.plans_per_sec,
        "plain_plans_per_sec": plain_report.plans_per_sec,
        "overhead": overhead,
        "n_jobs": armored_report.n_jobs,
    }
    trajectory(metrics, meta={"platforms": N_PLATFORMS})
    record_trajectory(
        "serve.batch_throughput_resilient", metrics, meta={"platforms": N_PLATFORMS}
    )


def test_batch_cache_amortization(report, trajectory):
    """Optimizer cost amortizes across repeated batches (Kepler's effect)."""
    factory = linear_robopt_factory(platforms=N_PLATFORMS, seed=3)
    registry = synthetic_registry(N_PLATFORMS)
    cache = PlanCache(max_entries=512)
    service = BatchOptimizationService(factory, registry, workers=0, cache=cache)

    cold = service.optimize_batch(_batch_jobs())
    warm = service.optimize_batch(_batch_jobs())
    assert warm.cache_hit_rate == 1.0
    speedup = cold.wall_s / max(warm.wall_s, 1e-9)
    report(
        "Plan-cache amortization (same batch twice)",
        ["run", "wall_s", "plans/s", "cache hit rate"],
        [
            ["cold", f"{cold.wall_s:.2f}", f"{cold.plans_per_sec:.1f}",
             f"{cold.cache_hit_rate:.0%}"],
            ["warm", f"{warm.wall_s:.2f}", f"{warm.plans_per_sec:.1f}",
             f"{warm.cache_hit_rate:.0%}"],
        ],
        note=f"warm batch {speedup:.1f}x faster",
    )
    trajectory(
        {
            "cold_plans_per_sec": cold.plans_per_sec,
            "warm_plans_per_sec": warm.plans_per_sec,
            "warm_speedup": speedup,
        }
    )
    assert warm.wall_s < cold.wall_s
