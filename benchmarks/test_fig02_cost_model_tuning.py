"""Fig. 2 — Impact of a well-tuned cost model on cross-platform optimization.

Paper: running Rheem's cost-based optimizer with a simply-tuned cost model
(single-operator profiling) instead of a well-tuned one degrades the
chosen plans by up to an order of magnitude (e.g. Word2NVec is forced
onto Java instead of Spark), even with real cardinalities injected.

We optimize the same four queries with both calibrations and execute the
chosen plans on the simulator.
"""

import pytest

from repro.rheem.datasets import GB, MB
from repro.workloads import crocopr, sgd, tpch, word2nvec

#: (label, plan builder) — the four queries of Fig. 2 at their Fig. 2 sizes.
QUERIES = [
    ("SGD (7.4GB)", lambda: sgd.plan(7.4 * GB)),
    ("Word2NVec (30MB)", lambda: word2nvec.plan(30 * MB)),
    ("Aggregate (200GB)", lambda: tpch.q1(200 * GB)),
    ("CrocoPR (2GB)", lambda: crocopr.plan(2 * GB)),
]


def _measured(ctx, optimizer, plan):
    result = optimizer.optimize(plan)
    runtime = ctx.measure(result.execution_plan)
    platforms = "+".join(result.execution_plan.platforms_used())
    return runtime, platforms


def test_fig02_well_vs_simply_tuned(benchmark, report, ctx3):
    well = ctx3.rheemix(tuned="well")
    simply = ctx3.rheemix(tuned="simply")

    rows = []
    degradations = []
    for label, builder in QUERIES:
        plan = builder()
        t_well, p_well = _measured(ctx3, well, plan)
        t_simply, p_simply = _measured(ctx3, simply, plan)
        degradation = t_simply / t_well if t_well > 0 else float("inf")
        degradations.append(degradation)
        rows.append([label, t_well, p_well, t_simply, p_simply, degradation])

    benchmark.pedantic(
        lambda: well.optimize(QUERIES[1][1]()), rounds=1, iterations=1
    )
    report(
        "Fig. 2 — well-tuned vs. simply-tuned cost model (runtimes, s)",
        ["query", "well-tuned", "plan", "simply-tuned", "plan", "slowdown"],
        rows,
        note="paper observes up to ~10x degradation; direction may invert on "
        "individual queries where the simple model's Java bias happens to help",
    )
    # The paper's qualitative claim: a simply-tuned model can cost a lot.
    assert max(degradations) > 1.3, "simply-tuned should hurt at least one query"


def test_fig02_parameter_count(report, ctx3, benchmark):
    """§II context: the cross-platform cost model has very many knobs."""
    n = ctx3.well_tuned.parameters.n_parameters()
    benchmark(lambda: ctx3.well_tuned.parameters.n_parameters())
    report(
        "Fig. 2 context — cost-model tuning burden",
        ["cost model", "#coefficients to tune"],
        [["well-tuned (NNLS-calibrated)", n]],
        note="the paper reports ~2 weeks of manual trial-and-error for this",
    )
    assert n > 100
