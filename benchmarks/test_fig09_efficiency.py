"""Fig. 9 — Robopt efficiency and scalability (optimization latency).

Paper:

* (a) latency vs. #operators (5–80) on 2 platforms: Robopt scales best;
  Rheem-ML is up to 11× slower (it spends ~47% of its time vectorizing
  subplans); the exhaustive enumeration only survives tiny plans;
* (b)–(d) latency vs. #platforms (2–5) for 5 / 20 / 80 operators: the
  gap between Robopt and the cost-based RHEEMix grows with both axes
  (e.g. 80 ops / 3 platforms: 0.5 s vs 1.1 s in the paper).
"""

import pytest

from repro.baselines.exhaustive import ExhaustiveOptimizer
from repro.baselines.rheem_ml import RheemMLOptimizer
from repro.bench.synthetic_setup import latency_setup
from repro.core.optimizer import Robopt
from repro.cost.optimizer import RheemixOptimizer
from repro.workloads import synthetic


def _latency(optimizer, plan) -> float:
    return optimizer.optimize(plan).stats.latency_s


def test_fig09a_latency_vs_operators(benchmark, report, trajectory):
    """Fig. 9(a): 2 platforms, 5–80 operators, all four systems."""
    registry, schema, model, cost_model = latency_setup(2)
    robopt = Robopt(registry, model, schema=schema)
    rheem_ml = RheemMLOptimizer(registry, model, schema=schema)
    rheemix = RheemixOptimizer(registry, cost_model)
    exhaustive = ExhaustiveOptimizer(registry, model, schema=schema)

    rows = []
    gaps = {}
    phase_fracs = {}
    for n_ops in (5, 20, 40, 80):
        plan = synthetic.pipeline_plan(n_ops)
        results = [robopt.optimize(plan) for _ in range(3)]
        best = min(results, key=lambda r: r.stats.latency_s)
        t_rob = best.stats.latency_s
        if n_ops == 80:
            # Where the 80-op run spends its time: the merge and prune
            # kernels are the hot path this repo optimizes, so their
            # share of the total rides along in the trajectory row.
            phase_fracs = {
                "merge_frac_80ops": best.stats.time_merge_s / t_rob,
                "prune_frac_80ops": best.stats.time_prune_s / t_rob,
            }
        t_rml = _latency(rheem_ml, plan)
        t_rx = _latency(rheemix, plan)
        t_ex = _latency(exhaustive, plan) if n_ops == 5 else float("nan")
        gaps[n_ops] = t_rml / t_rob
        rows.append(
            [n_ops, t_ex * 1e3, t_rx * 1e3, t_rml * 1e3, t_rob * 1e3, gaps[n_ops]]
        )
    benchmark(lambda: robopt.optimize(synthetic.pipeline_plan(20)))
    metrics = {
        f"robopt_{n}ops_s": row[4] / 1e3 for n, row in zip((5, 20, 40, 80), rows)
    }
    metrics.update(phase_fracs)
    trajectory(metrics, meta={"platforms": 2, "figure": "9a"})
    report(
        "Fig. 9(a) — optimization latency vs. #operators (2 platforms, ms)",
        ["#ops", "Exhaustive", "RHEEMix", "Rheem-ML", "Robopt", "RML/Robopt"],
        rows,
        note="paper: Rheem-ML up to 11x slower than Robopt; exhaustive only at 5 ops",
    )
    assert gaps[80] > gaps[5], "Rheem-ML's handicap should grow with plan size"
    assert gaps[80] > 2.0


@pytest.mark.parametrize("n_ops", [5, 20, 80])
def test_fig09bcd_latency_vs_platforms(benchmark, report, n_ops):
    """Figs. 9(b)-(d): 2–5 platforms at a fixed operator count."""
    rows = []
    ratios = {}
    for k in (2, 3, 4, 5):
        registry, schema, model, cost_model = latency_setup(k)
        plan = synthetic.pipeline_plan(n_ops)
        robopt = Robopt(registry, model, schema=schema)
        rheemix = RheemixOptimizer(registry, cost_model)
        t_rob = min(_latency(robopt, plan) for _ in range(3))
        t_rx = _latency(rheemix, plan)
        if n_ops == 5:
            exhaustive = ExhaustiveOptimizer(registry, model, schema=schema)
            t_ex = _latency(exhaustive, plan)
        else:
            t_ex = float("nan")
        ratios[k] = t_rx / t_rob
        rows.append([k, t_ex * 1e3, t_rx * 1e3, t_rob * 1e3, ratios[k]])
    registry, schema, model, _ = latency_setup(3)
    benchmark(
        lambda: Robopt(registry, model, schema=schema).optimize(
            synthetic.pipeline_plan(n_ops)
        )
    )
    report(
        f"Fig. 9({'bcd'[[5, 20, 80].index(n_ops)]}) — latency vs. #platforms "
        f"({n_ops} operators, ms)",
        ["#platforms", "Exhaustive", "RHEEMix", "Robopt", "RHEEMix/Robopt"],
        rows,
        note="paper: the Robopt advantage grows with #platforms (objects vs vectors)",
    )
    if n_ops >= 20:
        assert ratios[5] > 1.0, "Robopt should beat RHEEMix at scale"


def test_fig09_rheem_ml_time_breakdown(benchmark, report):
    """§VII-B: Rheem-ML spends ~47% of its time vectorizing subplans and
    only ~10% inside the ML model."""
    registry, schema, model, _ = latency_setup(2)
    rheem_ml = RheemMLOptimizer(registry, model, schema=schema)
    plan = synthetic.pipeline_plan(40)
    result = benchmark.pedantic(
        lambda: rheem_ml.optimize(plan), rounds=1, iterations=1
    )
    s = result.stats
    vec_share = s.time_vectorize_s / s.latency_s
    ml_share = s.time_predict_s / s.latency_s
    report(
        "Fig. 9 companion — Rheem-ML time breakdown (40 ops, 2 platforms)",
        ["total (s)", "vectorize (s)", "share", "predict (s)", "share"],
        [[s.latency_s, s.time_vectorize_s, vec_share, s.time_predict_s, ml_share]],
        note="paper: 47% vectorization, ~10% model invocation",
    )
    assert vec_share > 0.25, "vectorization should dominate Rheem-ML"
    assert vec_share > ml_share
