"""Fig. 8 — TDGEN's runtime interpolation over input cardinality.

Paper: TDGEN executes only the blue points (a subset of cardinalities for
6-operator plans) and predicts the runtime of every other job with
piecewise degree-5 polynomial interpolation. We reproduce the figure's
series — executed points, interpolated curve — and quantify the
interpolation error against ground truth the paper could not measure.
"""

import numpy as np
import pytest

from repro.rheem.execution_plan import single_platform_plan
from repro.tdgen.loggen import interpolate_runtimes
from repro.workloads import synthetic


def test_fig08_interpolation_accuracy(benchmark, report, ctx3):
    plan_for = lambda card: synthetic.pipeline_plan(6, cardinality=card)
    grid = np.geomspace(1e4, 2e9, 12)
    executed_idx = [0, 1, 2, 3, 5, 7, 11]  # small cards + spread + anchor
    truth = {}
    for ci, card in enumerate(grid):
        xp = single_platform_plan(plan_for(card), "spark", ctx3.registry)
        truth[ci] = ctx3.executor.execute(xp).runtime_s

    predicted = benchmark.pedantic(
        lambda: interpolate_runtimes(
            [grid[i] for i in executed_idx],
            [truth[i] for i in executed_idx],
            grid,
        ),
        rounds=1,
        iterations=1,
    )

    rows = []
    rel_errors = []
    for ci, card in enumerate(grid):
        kind = "executed" if ci in executed_idx else "interpolated"
        rel = abs(predicted[ci] - truth[ci]) / truth[ci]
        if kind == "interpolated":
            rel_errors.append(rel)
        rows.append([f"{card:.2e}", kind, truth[ci], float(predicted[ci]), rel])
    report(
        "Fig. 8 — interpolation of job runtimes (6-op pipeline, Spark)",
        ["cardinality", "point", "true runtime (s)", "interpolated (s)", "rel. err"],
        rows,
        note="degree-5 piecewise polynomial on log-log axes, as in §VI-B",
    )
    assert max(rel_errors) < 0.25, "interpolated runtimes should track ground truth"


def test_fig08_executed_fraction(benchmark, report, ctx3):
    """TDGEN's point: most labels come for free via interpolation."""
    from repro.simulator.executor import SimulatedExecutor
    from repro.tdgen.generator import TrainingDataGenerator

    executor = SimulatedExecutor.default(ctx3.registry)
    tdgen = TrainingDataGenerator(ctx3.registry, executor, seed=123)
    dataset = benchmark.pedantic(
        lambda: tdgen.generate(600, assignments_per_plan=3),
        rounds=1,
        iterations=1,
    )
    stats = tdgen.stats
    report(
        "Fig. 8 companion — TDGEN labelling economy",
        ["points", "executed", "imputed", "executed fraction"],
        [[stats.n_points, stats.n_executed, stats.n_imputed, stats.executed_fraction]],
        note="the paper's cluster equivalent: 'a couple of days' instead of months",
    )
    assert stats.executed_fraction < 0.6
    assert len(dataset) == 600
