"""Table I — Number of enumerated subplans with and without pruning.

Paper:

===============  =====  =====  =====  ======  ======  =====  =====  =====
(#ops, #plats)   (5,2)  (5,3)  (5,4)  (5,5)   (20,2)  (20,3) (20,4) (20,5)
w pruning        36     117    272    525     156     522    1232   2400
w/o pruning      60     724    4090   15618   ~1e6    ~1e9   ~1e12  ~1e14
===============  =====  =====  =====  ======  ======  =====  =====  =====

With boundary pruning the count grows polynomially; without it the space
is k^n and is not even enumerable at 20 operators. We count the plan
vectors materialized by concatenations (pre-pruning), as the paper does.
"""

import numpy as np
import pytest

from repro.bench.synthetic_setup import latency_setup
from repro.core.enumerator import PriorityEnumerator
from repro.core.pruning import ml_cost
from repro.workloads import synthetic

PAPER_WITH_PRUNING = {
    (5, 2): 36, (5, 3): 117, (5, 4): 272, (5, 5): 525,
    (20, 2): 156, (20, 3): 522, (20, 4): 1232, (20, 5): 2400,
}
PAPER_WITHOUT = {
    (5, 2): 60, (5, 3): 724, (5, 4): 4090, (5, 5): 15618,
}


def _count(n_ops: int, k: int, pruning: bool) -> float:
    registry, schema, model, _ = latency_setup(k)
    plan = synthetic.pipeline_plan(n_ops)
    enumerator = PriorityEnumerator(
        registry, ml_cost(model), pruning=pruning, schema=schema
    )
    return float(enumerator.enumerate_plan(plan).stats.vectors_created)


def test_table1_counts(benchmark, report):
    rows = []
    measured_pruned = {}
    for n_ops in (5, 20):
        for k in (2, 3, 4, 5):
            with_pruning = _count(n_ops, k, pruning=True)
            measured_pruned[(n_ops, k)] = with_pruning
            if (n_ops, k) in PAPER_WITHOUT:
                without = _count(n_ops, k, pruning=False)
            else:
                without = float(k) ** n_ops  # analytic: not enumerable
            rows.append(
                [
                    f"({n_ops},{k})",
                    with_pruning,
                    PAPER_WITH_PRUNING[(n_ops, k)],
                    without,
                    PAPER_WITHOUT.get((n_ops, k), float(k) ** n_ops),
                ]
            )
    benchmark.pedantic(lambda: _count(5, 3, True), rounds=1, iterations=1)
    report(
        "Table I — number of enumerated subplans",
        ["(#ops,#plats)", "w pruning", "paper", "w/o pruning", "paper"],
        rows,
        note="w/o-pruning counts for 20 ops are analytic (k^n), as in the paper",
    )

    # Shape assertions: polynomial vs exponential growth.
    for n_ops in (5, 20):
        for k in (2, 3, 4, 5):
            measured = measured_pruned[(n_ops, k)]
            # Lemma 1 ballpark: within a small constant of (n-1)k^2 per
            # concatenation path; allow generous slack for merge ordering.
            assert measured <= 40 * (n_ops - 1) * k ** 2, (n_ops, k, measured)
    assert measured_pruned[(20, 2)] < 2 ** 20, "pruning must beat k^n"


def test_table1_pruning_is_lossless_here(benchmark, report):
    """The pruned and exhaustive enumerations agree on the optimum.

    Uses a linear (decomposable) cost oracle — Def. 2's losslessness is
    stated w.r.t. the model, and holds exactly when subplan costs compose
    over merges.
    """
    registry, schema, _, _ = latency_setup(2)
    rng = np.random.default_rng(0)
    weights = rng.uniform(0, 1, schema.n_features)
    linear = lambda enum: enum.features @ weights
    plan = synthetic.pipeline_plan(8)
    pruned = PriorityEnumerator(registry, linear, schema=schema).enumerate_plan(plan)
    exhaustive = benchmark.pedantic(
        lambda: PriorityEnumerator(
            registry, linear, pruning=False, schema=schema
        ).enumerate_plan(plan),
        rounds=1,
        iterations=1,
    )
    report(
        "Table I companion — losslessness check (8 ops, 2 platforms)",
        ["variant", "subplans", "best predicted runtime"],
        [
            ["w pruning", pruned.stats.vectors_created, pruned.predicted_cost],
            [
                "w/o pruning",
                exhaustive.stats.vectors_created,
                exhaustive.predicted_cost,
            ],
        ],
    )
    assert pruned.predicted_cost <= exhaustive.predicted_cost * 1.0001
