"""Daemon front-door throughput: the serving-daemon benchmark.

Drives the same 100-plan TDGEN workload as ``test_serve_batch.py`` (25
distinct structures, each queried at four cardinalities within one
fingerprint bucket) through two front doors:

* *batch CLI path* — what ``repro optimize-batch --jobs`` does with its
  defaults: one :class:`BatchOptimizationService` call, serial, no
  cross-invocation cache (every CLI run starts cold);
* *daemon path* — ``repro serve`` with *its* defaults: a persistent
  in-memory plan cache plus cross-client coalescing, hit by **8
  concurrent clients** sharding the same job list over a unix socket
  (newline-delimited JSON frames, pipelined per client).

The daemon pays framing + event-loop overhead on every request but
keeps its cache across clients — on parametric-reuse traffic (Kepler's
observation) it must come out ahead: the ISSUE 7 acceptance bar is
``daemon throughput >= batch-CLI throughput`` on the same job file.

Records ``serve.daemon_throughput`` (plans/s both ways, the ratio, the
daemon's live p50/p95/p99 in ms, and the coalescing counter) to the
perf trajectory; ``scripts/check_bench_regression.py
--daemon-p95-tolerance`` gates the recorded ``daemon_p95_ms`` against
the previous entry.
"""

from __future__ import annotations

import threading
import time

from repro.bench.trajectory import record as record_trajectory
from repro.rheem.platforms import synthetic_registry
from repro.rheem.serialization import plan_to_dict
from repro.serve import (
    BatchOptimizationService,
    PlanCache,
    ServeClient,
)
from repro.serve.protocol import OptimizeRequest
from repro.serve.testing import linear_robopt_factory, run_daemon

from test_serve_batch import N_JOBS, N_PLATFORMS, _batch_jobs

N_CLIENTS = 8


def _requests(jobs):
    return [
        OptimizeRequest(request_id=job.job_id, plan=plan_to_dict(job.plan))
        for job in jobs
    ]


def test_daemon_throughput(report, trajectory, tmp_path):
    factory = linear_robopt_factory(platforms=N_PLATFORMS, seed=3)
    registry = synthetic_registry(N_PLATFORMS)
    jobs = _batch_jobs()

    # Batch-CLI reference: `repro optimize-batch` defaults — one serial
    # service call, no cache surviving the invocation.
    batch_service = BatchOptimizationService(factory, registry, workers=0)
    batch_report = batch_service.optimize_batch(jobs)
    assert batch_report.n_failed == 0

    # Daemon: `repro serve` defaults — persistent cache, coalescing on.
    service = BatchOptimizationService(
        factory, registry, workers=0, cache=PlanCache(max_entries=512)
    )
    shards = [_requests(jobs[i::N_CLIENTS]) for i in range(N_CLIENTS)]
    responses = [None] * N_CLIENTS
    barrier = threading.Barrier(N_CLIENTS + 1)

    with run_daemon(service, unix_path=str(tmp_path / "bench.sock")) as harness:

        def drive(index):
            with ServeClient(harness.address, timeout_s=300.0) as client:
                barrier.wait()
                responses[index] = client.optimize_many(shards[index])

        threads = [
            threading.Thread(target=drive, args=(i,)) for i in range(N_CLIENTS)
        ]
        for t in threads:
            t.start()
        barrier.wait()
        t0 = time.perf_counter()
        for t in threads:
            t.join(timeout=600.0)
        wall_s = time.perf_counter() - t0
        with ServeClient(harness.address) as control:
            stats = control.stats()

    answered = [r for shard in responses if shard for r in shard]
    assert len(answered) == N_JOBS
    assert all(r.ok for r in answered), [r for r in answered if not r.ok][:3]

    daemon_plans_per_sec = N_JOBS / max(wall_s, 1e-9)
    speedup = daemon_plans_per_sec / max(batch_report.plans_per_sec, 1e-9)
    cached = sum(1 for r in answered if r.cached)
    coalesced = stats.counters.get("serve.jobs_coalesced", 0)

    report(
        "Daemon vs batch-CLI throughput (100-plan TDGEN workload)",
        ["front door", "wall_s", "plans/s", "notes"],
        [
            [
                "batch CLI (serial, no cache)",
                f"{batch_report.wall_s:.2f}",
                f"{batch_report.plans_per_sec:.1f}",
                "-",
            ],
            [
                f"daemon ({N_CLIENTS} clients, unix socket)",
                f"{wall_s:.2f}",
                f"{daemon_plans_per_sec:.1f}",
                f"{cached} cached, {coalesced:.0f} coalesced",
            ],
        ],
        note=(
            f"daemon {speedup:.2f}x vs batch CLI; live "
            f"p50/p95/p99 {stats.latency_ms['p50']:.0f}/"
            f"{stats.latency_ms['p95']:.0f}/{stats.latency_ms['p99']:.0f} ms"
        ),
    )
    metrics = {
        "daemon_plans_per_sec": daemon_plans_per_sec,
        "batch_plans_per_sec": batch_report.plans_per_sec,
        "daemon_vs_batch_speedup": speedup,
        "daemon_p50_ms": stats.latency_ms["p50"],
        "daemon_p95_ms": stats.latency_ms["p95"],
        "daemon_p99_ms": stats.latency_ms["p99"],
        "jobs_cached": cached,
        "jobs_coalesced": coalesced,
        "n_clients": N_CLIENTS,
        "n_jobs": N_JOBS,
    }
    trajectory(metrics, meta={"platforms": N_PLATFORMS})
    # Stable series name for scripts/check_bench_regression.py.
    record_trajectory(
        "serve.daemon_throughput", metrics, meta={"platforms": N_PLATFORMS}
    )
    # The ISSUE 7 acceptance bar: the persistent front door must not be
    # slower than cold batch invocations on parametric-reuse traffic.
    assert daemon_plans_per_sec >= batch_report.plans_per_sec
