"""Ablation — ML model families (§VII-A).

Paper: "we tried linear regression, random forests, and neural networks
and found random forests to be more robust. Still, one can plug any
regression algorithm."

We train all three families on the same TDGEN dataset and compare holdout
accuracy and, more importantly, plan-ordering quality (Spearman) — the
property the optimizer actually relies on.
"""

from functools import lru_cache

import numpy as np
import pytest

from repro.ml.model import ALGORITHMS, RuntimeModel
from repro.rheem.execution_plan import single_platform_plan
from repro.rheem.datasets import GB, MB
from repro.simulator.executor import SimulatedExecutor
from repro.tdgen.generator import TrainingDataGenerator
from repro.workloads import kmeans, wordcount


@lru_cache(maxsize=1)
def _shared_dataset():
    from repro.bench.context import get_context

    ctx = get_context(("java", "spark", "flink"))
    executor = SimulatedExecutor.default(ctx.registry)
    tdgen = TrainingDataGenerator(ctx.registry, executor, seed=99, schema=ctx.schema)
    dataset = tdgen.generate(6000, assignments_per_plan=6)
    return ctx, dataset


_PARAMS = {
    "random_forest": dict(n_estimators=32, max_depth=18, max_features=64),
    "linear": dict(alpha=1.0),
    "mlp": dict(hidden=(64, 32), epochs=120),
    "boosting": dict(n_estimators=120, max_depth=5),
}


def test_ablation_model_families(benchmark, report):
    ctx, dataset = _shared_dataset()

    def train_all():
        return {
            algo: RuntimeModel.train(dataset, algo, seed=0, **_PARAMS[algo])
            for algo in ALGORITHMS
        }

    models = benchmark.pedantic(train_all, rounds=1, iterations=1)

    # Plan-ordering quality on real workload plans (out of distribution).
    plans = [
        wordcount.plan(size) for size in (30 * MB, 3 * GB, 24 * GB)
    ] + [kmeans.plan(size) for size in (36 * MB, 3610 * MB)]
    truths, vectors = [], []
    for plan in plans:
        for platform in ctx.registry.names:
            xp = single_platform_plan(plan, platform, ctx.registry)
            record = ctx.executor.execute(xp)
            truths.append(record.runtime_s if record.ok else 7200.0)
            vectors.append(ctx.schema.encode_execution_plan(xp))
    truths = np.asarray(truths)
    matrix = np.vstack(vectors)

    from repro.ml.metrics import spearman

    rows = []
    quality = {}
    for algo, model in models.items():
        workload_spearman = spearman(truths, model.predict(matrix))
        quality[algo] = workload_spearman
        rows.append(
            [
                algo,
                model.metrics["spearman"],
                model.metrics["q50"],
                model.metrics["q95"],
                workload_spearman,
            ]
        )
    report(
        "Ablation — model families on the same TDGEN data",
        ["model", "holdout spearman", "q50", "q95", "workload spearman"],
        rows,
        note="paper found random forests most robust; workload spearman is "
        "measured on real Table II plans (out of the training distribution)",
    )
    assert quality["random_forest"] >= quality["linear"] - 0.05
    assert quality["random_forest"] > 0.5
