"""The drift-heal drill: inject a workload shift, let the loop fix it.

The closed feedback loop (ISSUE 10) exists for exactly one scenario: the
cluster the model was trained against stops looking like the cluster the
optimizer is serving. This benchmark manufactures that scenario — every
platform's tuple/shuffle/IO rate is cut by ``SHIFT_FACTOR`` — and then
runs the production loop end to end:

1. score the stale model's windowed q-error on a held-out slice of the
   shifted workload (``q_before``);
2. feed the remaining executions through a
   :class:`~repro.serve.feedback.FeedbackController` whose drift monitor
   watches predicted-vs-observed; the shift trips ``DRIFTED`` and the
   controller retrains and installs a new model automatically;
3. score the installed model on the same held-out slice (``q_after``).

Records ``ml.drift_heal`` (q_before, q_after, heal_ratio, observations,
retrains) to the BENCH trajectory;
``scripts/check_bench_regression.py --min-drift-heal`` fails CI when the
latest heal_ratio falls below the bound (ISSUE 10: 2.0).
"""

from __future__ import annotations

import numpy as np

from repro.api import OptimizationResult, RunStats
from repro.bench.trajectory import record as record_trajectory
from repro.ml.drift import DriftMonitor, DriftStatus
from repro.ml.feedback import FeedbackLoop
from repro.rheem.execution_plan import single_platform_plan
from repro.serve.feedback import FeedbackController
from repro.simulator.executor import SimulatedExecutor
from repro.tdgen.jobgen import JobGenerator

#: The injected shift: every platform rate divided by this factor (a
#: cluster that got 10x slower — contended, downscaled, or re-racked).
SHIFT_FACTOR = 10.0

#: The ISSUE 10 acceptance bar: retraining must cut the held-out
#: windowed q-error at least this much.
MIN_HEAL_RATIO = 2.0


def _shifted_executor(registry) -> SimulatedExecutor:
    """Every platform slowed uniformly: rates cut, fixed costs grown."""
    base = SimulatedExecutor.default(registry)
    profiles = {
        name: profile.with_overrides(
            tuple_rate=profile.tuple_rate / SHIFT_FACTOR,
            shuffle_rate=profile.shuffle_rate / SHIFT_FACTOR,
            io_rate=profile.io_rate / SHIFT_FACTOR,
            startup_s=profile.startup_s * SHIFT_FACTOR,
            per_op_overhead_s=profile.per_op_overhead_s * SHIFT_FACTOR,
            loop_overhead_s=profile.loop_overhead_s * SHIFT_FACTOR,
        )
        for name, profile in base.profiles.items()
    }
    return SimulatedExecutor(profiles)


def _fleet(registry, executor):
    """(execution plan, shifted runtime) pairs that execute cleanly."""
    templates = JobGenerator(registry, seed=5).templates_for_shapes(
        ("pipeline", "juncture", "replicate"), max_operators=9, count=18
    )
    fleet = []
    for index, template in enumerate(templates):
        plan = template(10.0 ** (3 + index % 4))
        for name in registry.names:
            xplan = single_platform_plan(plan, name, registry)
            outcome = executor.execute(xplan)
            if outcome.ok:
                fleet.append((xplan, outcome.runtime_s))
    return fleet


def test_drift_heal(ctx3, report, trajectory):
    registry, schema, stale = ctx3.registry, ctx3.schema, ctx3.model
    shifted = _shifted_executor(registry)
    fleet = _fleet(registry, shifted)
    assert len(fleet) >= 24, "drill needs a workload to observe"
    held_out = fleet[::4]
    feed = [pair for index, pair in enumerate(fleet) if index % 4]

    def median_q(model):
        qs = []
        for xplan, truth in held_out:
            pred = max(model.predict_one(schema.encode_execution_plan(xplan)), 1e-9)
            qs.append(max(pred / truth, truth / pred))
        return float(np.median(qs))

    q_before = median_q(stale)

    installed = []
    controller = FeedbackController(
        FeedbackLoop(schema, seed=7, n_estimators=32, max_depth=14),
        shifted,
        drift=DriftMonitor(
            window=24, min_samples=8, warn_threshold=1.5, drift_threshold=2.0
        ),
        retrain_after=0,  # drift-only: the drill is about detection
        min_observations=12,
        install=installed.append,
    )
    # The production loop: predict with whatever model is currently
    # installed, execute, observe; each drift trip retrains on everything
    # seen so far and the next generation is judged by the same monitor —
    # the loop keeps healing until predictions and reality agree.
    current = stale
    drift_seen = False
    for xplan, _ in feed:
        predicted = current.predict_one(schema.encode_execution_plan(xplan))
        controller.observe(
            OptimizationResult(
                execution_plan=xplan,
                predicted_runtime=predicted,
                stats=RunStats(),
            )
        )
        drift_seen = drift_seen or controller.drift.status() is DriftStatus.DRIFTED
        if controller.maybe_retrain():
            current = installed[-1]
    assert drift_seen, "the injected shift never tripped the drift monitor"
    assert installed, "the controller never installed a retrained model"

    observed_before_heal = controller.loop.n_observations
    q_after = median_q(installed[-1])
    heal_ratio = q_before / max(q_after, 1e-9)
    report(
        "Drift-heal drill (all platform rates / "
        f"{SHIFT_FACTOR:.0f}, {len(fleet)} shifted executions)",
        ["stage", "held-out median q-error"],
        [
            ["stale model (pre-shift training)", f"{q_before:.2f}"],
            [
                f"after automatic retrain ({observed_before_heal} observations)",
                f"{q_after:.2f}",
            ],
        ],
        note=(
            f"heal ratio {heal_ratio:.2f}x (bound >= {MIN_HEAL_RATIO:.1f}x); "
            f"model generation {controller.model_generation}, "
            f"{controller.loop.n_retrains} retrain(s)"
        ),
    )
    metrics = {
        "q_before": q_before,
        "q_after": q_after,
        "heal_ratio": heal_ratio,
        "observations": observed_before_heal,
        "retrains": controller.loop.n_retrains,
        "held_out": len(held_out),
    }
    trajectory(metrics, meta={"shift_factor": SHIFT_FACTOR})
    # A stable series name for scripts/check_bench_regression.py.
    record_trajectory("ml.drift_heal", metrics, meta={"shift_factor": SHIFT_FACTOR})
    assert heal_ratio >= MIN_HEAL_RATIO
