"""Fig. 12 — Multiple-platform execution mode.

Paper: for the iterative queries, combining platforms beats every single
platform, and Robopt matches or exceeds RHEEMix:

* (a) K-means (10/100/1000 centroids): Robopt's Spark+Java plan keeps the
  centroids on Java and broadcasts them as a collection — up to 7× over
  RHEEMix's all-Spark plan, growing with the centroid count;
* (b) SGD (batch 1/100/1000): Robopt's plan avoids resetting the
  shuffle-partition sample's state (the cache/sample interaction) — ~2×
  over RHEEMix on average;
* (c)/(d) CrocoPR (1/10/100 iterations; HDFS and Postgres-resident
  inputs): the winning plan preprocesses on Flink and iterates PageRank
  on Java; for the Postgres variant cross-platform execution is mandatory.
"""

import pytest

from repro.rheem.datasets import GB, MB
from repro.workloads import crocopr, kmeans, sgd


def _entry(ctx, optimizer, plan):
    xplan = optimizer.optimize(plan).execution_plan
    return ctx.measure(xplan), "+".join(xplan.platforms_used())


def test_fig12a_kmeans_centroids(benchmark, report, ctx3):
    robopt, rheemix = ctx3.robopt(), ctx3.rheemix()
    rows, factors = [], []
    for k in kmeans.FIG12_CENTROIDS:
        plan = kmeans.plan(3610 * MB, n_centroids=k)
        singles = ctx3.single_platform_runtimes(plan)
        t_rob, p_rob = _entry(ctx3, robopt, plan)
        t_rx, p_rx = _entry(ctx3, rheemix, plan)
        factors.append(t_rx / t_rob)
        rows.append(
            [k, singles.get("java"), singles.get("spark"), singles.get("flink"),
             f"{p_rx}({t_rx:.1f})", f"{p_rob}({t_rob:.1f})", t_rx / t_rob]
        )
    benchmark.pedantic(
        lambda: robopt.optimize(kmeans.plan(3610 * MB, n_centroids=100)),
        rounds=1, iterations=1,
    )
    report(
        "Fig. 12(a) — K-means, 3.6GB, varying #centroids (runtimes, s)",
        ["#centroids", "java", "spark", "flink", "RHEEMix", "Robopt", "RX/Robopt"],
        rows,
        note="paper: Robopt's Spark+Java centroid plan wins, up to 7x at 1000",
    )
    assert all(f >= 0.95 for f in factors), "Robopt must not lose to RHEEMix"
    best_single = min(
        v for row in rows for v in row[1:4] if isinstance(v, float)
    )
    t_rob_last = float(rows[-1][5].split("(")[1][:-1])
    assert t_rob_last <= best_single * 1.6


def test_fig12b_sgd_batch_size(benchmark, report, ctx3):
    robopt, rheemix = ctx3.robopt(), ctx3.rheemix()
    rows, factors = [], []
    for batch in sgd.FIG12_BATCH_SIZES:
        plan = sgd.plan(7.4 * GB, batch_size=batch)
        singles = ctx3.single_platform_runtimes(plan)
        t_rob, p_rob = _entry(ctx3, robopt, plan)
        t_rx, p_rx = _entry(ctx3, rheemix, plan)
        factors.append(t_rx / t_rob)
        rows.append(
            [batch, singles.get("java"), singles.get("spark"), singles.get("flink"),
             f"{p_rx}({t_rx:.1f})", f"{p_rob}({t_rob:.1f})", t_rx / t_rob]
        )
    benchmark.pedantic(
        lambda: robopt.optimize(sgd.plan(7.4 * GB, batch_size=100)),
        rounds=1, iterations=1,
    )
    report(
        "Fig. 12(b) — SGD, 7.4GB HIGGS, varying batch size (runtimes, s)",
        ["batch", "java", "spark", "flink", "RHEEMix", "Robopt", "RX/Robopt"],
        rows,
        note="paper: Robopt ~2x over RHEEMix by preserving the sample's state",
    )
    assert all(f >= 0.9 for f in factors)
    assert max(factors) >= 1.0


@pytest.mark.parametrize("variant", ["hdfs", "postgres"])
def test_fig12cd_crocopr_iterations(benchmark, report, ctx3, ctx_pg, variant):
    in_postgres = variant == "postgres"
    ctx = ctx_pg if in_postgres else ctx3
    robopt, rheemix = ctx.robopt(), ctx.rheemix()
    rows = []
    for iters in crocopr.FIG12_ITERATIONS:
        plan = crocopr.plan(1 * GB, iterations=iters, in_postgres=in_postgres)
        singles = ctx.single_platform_runtimes(plan)
        t_rob, p_rob = _entry(ctx, robopt, plan)
        t_rx, p_rx = _entry(ctx, rheemix, plan)
        best_single = min(singles.values()) if singles else float("inf")
        rows.append(
            [iters, best_single, f"{p_rx}({t_rx:.1f})", f"{p_rob}({t_rob:.1f})"]
        )
        if in_postgres:
            # Postgres cannot run PageRank: plans must span platforms.
            assert "+" in p_rob, "cross-platform execution is mandatory here"
    benchmark.pedantic(
        lambda: robopt.optimize(
            crocopr.plan(1 * GB, iterations=10, in_postgres=in_postgres)
        ),
        rounds=1, iterations=1,
    )
    report(
        f"Fig. 12({'d' if in_postgres else 'c'}) — CrocoPR-"
        f"{'PG' if in_postgres else 'HDFS'}, 1GB, varying #iterations (s)",
        ["#iterations", "best single platform", "RHEEMix", "Robopt"],
        rows,
        note="paper: Flink preprocesses, Java iterates PageRank; both optimizers "
        "produce the same plan in the paper",
    )
    for row in rows:
        t_rob = float(row[3].split("(")[1][:-1])
        best = row[1]
        assert t_rob <= best * 2.0 or t_rob < 60.0
