"""Template-cache serving: the parametric-workload benchmark.

The exact-fingerprint tier only reuses work when log-bucketed
cardinalities collide; a parametric workload whose cardinalities are
*drawn from a distribution* (here: log-uniform, with the eval phase in a
disjoint cardinality range from the warm phase — the "data grew"
scenario) misses it every time. The template tier keys on the
cardinality-stripped structure and re-costs remembered candidates at the
request's actual cardinalities, so the same workload serves from cache.

Records ``serve.template_cache`` to the perf trajectory with the
template-tier hit rate and the warm (template-served) throughput;
``scripts/check_bench_regression.py --min-template-hit-rate`` gates the
hit rate in CI. Acceptance bar (ISSUE 9): template-tier hit rate >= 0.5
on the eval phase while the exact tier alone scores ~0 on it.
"""

from __future__ import annotations

import numpy as np

from repro.bench.trajectory import record as record_trajectory
from repro.rheem.platforms import synthetic_registry
from repro.serve import (
    BatchJob,
    BatchOptimizationService,
    PlanCache,
    TemplateCache,
)
from repro.serve.testing import linear_robopt_factory

N_PLATFORMS = 7
N_TEMPLATES = 20
WARM_PER_TEMPLATE = 3
EVAL_PER_TEMPLATE = 2
GUARDRAIL = 1.2


def _templates(registry):
    from repro.tdgen.jobgen import JobGenerator

    gen = JobGenerator(registry, seed=42)
    return gen.templates_for_shapes(
        ("pipeline", "juncture", "replicate", "loop"),
        max_operators=10,
        count=N_TEMPLATES,
        min_operators=6,
    )


def _draw_jobs(templates, rng, tag, per_template, low_exp, high_exp):
    """Distribution-drawn cardinalities (log-uniform), never exact replays."""
    jobs = []
    for index, template in enumerate(templates):
        for rep in range(per_template):
            cardinality = 10.0 ** rng.uniform(low_exp, high_exp)
            jobs.append(BatchJob(f"{tag}-t{index}q{rep}", template(cardinality)))
    return jobs


def test_template_cache_hit_rate_and_throughput(report, trajectory):
    registry = synthetic_registry(N_PLATFORMS)
    templates = _templates(registry)
    factory = linear_robopt_factory(platforms=N_PLATFORMS, seed=3)
    rng = np.random.default_rng(2024)

    # Warm draws from [1e3, 1e5], eval draws from [1e6, 1e8]: disjoint
    # cardinality ranges, so no eval job can share a fingerprint *bucket*
    # with any warm job — the exact tier alone is structurally blind here.
    warm_jobs = _draw_jobs(templates, rng, "warm", WARM_PER_TEMPLATE, 3.0, 5.0)
    eval_jobs = _draw_jobs(templates, rng, "eval", EVAL_PER_TEMPLATE, 6.0, 8.0)

    # Tier 1 alone: the exact-fingerprint cache misses the entire eval
    # phase (distribution-drawn cardinalities never replay a bucket).
    exact_only = BatchOptimizationService(
        factory, registry, workers=0, cache=PlanCache(max_entries=512)
    )
    exact_only.optimize_batch(warm_jobs)
    exact_eval = exact_only.optimize_batch(eval_jobs)
    assert exact_eval.n_failed == 0
    exact_alone_hit_rate = exact_eval.cache_hit_rate

    # Both tiers: template lookups re-cost remembered candidates at the
    # eval cardinalities and serve under the guardrail.
    two_tier = BatchOptimizationService(
        factory,
        registry,
        workers=0,
        cache=PlanCache(max_entries=512),
        template_cache=TemplateCache(max_templates=256, guardrail=GUARDRAIL),
    )
    warm_report = two_tier.optimize_batch(warm_jobs)
    assert warm_report.n_failed == 0
    eval_report = two_tier.optimize_batch(eval_jobs)
    assert eval_report.n_failed == 0

    # Baseline for the throughput comparison: full enumeration of the
    # same eval jobs, no caches at all.
    uncached = BatchOptimizationService(factory, registry, workers=0)
    uncached_eval = uncached.optimize_batch(eval_jobs)
    assert uncached_eval.n_failed == 0

    served = eval_report.n_template_hits
    speedup = eval_report.plans_per_sec / max(uncached_eval.plans_per_sec, 1e-9)
    report(
        "Template-cache serving (distribution-drawn cardinalities)",
        ["configuration", "eval wall_s", "plans/s", "exact hits", "template hits"],
        [
            ["no cache", f"{uncached_eval.wall_s:.2f}",
             f"{uncached_eval.plans_per_sec:.1f}", "-", "-"],
            ["exact tier only", f"{exact_eval.wall_s:.2f}",
             f"{exact_eval.plans_per_sec:.1f}",
             f"{exact_eval.cache_hits}/{exact_eval.n_jobs}", "-"],
            ["exact + template", f"{eval_report.wall_s:.2f}",
             f"{eval_report.plans_per_sec:.1f}",
             f"{eval_report.cache_hits}/{eval_report.n_jobs}",
             f"{served}/{eval_report.n_jobs}"],
        ],
        note=(
            f"template tier hit rate {eval_report.template_hit_rate:.0%} "
            f"(exact tier alone: {exact_alone_hit_rate:.0%}); "
            f"template-served eval {speedup:.1f}x the uncached throughput "
            f"({N_TEMPLATES} templates x {EVAL_PER_TEMPLATE} eval draws, "
            f"guardrail {GUARDRAIL})"
        ),
    )
    metrics = {
        "template_hit_rate": eval_report.template_hit_rate,
        "template_hits": eval_report.template_hits,
        "template_misses": eval_report.template_misses,
        "exact_alone_hit_rate": exact_alone_hit_rate,
        "warm_plans_per_sec": eval_report.plans_per_sec,
        "uncached_plans_per_sec": uncached_eval.plans_per_sec,
        "template_speedup": speedup,
        "n_templates": N_TEMPLATES,
        "n_eval_jobs": eval_report.n_jobs,
    }
    trajectory(metrics, meta={"platforms": N_PLATFORMS, "guardrail": GUARDRAIL})
    # A stable series name for scripts/check_bench_regression.py.
    record_trajectory(
        "serve.template_cache",
        metrics,
        meta={"platforms": N_PLATFORMS, "guardrail": GUARDRAIL},
    )
    # The ISSUE 9 acceptance bar: the template tier serves the majority
    # of a parametric workload the exact tier is blind to.
    assert exact_alone_hit_rate <= 0.05
    assert eval_report.template_hit_rate >= 0.5
    # Serving from the template tier must actually be faster than
    # re-enumerating (re-cost is one model call per candidate).
    assert eval_report.wall_s < uncached_eval.wall_s
