"""Micro-benchmarks of the enumeration hot-path kernels (§IV-D/E).

The Fig. 9(a) latency benchmark measures the whole optimizer; this file
isolates the two kernels ISSUE 8 rewrote — the pair-coded cartesian
merge and the packed-footprint prune — and records their steady-state
throughput (rows produced per second, rows pruned per second) in the
perf trajectory. The workload mirrors the enumerator's steady state on
the 80-operator pipeline: walk the chain, merging the accumulated
segment with the next singleton and pruning after every merge, exactly
the shape the priority enumerator settles into.
"""

import time

from repro.bench.synthetic_setup import latency_setup
from repro.core.enumeration import EnumerationContext
from repro.core.operations import MergeScratch, merge_enumerations
from repro.core.pruning import ml_cost, prune
from repro.workloads import synthetic

N_OPS = 80
REPEATS = 5


def _chain_walk(ctx, cost_fn, scratch):
    """One enumerator-shaped pass; returns (rows, seconds) per kernel."""
    singles = ctx.singleton_enumerations()
    merged_rows = 0
    merge_s = 0.0
    pruned_rows = 0
    prune_s = 0.0
    acc = singles[0]
    for s in singles[1:]:
        t0 = time.perf_counter()
        m = merge_enumerations(acc, s, scratch=scratch)
        merge_s += time.perf_counter() - t0
        merged_rows += m.n_vectors
        t0 = time.perf_counter()
        acc, _ = prune(m, cost_fn)
        prune_s += time.perf_counter() - t0
        pruned_rows += m.n_vectors
    return merged_rows, merge_s, pruned_rows, prune_s


def test_merge_prune_kernel_throughput(benchmark, report, trajectory):
    """Steady-state kernel throughput on the 80-op / 2-platform pipeline."""
    registry, schema, model, _ = latency_setup(2)
    plan = synthetic.pipeline_plan(N_OPS)
    ctx = EnumerationContext(plan, registry, schema=schema)
    cost_fn = ml_cost(model)
    scratch = MergeScratch()

    best = None
    for _ in range(REPEATS):
        run = _chain_walk(ctx, cost_fn, scratch)
        if best is None or run[1] + run[3] < best[1] + best[3]:
            best = run
    merged_rows, merge_s, pruned_rows, prune_s = best
    n_merges = N_OPS - 1
    merged_per_s = merged_rows / merge_s
    pruned_per_s = pruned_rows / prune_s

    benchmark(lambda: _chain_walk(ctx, cost_fn, scratch))
    trajectory(
        {
            "merged_rows_per_s": merged_per_s,
            "pruned_rows_per_s": pruned_per_s,
            "merge_us_per_call": merge_s / n_merges * 1e6,
            "prune_us_per_call": prune_s / n_merges * 1e6,
        },
        meta={"n_ops": N_OPS, "platforms": 2, "issue": 8},
    )
    report(
        "Core enumeration kernels — steady-state throughput (80 ops, 2 platforms)",
        ["kernel", "rows/s", "us/call", "calls", "rows"],
        [
            ["merge", merged_per_s, merge_s / n_merges * 1e6, n_merges, merged_rows],
            ["prune", pruned_per_s, prune_s / n_merges * 1e6, n_merges, pruned_rows],
        ],
        note="prune time includes the forest predict; one call per chain merge",
    )
    # Loose floors: steady-state rows are small (the boundary bounds the
    # survivor count), so these gate per-call dispatch overhead, not bulk
    # bandwidth. Even slow CI runners clear them by an order of magnitude.
    assert merged_per_s > 2e4, f"merge kernel too slow: {merged_per_s:.0f} rows/s"
    assert pruned_per_s > 5e3, f"prune kernel too slow: {pruned_per_s:.0f} rows/s"
