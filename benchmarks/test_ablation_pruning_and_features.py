"""Ablations — boundary pruning, β-switch pruning, and the feature extension.

Three design choices DESIGN.md calls out:

1. boundary pruning (§IV-E): optimization latency and search-space size
   with and without it;
2. TDGEN's β-switch pruning (§VI-A): how β controls the job space;
3. the per-platform aggregate feature block (a reproduction extension):
   its contribution to plan-ordering accuracy.
"""

from functools import lru_cache

import numpy as np
import pytest

from repro.bench.synthetic_setup import latency_setup
from repro.core.enumeration import EnumerationContext
from repro.core.enumerator import PriorityEnumerator
from repro.core.operations import enumerate_abstract, vectorize
from repro.core.pruning import ml_cost, prune_switches
from repro.ml.model import RuntimeModel
from repro.workloads import synthetic


def test_ablation_boundary_pruning(benchmark, report):
    registry, schema, model, _ = latency_setup(3)
    rows = []
    for n_ops in (6, 9, 12):
        plan = synthetic.pipeline_plan(n_ops)
        pruned = PriorityEnumerator(
            registry, ml_cost(model), schema=schema
        ).enumerate_plan(plan)
        full = PriorityEnumerator(
            registry, ml_cost(model), pruning=False, schema=schema
        ).enumerate_plan(plan)
        rows.append(
            [
                n_ops,
                pruned.stats.vectors_created,
                full.stats.vectors_created,
                pruned.stats.latency_s * 1e3,
                full.stats.latency_s * 1e3,
            ]
        )
    benchmark(
        lambda: PriorityEnumerator(
            registry, ml_cost(model), schema=schema
        ).enumerate_plan(synthetic.pipeline_plan(9))
    )
    report(
        "Ablation — boundary pruning on/off (3 platforms)",
        ["#ops", "subplans w/", "subplans w/o", "latency w/ (ms)", "latency w/o (ms)"],
        rows,
        note="without pruning both columns grow as k^n",
    )
    assert rows[-1][1] < rows[-1][2] / 10


def test_ablation_switch_pruning_beta(benchmark, report):
    registry, schema, _, _ = latency_setup(3)
    plan = synthetic.pipeline_plan(7)
    ctx = EnumerationContext(plan, registry, schema)
    enum = benchmark.pedantic(
        lambda: enumerate_abstract(vectorize(ctx)), rounds=1, iterations=1
    )
    rows = []
    previous = 0
    for beta in (0, 1, 2, 3, 5, 100):
        survivors = prune_switches(enum, beta=beta).n_vectors
        rows.append([beta, survivors, enum.n_vectors])
        assert survivors >= previous
        previous = survivors
    report(
        "Ablation — TDGEN β-switch pruning (7 ops, 3 platforms)",
        ["beta", "surviving plans", "total plans"],
        rows,
        note="TDGEN defaults to beta=3: plans with many switches are rarely optimal",
    )
    assert rows[0][1] == 3  # single-platform plans only
    assert rows[-1][1] == enum.n_vectors


def test_ablation_platform_aggregate_features(benchmark, report):
    """Zeroing the per-platform aggregate block degrades plan ordering —
    the justification for this reproduction extension to §IV-A."""
    from repro.bench.context import get_context
    from repro.ml.metrics import spearman
    from repro.rheem.execution_plan import single_platform_plan
    from repro.simulator.executor import SimulatedExecutor
    from repro.tdgen.generator import TrainingDataGenerator
    from repro.workloads import sgd, wordcount

    ctx = get_context(("java", "spark", "flink"))
    schema = ctx.schema
    agg_cols = []
    for i in range(len(ctx.registry)):
        agg_cols.extend(
            [
                schema.platform_count_cell(i),
                schema.platform_in_card_cell(i),
                schema.platform_out_card_cell(i),
                schema.platform_bytes_cell(i),
                schema.platform_loop_cell(i),
                schema.platform_loop_work_cell(i),
            ]
        )
    agg_cols = np.asarray(agg_cols)

    executor = SimulatedExecutor.default(ctx.registry)
    tdgen = TrainingDataGenerator(ctx.registry, executor, seed=77, schema=schema)
    dataset = tdgen.generate(5000, assignments_per_plan=6)

    ablated = dataset.take(np.arange(len(dataset)))
    ablated.X[:, agg_cols] = 0.0

    params = dict(n_estimators=32, max_depth=18, max_features=64)

    def train_both():
        return (
            RuntimeModel.train(dataset, "random_forest", seed=0, **params),
            RuntimeModel.train(ablated, "random_forest", seed=0, **params),
        )

    full_model, ablated_model = benchmark.pedantic(train_both, rounds=1, iterations=1)

    GB = 1024 ** 3
    plans = [wordcount.plan(s) for s in (0.03 * GB, 3 * GB, 100 * GB)]
    plans += [sgd.plan(s) for s in (2 * GB, 7.4 * GB)]
    truths, vectors = [], []
    for plan in plans:
        for platform in ctx.registry.names:
            xp = single_platform_plan(plan, platform, ctx.registry)
            record = executor.execute(xp)
            truths.append(record.runtime_s if record.ok else 7200.0)
            vectors.append(schema.encode_execution_plan(xp))
    truths = np.asarray(truths)
    matrix = np.vstack(vectors)
    matrix_ablated = matrix.copy()
    matrix_ablated[:, agg_cols] = 0.0

    s_full = spearman(truths, full_model.predict(matrix))
    s_ablated = spearman(truths, ablated_model.predict(matrix_ablated))
    report(
        "Ablation — per-platform aggregate features",
        ["features", "workload spearman"],
        [["full plan vector", s_full], ["aggregates zeroed", s_ablated]],
        note="the aggregate block exposes per-platform load (bytes, loop work) "
        "that tree models cannot reassemble from per-kind cells",
    )
    assert s_full >= s_ablated - 0.02
