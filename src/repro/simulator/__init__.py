"""The simulated multi-platform execution environment.

Stands in for the paper's 10-node cluster (Spark 2.4, Flink 1.7, Java 9,
Postgres 9.6, GraphX; §VII-A). The simulator is the single source of
ground-truth runtimes in this reproduction: TDGEN executes jobs against
it, the RHEEMix cost model is calibrated against it, and every
effectiveness experiment (Figs. 2, 11, 12, 13) measures plans on it.

Its behaviour is intentionally *nonlinear* in exactly the ways the paper
argues real platforms are: fixed startup costs that amortize with data
size, per-operator scheduling overheads that multiply inside loops,
platform memory limits (Java goes out-of-memory), shuffle costs, and
operator interactions (a cache directly feeding a shuffle-partition
sample loses the sample's state — the paper's SGD anecdote, §VII-C2).
A cost model that is linear per operator cannot represent these effects;
an ML model trained on execution logs can. That asymmetry is the paper's
central claim, and the simulator is constructed to expose it — not to
favour either optimizer a priori: both see only (plan, runtime) pairs.
"""

from repro.simulator.profiles import (
    DEFAULT_PROFILES,
    PlatformProfile,
    default_profiles,
)
from repro.simulator.executor import ExecutionReport, SimulatedExecutor

__all__ = [
    "PlatformProfile",
    "DEFAULT_PROFILES",
    "default_profiles",
    "SimulatedExecutor",
    "ExecutionReport",
]
