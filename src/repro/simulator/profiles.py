"""Per-platform performance profiles.

Each :class:`PlatformProfile` captures the cost structure of one engine:

* ``startup_s`` — fixed job submission cost, paid once per job per
  platform (Spark/Flink cluster scheduling vs. Java's zero);
* ``per_op_overhead_s`` — fixed cost per operator invocation (task
  scheduling per stage); the multiplication of this constant inside loops
  is what makes single-node Java attractive for iterative small-state
  operators (the paper's k-means discussion, Fig. 12(a));
* ``tuple_rate`` — tuples/second for a linear-complexity UDF;
* ``shuffle_rate`` — tuples/second moved by repartitioning operators;
* ``io_rate`` — bytes/second for reading sources;
* ``loop_overhead_s`` — per-iteration scheduling cost of driving a loop;
* ``memory_bytes`` — working-set capacity (exceeding it on a local
  platform raises out-of-memory, as Java does in Fig. 11);
* ``kind_speed`` — per-operator-kind speed multipliers (>1 = faster than
  the platform's base rate), modelling that engines have individually
  tuned operator implementations (§II: "the large diversity in execution
  operators implementations").

The default constants are calibrated so that the qualitative landscape of
the paper's Figs. 2 and 11–13 holds: Java wins small inputs and tight
loops, Spark/Flink win large inputs (with slightly different sweet
spots), Postgres wins relational work on data it already stores, and
GraphX only ever runs PageRank.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from repro.exceptions import SimulationError
from repro.rheem.operators import UdfComplexity
from repro.rheem.platforms import PlatformRegistry

GB = 1024 ** 3

#: Work multiplier per UDF complexity class (per-tuple CPU cost scale).
COMPLEXITY_WORK = {
    UdfComplexity.LOGARITHMIC: 0.6,
    UdfComplexity.LINEAR: 1.0,
    UdfComplexity.QUADRATIC: 4.0,
    UdfComplexity.SUPER_QUADRATIC: 12.0,
}

#: Intrinsic per-tuple work of each operator kind relative to a plain Map.
KIND_WORK = {
    "TextFileSource": 0.5,
    "CollectionSource": 0.2,
    "TableSource": 0.5,
    "Map": 1.0,
    "FlatMap": 1.3,
    "Filter": 0.7,
    "Project": 0.4,
    "ReduceBy": 1.5,
    "GroupBy": 1.8,
    "Reduce": 1.0,
    "Sort": 2.2,
    "Distinct": 1.4,
    "Count": 0.3,
    "Sample": 0.4,
    "ShufflePartitionSample": 0.6,
    "Cache": 0.5,
    "ZipWithId": 0.6,
    "MapPartitions": 0.9,
    "Join": 2.4,
    "Union": 0.3,
    "Cartesian": 1.0,  # dominated by its output cardinality
    "Intersect": 1.6,
    "PageRank": 9.0,
    "CollectionSink": 0.4,
    "TextFileSink": 0.6,
    "Callback": 0.1,
}

#: Operator kinds that repartition data on distributed engines.
SHUFFLE_KINDS = frozenset(
    {"ReduceBy", "GroupBy", "Join", "Sort", "Distinct", "Intersect"}
)

#: Conversion cost structure: (fixed seconds, tuples per second).
CONVERSION_COSTS = {
    "collect": (0.45, 5.0e6),
    "distribute": (0.45, 8.0e6),
    "db_export": (0.30, 1.2e7),
    "db_import": (0.60, 2.5e6),
    "broadcast": (0.05, 2.0e7),
}


@dataclass(frozen=True)
class PlatformProfile:
    """The simulated cost structure of one platform."""

    name: str
    startup_s: float
    per_op_overhead_s: float
    tuple_rate: float
    shuffle_rate: float
    io_rate: float
    loop_overhead_s: float
    memory_bytes: Optional[float] = None
    kind_speed: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self):
        if self.tuple_rate <= 0 or self.io_rate <= 0 or self.shuffle_rate <= 0:
            raise SimulationError(f"rates must be positive for {self.name!r}")

    def speed(self, kind_name: str) -> float:
        """Speed multiplier of this platform for one operator kind."""
        return self.kind_speed.get(kind_name, 1.0)

    def with_overrides(self, **kwargs) -> "PlatformProfile":
        """A copy with some fields replaced (used by ablation benches)."""
        return replace(self, **kwargs)


def _java() -> PlatformProfile:
    return PlatformProfile(
        name="java",
        startup_s=0.0,
        per_op_overhead_s=2e-4,
        tuple_rate=8.0e6,
        shuffle_rate=2.0e7,  # in-memory "shuffle" is just a hash pass
        io_rate=250e6,
        loop_overhead_s=2e-3,
        memory_bytes=20 * GB,
        kind_speed={
            # Single-node, zero coordination: light operators scream.
            "Sample": 2.0,
            "ShufflePartitionSample": 2.0,
            "CollectionSink": 2.0,
            "PageRank": 1.6,  # compact in-memory graphs iterate fast
        },
    )


def _spark() -> PlatformProfile:
    return PlatformProfile(
        name="spark",
        startup_s=6.0,
        per_op_overhead_s=0.15,
        tuple_rate=1.5e8,
        shuffle_rate=6.0e7,
        io_rate=2.2e9,
        loop_overhead_s=0.9,
        memory_bytes=None,  # spills to disk instead of failing
        kind_speed={
            "ReduceBy": 1.25,
            "Join": 1.2,
            "GroupBy": 1.2,
        },
    )


def _flink() -> PlatformProfile:
    return PlatformProfile(
        name="flink",
        startup_s=4.5,
        per_op_overhead_s=0.12,
        tuple_rate=1.2e8,
        shuffle_rate=7.0e7,  # pipelined shuffles
        io_rate=2.0e9,
        loop_overhead_s=0.45,  # native iterations
        memory_bytes=None,
        kind_speed={
            "Map": 1.25,
            "FlatMap": 1.3,
            "Filter": 1.25,
            "Project": 1.2,
        },
    )


def _postgres() -> PlatformProfile:
    return PlatformProfile(
        name="postgres",
        startup_s=0.15,
        per_op_overhead_s=5e-3,
        tuple_rate=5.0e6,
        shuffle_rate=2.5e6,
        io_rate=400e6,
        loop_overhead_s=0.05,
        memory_bytes=None,  # spills
        kind_speed={
            # Scans, filters and projections are what a database excels at.
            "Filter": 2.2,
            "Project": 3.0,
            "TableSource": 2.5,
            # Joins/aggregations of hundreds of millions of rows spill and
            # run on one node — far slower than a 10-node cluster.
            "Join": 0.4,
            "ReduceBy": 0.6,
            "Sort": 0.8,
        },
    )


def _graphx() -> PlatformProfile:
    return PlatformProfile(
        name="graphx",
        startup_s=9.0,
        per_op_overhead_s=0.2,
        tuple_rate=1.0e8,
        shuffle_rate=5.0e7,
        io_rate=2.0e9,
        loop_overhead_s=0.8,
        memory_bytes=None,
        kind_speed={"PageRank": 6.0},
    )


def _synthetic(index: int) -> PlatformProfile:
    """Profiles for the synthetic scalability registries.

    ``platform0`` mimics Java (local, no startup), higher indices mimic
    increasingly "heavier" distributed engines; the variation keeps the
    optimization problem non-degenerate when sweeping 2–5 platforms.
    """
    if index == 0:
        return _java().with_overrides(name="platform0")
    base = _spark() if index % 2 == 1 else _flink()
    factor = 1.0 + 0.12 * (index - 1)
    return base.with_overrides(
        name=f"platform{index}",
        startup_s=base.startup_s * factor,
        tuple_rate=base.tuple_rate / factor,
    )


DEFAULT_PROFILES = {
    "java": _java(),
    "spark": _spark(),
    "flink": _flink(),
    "postgres": _postgres(),
    "graphx": _graphx(),
}


def default_profiles(registry: PlatformRegistry) -> Dict[str, PlatformProfile]:
    """Profiles for every platform of a registry.

    Real platform names map to their calibrated profiles; ``platformN``
    names (synthetic registries) map to generated ones.
    """
    profiles: Dict[str, PlatformProfile] = {}
    for platform in registry:
        if platform.name in DEFAULT_PROFILES:
            profiles[platform.name] = DEFAULT_PROFILES[platform.name]
        elif platform.name.startswith("platform"):
            index = int(platform.name[len("platform") :])
            profiles[platform.name] = _synthetic(index)
        else:
            raise SimulationError(
                f"no default profile for platform {platform.name!r}; "
                "pass explicit profiles to SimulatedExecutor"
            )
    return profiles
