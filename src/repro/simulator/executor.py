"""The simulated executor: runs execution plans against platform profiles.

``execute(xplan)`` walks the plan once and composes an analytic runtime:
platform startups, per-operator work (UDF complexity × kind work ×
platform rate), shuffle costs, source I/O, loop-iteration multipliers and
overheads, conversion-operator costs, plus the failure modes the paper's
figures show — out-of-memory on local platforms and the one-hour abort.

Determinism: with ``noise == 0`` the runtime is a pure function of the
execution plan. With noise enabled, a log-normal factor is drawn from a
generator seeded by the executor seed *and* the plan signature, so the
same plan always "measures" the same runtime within one executor — as a
warm, stable cluster would.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.exceptions import ExecutionFailure, SimulationError
from repro.obs import current_tracer
from repro.rheem.execution_plan import ExecutionPlan
from repro.rheem.platforms import CATEGORY_DISTRIBUTED, PlatformRegistry
from repro.simulator.profiles import (
    COMPLEXITY_WORK,
    CONVERSION_COSTS,
    KIND_WORK,
    SHUFFLE_KINDS,
    PlatformProfile,
    default_profiles,
)

#: Default abort threshold, matching the paper's "aborted after 1 hour".
DEFAULT_TIMEOUT_S = 3600.0

#: Partitions of a distributed dataset (10 nodes × 4 cores, §VII-A):
#: a ShufflePartitionSample reshuffles one partition, not the whole input.
PARTITIONS = 40

#: Fixed cost of (re)shuffling a partition for sampling: a full stage with
#: task scheduling and disk round-trips, not just moving the tuples.
SAMPLE_RESHUFFLE_FIXED_S = 0.3

#: Conversions of tiny datasets skip most of their fixed cost (a driver
#: that just ran an action already holds a small result).
SMALL_CONVERSION_CARD = 1e4
SMALL_CONVERSION_DISCOUNT = 0.2

#: Loop-state redistribution constants (see ``_loop_costs``).
STATE_SMALL_CARD = 2000.0
STATE_RDD_FIXED_S = 0.35
STATE_RDD_PER_ELEMENT_S = 5e-3
STATE_BROADCAST_FIXED_S = 0.02
STATE_BROADCAST_RATE = 2.0e6

STATUS_OK = "ok"
STATUS_OOM = "oom"
STATUS_TIMEOUT = "timeout"


@dataclass
class ExecutionReport:
    """The outcome of one simulated execution."""

    status: str
    runtime_s: float
    breakdown: Dict[str, float] = field(default_factory=dict)
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExecutionReport({self.status}, {self.runtime_s:.2f}s)"


class SimulatedExecutor:
    """Executes :class:`ExecutionPlan` objects on simulated platforms.

    Parameters
    ----------
    profiles:
        Platform-name → :class:`PlatformProfile` map covering every
        platform any submitted plan may use.
    seed:
        Base seed for measurement noise.
    noise:
        Log-normal sigma of the multiplicative runtime noise; ``0``
        disables it (fully deterministic, the default).
    """

    def __init__(
        self,
        profiles: Dict[str, PlatformProfile],
        seed: Optional[int] = None,
        noise: float = 0.0,
    ):
        if noise < 0:
            raise SimulationError(f"noise must be >= 0, got {noise}")
        self.profiles = dict(profiles)
        self.seed = 0 if seed is None else int(seed)
        self.noise = float(noise)
        #: number of execute() calls, used by TDGEN cost accounting
        self.executions = 0

    @classmethod
    def default(
        cls,
        registry: PlatformRegistry,
        seed: Optional[int] = None,
        noise: float = 0.0,
    ) -> "SimulatedExecutor":
        """An executor with the calibrated default profiles for a registry."""
        return cls(default_profiles(registry), seed=seed, noise=noise)

    # ------------------------------------------------------------------
    def _profile(self, platform_name: str) -> PlatformProfile:
        try:
            return self.profiles[platform_name]
        except KeyError:
            raise SimulationError(
                f"no profile for platform {platform_name!r}"
            ) from None

    @staticmethod
    def _tuple_size(plan) -> float:
        size = plan.average_input_tuple_size()
        return size if size > 0 else 100.0

    def _operator_time(
        self, xplan: ExecutionPlan, op_id: int, cards, tuple_size: float
    ) -> float:
        """Total simulated seconds one operator contributes (all iterations)."""
        plan = xplan.plan
        op = plan.operators[op_id]
        profile = self._profile(xplan.assignment[op_id])
        platform = xplan.registry[xplan.assignment[op_id]]
        in_card, out_card = cards[op_id]
        iters = plan.loop_iterations(op_id)
        kind = op.kind_name

        # Out-of-memory: local platforms cannot hold oversized working sets.
        if profile.memory_bytes is not None:
            working = max(in_card, out_card) * tuple_size
            if working > profile.memory_bytes:
                raise ExecutionFailure(
                    "oom",
                    runtime=0.0,
                    message=(
                        f"{kind} on {profile.name}: working set "
                        f"{working / 2**30:.1f} GiB exceeds "
                        f"{profile.memory_bytes / 2**30:.0f} GiB"
                    ),
                )

        rate = profile.tuple_rate * profile.speed(kind)
        work = in_card * KIND_WORK.get(kind, 1.0) * COMPLEXITY_WORK[op.udf_complexity]
        if kind in ("Cartesian", "FlatMap"):
            work += out_card  # output materialization dominates expansion ops

        if kind in ("Sample", "ShufflePartitionSample"):
            return self._sample_time(xplan, op_id, profile, platform, cards, iters)

        per_invocation = profile.per_op_overhead_s + work / rate
        if kind in SHUFFLE_KINDS and platform.category == CATEGORY_DISTRIBUTED:
            per_invocation += in_card / profile.shuffle_rate
        if op.kind.is_source:
            dataset = plan.datasets[op_id]
            per_invocation += dataset.size_bytes / profile.io_rate
        if kind == "Cache":
            # Caching materializes once, regardless of loop membership.
            return per_invocation
        return per_invocation * iters

    def _sample_time(
        self, xplan: ExecutionPlan, op_id: int, profile, platform, cards, iters
    ) -> float:
        """Sampling operators keep state across iterations (§VII-C2).

        A ``ShufflePartitionSample`` shuffles one partition on its first
        call and then reads sequentially — *unless* a ``Cache`` on the
        same distributed platform directly feeds it, which resets the
        sample's first-time flag every iteration and forces a reshuffle
        (the paper's SGD plan anecdote). A plain ``Sample`` scans its
        input every invocation.
        """
        plan = xplan.plan
        op = plan.operators[op_id]
        in_card, out_card = cards[op_id]
        rate = profile.tuple_rate * profile.speed(op.kind_name)
        overhead = profile.per_op_overhead_s

        if op.kind_name == "Sample":
            per_invocation = overhead + in_card / rate
            return per_invocation * iters

        first = overhead + out_card / rate
        if platform.category == CATEGORY_DISTRIBUTED:
            # Shuffling one partition suffices to draw a random batch.
            first += (
                SAMPLE_RESHUFFLE_FIXED_S
                + (in_card / PARTITIONS) / profile.shuffle_rate
            )
            state_lost = any(
                plan.operators[parent].kind_name == "Cache"
                and xplan.assignment[parent] == xplan.assignment[op_id]
                for parent in plan.parents(op_id)
            )
            if state_lost and iters > 1:
                return first * iters
        else:
            # A local sample materializes its input once, then indexes it.
            first += in_card / rate
        subsequent = overhead + out_card / rate
        return first + (iters - 1) * subsequent

    def _conversion_time(self, xplan: ExecutionPlan) -> float:
        total = 0.0
        for conv in xplan.conversions():
            fixed, rate = CONVERSION_COSTS[conv.kind]
            if conv.cardinality <= SMALL_CONVERSION_CARD:
                fixed *= SMALL_CONVERSION_DISCOUNT
            total += (fixed + conv.cardinality / rate) * conv.iterations
        return total

    def _loop_costs(self, xplan: ExecutionPlan, cards) -> float:
        """Per-iteration driving overheads plus loop-state redistribution.

        Every platform appearing in a loop body pays its per-iteration
        scheduling overhead. On top of that, iterative dataflows carry a
        *state* (centroids, weights, ranks — approximated as the smallest
        output among the body operators) that must be made available to
        the next iteration:

        * state produced on a **distributed** platform: small states are
          re-broadcast as a distributed dataset, paying a fixed cost plus
          a per-element scheduling cost (the paper's "broadcasting the
          centroids as an RDD" penalty, §VII-C2); large states are
          partitioned and reshuffled at shuffle rate;
        * state produced on a **local** platform: shipped to each
          distributed platform of the body as a cheap collection
          broadcast (Rheem's broadcast channel).
        """
        total = 0.0
        for spec in xplan.plan.loops:
            body = sorted(spec.body)
            platforms = {xplan.assignment[op_id] for op_id in body}
            for name in platforms:
                total += spec.iterations * self._profile(name).loop_overhead_s

            # The loop-carried state is the smallest output produced in the
            # body; on ties, the latest producer (it feeds the next
            # iteration). E.g. k-means: Map(newCentroids), not the ReduceBy.
            topo_pos = {op_id: i for i, op_id in enumerate(xplan.plan.topological_order())}
            state_op = min(body, key=lambda op_id: (cards[op_id][1], -topo_pos[op_id]))
            state_card = max(cards[state_op][1], 1.0)
            state_platform = xplan.registry[xplan.assignment[state_op]]
            if state_platform.category == CATEGORY_DISTRIBUTED:
                if state_card <= STATE_SMALL_CARD:
                    per_iter = STATE_RDD_FIXED_S + state_card * STATE_RDD_PER_ELEMENT_S
                else:
                    profile = self._profile(state_platform.name)
                    per_iter = STATE_RDD_FIXED_S + state_card / profile.shuffle_rate
            else:
                distributed_consumers = sum(
                    1
                    for name in platforms
                    if xplan.registry[name].category == CATEGORY_DISTRIBUTED
                )
                per_iter = (
                    STATE_BROADCAST_FIXED_S + state_card / STATE_BROADCAST_RATE
                ) * max(distributed_consumers, 1)
            total += spec.iterations * per_iter
        return total

    def _noise_factor(self, xplan: ExecutionPlan) -> float:
        if self.noise == 0.0:
            return 1.0
        digest = zlib.crc32(repr(xplan.signature()).encode())
        rng = np.random.default_rng((self.seed << 32) ^ digest)
        return float(rng.lognormal(mean=0.0, sigma=self.noise))

    # ------------------------------------------------------------------
    def execute(
        self,
        xplan: ExecutionPlan,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        detailed: bool = False,
    ) -> ExecutionReport:
        """Run a plan; never raises for OOM/timeout — reports them.

        With ``detailed=True`` the report's breakdown additionally carries
        ``per_operator``: simulated seconds per operator id (all
        iterations included) — the executor-side analogue of EXPLAIN
        ANALYZE.
        """
        tracer = current_tracer()
        if tracer.enabled:
            with tracer.span(
                "simulate.execute",
                platforms=sorted(xplan.platforms_used()),
                n_operators=xplan.plan.n_operators,
            ) as span:
                report = self._execute(xplan, timeout_s, detailed)
                span.set(status=report.status, runtime_s=report.runtime_s)
                for stage in ("startup", "operators", "conversions", "loops"):
                    if stage in report.breakdown:
                        span.set(**{f"sim_{stage}_s": report.breakdown[stage]})
            tracer.count("simulate.executions")
            if report.status != STATUS_OK:
                tracer.count(f"simulate.{report.status}")
            return report
        return self._execute(xplan, timeout_s, detailed)

    def _execute(
        self, xplan: ExecutionPlan, timeout_s: float, detailed: bool
    ) -> ExecutionReport:
        self.executions += 1
        plan = xplan.plan
        cards = plan.cardinalities()
        tuple_size = self._tuple_size(plan)
        breakdown: Dict[str, float] = {}

        startup = sum(
            self._profile(name).startup_s for name in xplan.platforms_used()
        )
        breakdown["startup"] = startup
        try:
            per_operator = {
                op_id: self._operator_time(xplan, op_id, cards, tuple_size)
                for op_id in plan.operators
            }
        except ExecutionFailure as failure:
            return ExecutionReport(
                status=STATUS_OOM,
                runtime_s=float("inf"),
                breakdown=breakdown,
                detail=str(failure),
            )
        operators = sum(per_operator.values())
        breakdown["operators"] = operators
        if detailed:
            breakdown["per_operator"] = per_operator
        conversions = self._conversion_time(xplan)
        breakdown["conversions"] = conversions
        loops = self._loop_costs(xplan, cards)
        breakdown["loops"] = loops

        runtime = (startup + operators + conversions + loops) * self._noise_factor(
            xplan
        )
        breakdown["total"] = runtime
        if runtime > timeout_s:
            return ExecutionReport(
                status=STATUS_TIMEOUT,
                runtime_s=timeout_s,
                breakdown=breakdown,
                detail=f"aborted after {timeout_s:.0f}s (would take {runtime:.0f}s)",
            )
        return ExecutionReport(
            status=STATUS_OK, runtime_s=runtime, breakdown=breakdown
        )

    def measure(
        self, xplan: ExecutionPlan, timeout_s: float = DEFAULT_TIMEOUT_S
    ) -> float:
        """Runtime in seconds; raises :class:`ExecutionFailure` on OOM/abort."""
        report = self.execute(xplan, timeout_s=timeout_s)
        if not report.ok:
            raise ExecutionFailure(report.status, report.runtime_s, report.detail)
        return report.runtime_s
