"""Baseline optimizers the paper compares Robopt against (§VII).

* :class:`~repro.baselines.object_enumerator.ObjectEnumerator` — the
  traditional enumeration over Python plan objects (Rheem's style), with
  the same priority scheme and boundary pruning as Robopt;
* :mod:`repro.baselines.rheem_ml` — "Rheem-ML": the object enumeration
  with the cost model swapped for the ML model used as an external black
  box, paying a plan→vector transformation for every scored subplan;
* :mod:`repro.baselines.exhaustive` — the exhaustive (pruning-free)
  vectorized enumeration.

(The cost-based RHEEMix baseline lives in :mod:`repro.cost.optimizer`.)
"""

from repro.baselines.object_enumerator import (
    ObjectEnumerationResult,
    ObjectEnumerator,
    ObjectStats,
    ObjectSubplan,
)
from repro.baselines.rheem_ml import RheemMLOptimizer
from repro.baselines.exhaustive import ExhaustiveOptimizer

__all__ = [
    "ObjectEnumerator",
    "ObjectSubplan",
    "ObjectStats",
    "ObjectEnumerationResult",
    "RheemMLOptimizer",
    "ExhaustiveOptimizer",
]
