"""Rheem-ML: the "just swap the cost model for an ML model" baseline.

The paper's strawman (§I, §VII-B): keep the traditional object-based plan
enumeration and call the ML model as an external black box. Every scored
subplan must first be transformed into a feature vector — a transformation
that happens millions of times across an enumeration and accounted for 47%
of Rheem-ML's optimization time in the paper's measurements, making it up
to 11× slower than Robopt even though both explore the same search space
with the same pruning.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from repro.api import OptimizationResult, RunStats
from repro.baselines.object_enumerator import ObjectEnumerator, ObjectSubplan
from repro.core.features import FeatureSchema
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.platforms import PlatformRegistry


class RheemMLOptimizer:
    """Object-based enumeration + per-subplan vectorization + ML model.

    Parameters
    ----------
    registry:
        Available platforms.
    model:
        The same runtime model Robopt uses (fair comparison).
    priority, pruning:
        As in :class:`ObjectEnumerator`; defaults mirror Robopt's.
    """

    def __init__(
        self,
        registry: PlatformRegistry,
        model,
        priority: str = "robopt",
        pruning: bool = True,
        schema: Optional[FeatureSchema] = None,
    ):
        self.registry = registry
        self.model = model
        self.schema = schema if schema is not None else FeatureSchema(registry)

        def batch_cost(
            plan: LogicalPlan, subplans: Sequence[ObjectSubplan], stats: RunStats
        ) -> np.ndarray:
            # The expensive part: one plan→vector transformation per subplan.
            t0 = time.perf_counter()
            matrix = np.vstack(
                [
                    self.schema.encode_partial(plan, sp.scope, sp.assignment)
                    for sp in subplans
                ]
            )
            stats.time_vectorize_s += time.perf_counter() - t0
            t0 = time.perf_counter()
            costs = self.model.predict(matrix)
            stats.time_predict_s += time.perf_counter() - t0
            return costs

        self._enumerator = ObjectEnumerator(
            registry, batch_cost, priority=priority, pruning=pruning
        )

    def optimize(self, plan: LogicalPlan) -> OptimizationResult:
        """Find the plan with the lowest predicted runtime (object-style)."""
        plan.validate()
        result = self._enumerator.enumerate_plan(plan)
        result.optimizer = "rheem-ml"
        return result
