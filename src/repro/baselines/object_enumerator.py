"""Traditional (object-based) plan enumeration.

This is the enumeration style Rheem — and the paper's two baselines —
use: subplans are Python objects carrying an operator→platform mapping;
concatenation builds new objects pair by pair; pruning walks dictionaries.
The *algorithm* is identical to Robopt's Algorithm 1 (same priority
function, same boundary pruning — the paper stresses it uses "the same
pruning strategy in both baselines to have a fair comparison"); only the
data representation differs. The measured gap between this enumerator and
the vectorized one is therefore exactly the paper's Fig. 1/Fig. 9
quantity: the benefit of basing the enumeration on vectors.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.api import OptimizationResult, RunStats
from repro.exceptions import EnumerationError
from repro.obs import current_tracer
from repro.rheem.execution_plan import ExecutionPlan, feasible_platforms
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.platforms import PlatformRegistry


@dataclass
class ObjectSubplan:
    """One partial execution plan, the object-world analogue of a plan vector."""

    scope: FrozenSet[int]
    assignment: Dict[int, str]
    cost: float = 0.0


@dataclass
class ObjectEnumeration:
    """A set of subplans sharing a scope (object-world Def. 1)."""

    scope: FrozenSet[int]
    plans: List[ObjectSubplan]

    def __len__(self) -> int:
        return len(self.plans)


#: Instrumentation of one object-based run: the shared
#: :class:`repro.api.RunStats` ("subplan" counts land in the canonical
#: ``*_vectors`` fields). The §VII-B time breakdown lives in
#: ``time_vectorize_s`` / ``time_predict_s`` / ``time_cost_s``.
ObjectStats = RunStats

#: Type alias: the object enumerator returns the unified
#: :class:`repro.api.OptimizationResult` (``.predicted_runtime``,
#: ``.predicted_cost``).
ObjectEnumerationResult = OptimizationResult


#: Scores a batch of subplans; may record vectorize/predict split in stats.
BatchCostFn = Callable[[LogicalPlan, Sequence[ObjectSubplan], RunStats], np.ndarray]


class ObjectEnumerator:
    """Algorithm 1 over plan objects instead of plan vectors.

    Parameters
    ----------
    registry:
        Available platforms.
    batch_cost:
        Scores all subplans of a freshly concatenated enumeration. The
        RHEEMix baseline walks each subplan object with the cost model;
        the Rheem-ML baseline transforms each subplan into a vector and
        calls the ML model.
    priority:
        ``"robopt"``, ``"topdown"`` or ``"bottomup"`` (as in Fig. 10).
    pruning:
        Boundary pruning on/off.
    """

    def __init__(
        self,
        registry: PlatformRegistry,
        batch_cost: BatchCostFn,
        priority: str = "robopt",
        pruning: bool = True,
        max_subplans: int = 4_000_000,
    ):
        if priority not in ("robopt", "topdown", "bottomup"):
            raise EnumerationError(f"unknown priority {priority!r}")
        self.registry = registry
        self.batch_cost = batch_cost
        self.priority_name = priority
        self.pruning = pruning
        self.max_subplans = max_subplans

    # ------------------------------------------------------------------
    def enumerate_plan(self, plan: LogicalPlan) -> OptimizationResult:
        tracer = current_tracer()
        if tracer.enabled:
            with tracer.span(
                "enumerate",
                engine="object",
                plan=plan.name,
                n_operators=plan.n_operators,
                priority=self.priority_name,
                pruning=self.pruning,
            ) as root:
                result = self._enumerate_traced(plan, tracer)
                root.set(**result.stats.as_dict())
            return result
        return self._enumerate_traced(plan, tracer)

    def _enumerate_traced(self, plan: LogicalPlan, tracer) -> OptimizationResult:
        started = time.perf_counter()
        stats = RunStats()
        children_map = {i: tuple(plan.children(i)) for i in plan.operators}
        parents_map = {i: tuple(plan.parents(i)) for i in plan.operators}

        # Distances for the top-down / bottom-up priorities.
        order = plan.topological_order()
        from_source: Dict[int, int] = {}
        for op_id in order:
            parents = parents_map[op_id]
            from_source[op_id] = (
                0 if not parents else 1 + max(from_source[p] for p in parents)
            )
        to_sink: Dict[int, int] = {}
        for op_id in reversed(order):
            children = children_map[op_id]
            to_sink[op_id] = (
                0 if not children else 1 + max(to_sink[c] for c in children)
            )

        enums: Dict[int, ObjectEnumeration] = {}
        op_to_enum: Dict[int, int] = {}
        ids = itertools.count()
        for op_id in plan.operators:
            subplans = [
                ObjectSubplan(frozenset((op_id,)), {op_id: name})
                for name in feasible_platforms(plan, self.registry, op_id)
            ]
            eid = next(ids)
            enums[eid] = ObjectEnumeration(frozenset((op_id,)), subplans)
            op_to_enum[op_id] = eid
            stats.singleton_vectors += len(subplans)
        if tracer.enabled:
            tracer.count("enumerate.singleton_vectors", stats.singleton_vectors)

        def children_of(eid: int) -> List[int]:
            found, seen = [], set()
            for u in enums[eid].scope:
                for v in children_map[u]:
                    other = op_to_enum[v]
                    if other != eid and other not in seen:
                        seen.add(other)
                        found.append(other)
            return found

        def parents_of(eid: int) -> List[int]:
            found, seen = [], set()
            for u in enums[eid].scope:
                for p in parents_map[u]:
                    other = op_to_enum[p]
                    if other != eid and other not in seen:
                        seen.add(other)
                        found.append(other)
            return found

        def boundary_of(scope: FrozenSet[int]) -> Tuple[int, ...]:
            return tuple(
                sorted(
                    i
                    for i in scope
                    if any(
                        n not in scope for n in children_map[i] + parents_map[i]
                    )
                )
            )

        def priority_of(eid: int) -> float:
            enumeration = enums[eid]
            if self.priority_name == "robopt":
                value = float(len(enumeration))
                for c in children_of(eid):
                    value *= len(enums[c])
                return value
            table = from_source if self.priority_name == "topdown" else to_sink
            return float(max(table[i] for i in enumeration.scope))

        heap: List = []
        version: Dict[int, int] = {}
        seq = itertools.count()

        def push(eid: int) -> None:
            version[eid] = version.get(eid, 0) + 1
            boundary = boundary_of(enums[eid].scope)
            heapq.heappush(
                heap,
                (-priority_of(eid), len(boundary), next(seq), eid, version[eid]),
            )

        for eid in list(enums):
            push(eid)

        while len(enums) > 1:
            _, _, _, eid, entry_version = heapq.heappop(heap)
            if eid not in enums or version.get(eid) != entry_version:
                continue
            partners = children_of(eid) or parents_of(eid)
            if not partners:
                partners = [other for other in enums if other != eid][:1]
            current = eid
            for partner in partners:
                if partner not in enums or current not in enums:
                    continue
                current = self._concatenate(
                    plan, enums, op_to_enum, current, partner, stats, tracer
                )
            push(current)
            for parent in parents_of(current):
                push(parent)

        (final_eid,) = enums
        final = enums[final_eid]
        stats.final_vectors = len(final.plans)
        t0 = time.perf_counter()
        if tracer.enabled:
            with tracer.span("enumerate.select", rows=len(final.plans)):
                costs = np.asarray(self.batch_cost(plan, final.plans, stats))
        else:
            costs = np.asarray(self.batch_cost(plan, final.plans, stats))
        stats.time_cost_s += time.perf_counter() - t0
        stats.rows_predicted += len(final.plans)
        best_idx = int(np.argmin(costs))
        best = final.plans[best_idx]
        xplan = ExecutionPlan(plan, best.assignment, self.registry)
        stats.latency_s = time.perf_counter() - started
        if tracer.enabled:
            tracer.count("enumerate.rows_predicted", len(final.plans))
            tracer.count("enumerate.final_vectors", len(final.plans))
        return OptimizationResult(
            execution_plan=xplan,
            predicted_runtime=float(costs[best_idx]),
            stats=stats,
            optimizer="object",
        )

    # ------------------------------------------------------------------
    def _concatenate(
        self,
        plan: LogicalPlan,
        enums: Dict[int, ObjectEnumeration],
        op_to_enum: Dict[int, str],
        left_id: int,
        right_id: int,
        stats: RunStats,
        tracer,
    ) -> int:
        left, right = enums[left_id], enums[right_id]
        produced = len(left) * len(right)
        if produced > self.max_subplans:
            raise EnumerationError(
                f"concatenation would create {produced} subplans "
                f"(limit {self.max_subplans})"
            )
        t0 = time.perf_counter()
        scope = left.scope | right.scope
        merged: List[ObjectSubplan] = []
        for a in left.plans:
            for b in right.plans:
                assignment = dict(a.assignment)
                assignment.update(b.assignment)
                merged.append(ObjectSubplan(scope, assignment))
        stats.time_merge_s += time.perf_counter() - t0
        stats.merges += 1
        stats.vectors_created += len(merged)
        stats.peak_enumeration = max(stats.peak_enumeration, len(merged))
        if tracer.enabled:
            tracer.count("enumerate.merges")
            tracer.count("enumerate.vectors_created", len(merged))
            tracer.event(
                "enumerate.merge",
                left=len(left.plans),
                right=len(right.plans),
                produced=produced,
            )

        if self.pruning:
            t0 = time.perf_counter()
            if tracer.enabled:
                with tracer.span("enumerate.prune", rows=len(merged)):
                    costs = np.asarray(self.batch_cost(plan, merged, stats))
            else:
                costs = np.asarray(self.batch_cost(plan, merged, stats))
            stats.time_cost_s += time.perf_counter() - t0
            stats.rows_predicted += len(merged)
            if tracer.enabled:
                tracer.count("enumerate.prune_calls")
                tracer.count("enumerate.rows_predicted", len(merged))
            children_map = {i: tuple(plan.children(i)) for i in scope}
            boundary = tuple(
                sorted(
                    i
                    for i in scope
                    if any(n not in scope for n in plan.children(i) + plan.parents(i))
                )
            )
            best: Dict[Tuple[str, ...], Tuple[float, ObjectSubplan]] = {}
            for subplan, cost in zip(merged, costs):
                subplan.cost = float(cost)
                footprint = tuple(subplan.assignment[b] for b in boundary)
                incumbent = best.get(footprint)
                if incumbent is None or cost < incumbent[0]:
                    best[footprint] = (float(cost), subplan)
            survivors = [entry[1] for entry in best.values()]
            stats.prune_calls += 1
            stats.vectors_pruned += len(merged) - len(survivors)
            if tracer.enabled:
                tracer.count(
                    "enumerate.vectors_pruned", len(merged) - len(survivors)
                )
            merged = survivors

        del enums[left_id], enums[right_id]
        new_id = max(enums, default=-1) + 1
        while new_id in enums:
            new_id += 1
        enums[new_id] = ObjectEnumeration(scope, merged)
        for op_id in scope:
            op_to_enum[op_id] = new_id
        return new_id
