"""The exhaustive (pruning-free) vectorized enumeration baseline.

"Exhaustive enumeration" in Fig. 9(a): Robopt's vectorized machinery with
the prune operation disabled. It materializes all k^n plan vectors, so it
is only runnable for small plans (Table I: 20 operators on 2 platforms
already mean ~10^6 subplans) — which is itself one of the paper's points.
"""

from __future__ import annotations

from typing import Optional

from repro.api import OptimizationResult
from repro.core.enumerator import PriorityEnumerator
from repro.core.features import FeatureSchema
from repro.core.pruning import ml_cost
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.platforms import PlatformRegistry


class ExhaustiveOptimizer:
    """Vectorized enumeration of the full k^n search space."""

    def __init__(
        self,
        registry: PlatformRegistry,
        model,
        schema: Optional[FeatureSchema] = None,
        max_vectors: int = 4_000_000,
    ):
        self.registry = registry
        self._enumerator = PriorityEnumerator(
            registry,
            cost_fn=ml_cost(model),
            priority="robopt",
            pruning=False,
            schema=schema,
            max_vectors=max_vectors,
        )

    def optimize(self, plan: LogicalPlan) -> OptimizationResult:
        """Enumerate everything; raises EnumerationError beyond the limit."""
        plan.validate()
        result = self._enumerator.enumerate_plan(plan)
        return OptimizationResult(
            execution_plan=result.execution_plan,
            predicted_runtime=result.predicted_cost,
            stats=result.stats,
            optimizer="exhaustive",
            final_enumeration=result.final_enumeration,
        )
