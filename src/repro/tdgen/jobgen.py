"""Job generation: synthetic logical plans and their execution plans (§VI-A).

The :class:`JobGenerator` creates plan templates in the three modes the
paper describes: (i) mimic a user-provided workload (match its shapes and
sizes), (ii) generate for user-specified shapes and a maximum size, and
(iii) exhaustively cover all shapes up to a maximum size.

Execution plans for each logical plan come from the *same* vectorized
enumeration machinery as the optimizer — with the prune operation swapped
for the β-platform-switch heuristic, exactly the flexibility the paper
credits the algebraic operations with ("our algebraic operations ...
allowed us to easily reflect these changes").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import GenerationError
from repro.core.enumeration import EnumerationContext, PlanVectorEnumeration
from repro.core.operations import (
    enumerate_singleton,
    merge_enumerations,
    split,
    vectorize,
)
from repro.core.pruning import prune, prune_switches, switch_cost
from repro.rheem.execution_plan import ExecutionPlan
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.platforms import PlatformRegistry
from repro.tdgen.shapes import SHAPES, Template, build_template


def sample_execution_plans(
    plan: LogicalPlan,
    registry: PlatformRegistry,
    n_plans: int,
    beta: int = 3,
    rng: Optional[np.random.Generator] = None,
    max_width: int = 512,
    ctx: Optional[EnumerationContext] = None,
) -> List[Dict[int, str]]:
    """Sample up to ``n_plans`` diverse execution-plan assignments.

    Folds the plan's singleton enumerations together (in operator order),
    applying the β-switch filter after every concatenation and randomly
    down-sampling enumerations wider than ``max_width`` — keeping the job
    generation linear in plan size while preserving assignment diversity.
    Returns assignment dictionaries (operator id → platform name).
    """
    if n_plans < 1:
        raise GenerationError(f"need n_plans >= 1, got {n_plans}")
    rng = rng if rng is not None else np.random.default_rng()
    if ctx is None:
        ctx = EnumerationContext(plan, registry)

    current: Optional[PlanVectorEnumeration] = None
    for abstract in split(vectorize(ctx)):
        singleton = enumerate_singleton(abstract)
        if current is None:
            current = singleton
            continue
        current = merge_enumerations(current, singleton)
        current = prune_switches(current, beta=beta)
        if current.n_vectors > max_width:
            keep = rng.choice(current.n_vectors, size=max_width, replace=False)
            current = current.select(np.sort(keep))
    assert current is not None

    n = min(n_plans, current.n_vectors)
    rows = rng.choice(current.n_vectors, size=n, replace=False)
    return [current.assignment_dict(int(row)) for row in rows]


class JobGenerator:
    """Creates plan templates and execution-plan assignments for TDGEN."""

    def __init__(self, registry: PlatformRegistry, seed: Optional[int] = None):
        self.registry = registry
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Mode (ii): user-specified shapes and maximum size (the paper's
    # evaluation setting: three shapes, max 50 operators).
    # ------------------------------------------------------------------
    def templates_for_shapes(
        self,
        shapes: Sequence[str],
        max_operators: int,
        count: int,
        min_operators: int = 6,
    ) -> List[Template]:
        """``count`` random templates across the given shapes and sizes."""
        if max_operators < min_operators:
            raise GenerationError(
                f"max_operators {max_operators} < min_operators {min_operators}"
            )
        unknown = set(shapes) - set(SHAPES)
        if unknown:
            raise GenerationError(f"unknown shapes {sorted(unknown)}")
        templates = []
        for uid in range(count):
            shape = shapes[int(self.rng.integers(len(shapes)))]
            n_ops = int(self.rng.integers(min_operators, max_operators + 1))
            templates.append(build_template(shape, n_ops, rng=self.rng, uid=uid))
        return templates

    # ------------------------------------------------------------------
    # Mode (i): mimic a user workload.
    # ------------------------------------------------------------------
    def templates_like(
        self, workload: Sequence[LogicalPlan], count: int
    ) -> List[Template]:
        """Templates that resemble the given plans (shape + size).

        Extracts each plan's dominant topology and operator count (§VI-A:
        "extracts the shapes and maximum size of the given queries") and
        generates templates with matching parameters.
        """
        if not workload:
            raise GenerationError("workload must contain at least one plan")
        observed = []
        for plan in workload:
            topo = plan.topology_counts()
            if topo.loop:
                shape = "loop"
            elif topo.juncture:
                shape = "juncture"
            elif topo.replicate:
                shape = "replicate"
            else:
                shape = "pipeline"
            observed.append((shape, plan.n_operators))
        templates = []
        for uid in range(count):
            shape, n_ops = observed[int(self.rng.integers(len(observed)))]
            n_ops = max(6, n_ops + int(self.rng.integers(-2, 3)))
            templates.append(build_template(shape, n_ops, rng=self.rng, uid=uid))
        return templates

    # ------------------------------------------------------------------
    # Mode (iii): exhaustive shape coverage up to a maximum size.
    # ------------------------------------------------------------------
    def templates_exhaustive(
        self, max_operators: int, step: int = 4, min_operators: int = 6
    ) -> List[Template]:
        """One template per (shape, size) on a size grid — all shapes."""
        from repro.tdgen.shapes import _EXTRA_OPERATORS

        templates = []
        uid = 0
        for shape in SHAPES:
            shape_min = max(min_operators, _EXTRA_OPERATORS[shape] + 1)
            for n_ops in range(shape_min, max_operators + 1, step):
                templates.append(build_template(shape, n_ops, rng=self.rng, uid=uid))
                uid += 1
        return templates

    # ------------------------------------------------------------------
    def assignments_for(
        self,
        plan: LogicalPlan,
        n_plans: int,
        beta: int = 3,
    ) -> List[Dict[int, str]]:
        """Execution-plan assignments for one logical plan (β-switch pruned)."""
        return sample_execution_plans(
            plan, self.registry, n_plans, beta=beta, rng=self.rng
        )
