"""Topology-shape templates for synthetic query plans (§VI-A).

A *template* is a parameterized logical-plan builder for one of the four
plan topologies of §IV-A (pipeline, juncture, replicate, loop), plus two
loop specializations that cover the operator interactions the simulator
models (a k-means-style small-state loop and an SGD-style
cache-then-sample loop). Calling a template with an input cardinality and
a UDF-complexity level yields a concrete :class:`LogicalPlan`.
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from repro.exceptions import GenerationError
from repro.rheem.datasets import DatasetProfile
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.operators import UdfComplexity, operator

#: Shape names TDGEN understands.
SHAPES = (
    "pipeline",
    "juncture",
    "replicate",
    "loop",
    "ml_loop",
    "sgd_loop",
    "graph_loop",
    "relational",
)

#: Unary kinds used to populate template slots.
UNARY_POOL = (
    "Map",
    "Filter",
    "FlatMap",
    "ReduceBy",
    "Sort",
    "Distinct",
    "GroupBy",
    "MapPartitions",
    "ZipWithId",
    "Project",
    "Sample",
)

#: Selectivities keeping synthetic cardinalities within sane bounds.
_SELECTIVITY = {
    "FlatMap": 2.0,
    "ReduceBy": 0.3,
    "GroupBy": 0.3,
    "Filter": 0.6,
    "Distinct": 0.7,
    "Project": 1.0,
}

#: UDF complexity per template "complexity level" (1–4); a level scales all
#: interior operators of the plan uniformly (§VI-B executes only the low
#: and high levels and interpolates the middle ones).
COMPLEXITY_LEVELS = {
    1: UdfComplexity.LOGARITHMIC,
    2: UdfComplexity.LINEAR,
    3: UdfComplexity.QUADRATIC,
    4: UdfComplexity.SUPER_QUADRATIC,
}


def list_shapes() -> List[str]:
    """The supported shape names."""
    return list(SHAPES)


def _dataset(
    cardinality: float, name: str = "tdgen", tuple_size: float = 100.0
) -> DatasetProfile:
    return DatasetProfile(name, cardinality=cardinality, tuple_size=tuple_size)


def _unary(kind: str, complexity: UdfComplexity, selectivity: float = None):
    if selectivity is None:
        selectivity = _SELECTIVITY.get(kind, 1.0)
    return operator(kind, selectivity=selectivity, udf_complexity=complexity)


def _pick_kinds(n: int, rng: np.random.Generator) -> List[str]:
    return [UNARY_POOL[int(rng.integers(len(UNARY_POOL)))] for _ in range(n)]


class Template:
    """One callable plan template: ``template(cardinality, level) -> plan``.

    The operator kinds of the template are frozen at construction (drawn
    from ``rng``), so the same template instantiated at two cardinalities
    yields structurally identical plans — the property the log generator's
    interpolation relies on.
    """

    def __init__(
        self,
        shape: str,
        n_operators: int,
        kinds: List[str],
        iterations: int,
        uid: int,
        selectivities: Optional[List[float]] = None,
        tuple_size: float = 100.0,
    ):
        self.shape = shape
        self.n_operators = n_operators
        self.kinds = kinds
        self.iterations = iterations
        self.uid = uid
        self.selectivities = (
            selectivities
            if selectivities is not None
            else [_SELECTIVITY.get(k, 1.0) for k in kinds]
        )
        self.tuple_size = tuple_size

    def unary(self, index: int, complexity: UdfComplexity):
        """The slotted unary operator at one template position."""
        return _unary(self.kinds[index], complexity, self.selectivities[index])

    def dataset(self, cardinality: float, name: str = "tdgen") -> DatasetProfile:
        return _dataset(cardinality, name, self.tuple_size)

    def __call__(self, cardinality: float, level: int = 2) -> LogicalPlan:
        complexity = COMPLEXITY_LEVELS[level]
        builder = _BUILDERS[self.shape]
        plan = builder(self, cardinality, complexity)
        plan.name = f"tdgen_{self.shape}_{self.uid}_n{self.n_operators}"
        return plan

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Template({self.shape}, n={self.n_operators}, uid={self.uid})"


def _build_pipeline(t: Template, cardinality, complexity) -> LogicalPlan:
    p = LogicalPlan("pipeline")
    ops = [p.add(operator("TextFileSource"), dataset=t.dataset(cardinality))]
    for i in range(len(t.kinds)):
        ops.append(p.add(t.unary(i, complexity)))
    ops.append(p.add(operator("CollectionSink")))
    p.chain(*ops)
    return p


def _build_juncture(t: Template, cardinality, complexity) -> LogicalPlan:
    p = LogicalPlan("juncture")
    half = len(t.kinds) // 2
    left = [p.add(operator("TextFileSource"), dataset=t.dataset(cardinality))]
    for i in range(half):
        left.append(p.add(t.unary(i, complexity)))
    p.chain(*left)
    right = [
        p.add(operator("TextFileSource"), dataset=t.dataset(cardinality / 4, "tdgen2"))
    ]
    for i in range(half, len(t.kinds)):
        right.append(p.add(t.unary(i, complexity)))
    p.chain(*right)
    join = p.add(operator("Join", selectivity=0.8))
    p.connect(left[-1], join)
    p.connect(right[-1], join)
    sink = p.add(operator("CollectionSink"))
    p.connect(join, sink)
    return p


def _build_replicate(t: Template, cardinality, complexity) -> LogicalPlan:
    p = LogicalPlan("replicate")
    head = [p.add(operator("TextFileSource"), dataset=t.dataset(cardinality))]
    third = max(1, len(t.kinds) // 3)
    for i in range(third):
        head.append(p.add(t.unary(i, complexity)))
    p.chain(*head)
    split_at = head[-1]
    branch_a = [p.add(t.unary(i, complexity)) for i in range(third, 2 * third)]
    branch_b = [p.add(t.unary(i, complexity)) for i in range(2 * third, len(t.kinds))]
    if not branch_a:
        branch_a = [p.add(_unary("Map", complexity))]
    if not branch_b:
        branch_b = [p.add(_unary("Filter", complexity))]
    p.connect(split_at, branch_a[0])
    if len(branch_a) > 1:
        p.chain(*branch_a)
    p.connect(split_at, branch_b[0])
    if len(branch_b) > 1:
        p.chain(*branch_b)
    union = p.add(operator("Union"))
    p.connect(branch_a[-1], union)
    p.connect(branch_b[-1], union)
    sink = p.add(operator("CollectionSink"))
    p.connect(union, sink)
    return p


def _build_loop(t: Template, cardinality, complexity) -> LogicalPlan:
    p = LogicalPlan("loop")
    ops = [p.add(operator("TextFileSource"), dataset=t.dataset(cardinality))]
    for i in range(len(t.kinds)):
        ops.append(p.add(t.unary(i, complexity)))
    ops.append(p.add(operator("CollectionSink")))
    p.chain(*ops)
    # Loop over the middle third of the pipeline.
    interior = ops[1:-1]
    third = max(1, len(interior) // 3)
    body = interior[third : 2 * third] or interior[:1]
    p.add_loop(body, iterations=t.iterations)
    return p


def _build_ml_loop(t: Template, cardinality, complexity) -> LogicalPlan:
    """A k-means-shaped loop: heavy map + aggregation + tiny state update."""
    p = LogicalPlan("ml_loop")
    source = p.add(operator("TextFileSource"), dataset=t.dataset(cardinality))
    prefix = [source]
    for i in range(len(t.kinds) - 1):
        prefix.append(p.add(t.unary(i, complexity)))
    p.chain(*prefix)
    assign = p.add(operator("Map", udf_complexity=complexity))
    state_size = max(2.0, min(2000.0, cardinality / 1e3))
    reduce_op = p.add(operator("ReduceBy", fixed_output_cardinality=state_size))
    update = p.add(operator("Map", udf_complexity=UdfComplexity.LINEAR))
    sink = p.add(operator("CollectionSink"))
    p.chain(prefix[-1], assign, reduce_op, update, sink)
    p.add_loop([assign, reduce_op, update], iterations=t.iterations)
    return p


def _build_sgd_loop(t: Template, cardinality, complexity) -> LogicalPlan:
    """An SGD-shaped loop: cache feeding a shuffle-partition sample."""
    p = LogicalPlan("sgd_loop")
    source = p.add(operator("TextFileSource"), dataset=t.dataset(cardinality))
    prefix = [source]
    for i in range(len(t.kinds) - 1):
        prefix.append(p.add(t.unary(i, complexity)))
    p.chain(*prefix)
    cache = p.add(operator("Cache"))
    sample = p.add(
        operator(
            "ShufflePartitionSample",
            fixed_output_cardinality=max(1.0, min(1000.0, cardinality / 1e4)),
        )
    )
    grad = p.add(operator("Map", udf_complexity=complexity))
    sink = p.add(operator("CollectionSink"))
    p.chain(prefix[-1], cache, sample, grad, sink)
    p.add_loop([sample, grad], iterations=t.iterations)
    return p


#: Kinds a database platform can host (used by the relational shape).
RELATIONAL_POOL = ("Filter", "Project", "ReduceBy", "GroupBy", "Sort", "Distinct")


def _build_relational(t: Template, cardinality, complexity) -> LogicalPlan:
    """A warehouse-style query over database-resident tables.

    Two ``TableSource`` branches with relational unary operators, a join,
    an aggregate and a sink. Only meaningful when the registry contains a
    database platform (TableSource has no other host); TDGEN includes this
    shape exactly then, teaching the model what keeping large relational
    work inside the database costs versus exporting it to a cluster.
    """
    p = LogicalPlan("relational")
    half = len(t.kinds) // 2
    left = [p.add(operator("TableSource"), dataset=t.dataset(cardinality))]
    for i in range(half):
        kind = RELATIONAL_POOL[i % len(RELATIONAL_POOL)]
        left.append(p.add(_unary(kind, complexity, t.selectivities[i])))
    p.chain(*left)
    right = [
        p.add(operator("TableSource"), dataset=t.dataset(cardinality / 3, "tdgen2"))
    ]
    for i in range(half, len(t.kinds)):
        kind = RELATIONAL_POOL[i % len(RELATIONAL_POOL)]
        right.append(p.add(_unary(kind, complexity, t.selectivities[i])))
    p.chain(*right)
    join = p.add(operator("Join", selectivity=0.7))
    p.connect(left[-1], join)
    p.connect(right[-1], join)
    agg = p.add(operator("ReduceBy", selectivity=0.1))
    sink = p.add(operator("CollectionSink"))
    p.chain(join, agg, sink)
    return p


def _build_graph_loop(t: Template, cardinality, complexity) -> LogicalPlan:
    """A CrocoPR-shaped plan: preprocessing, iterative PageRank, decoding."""
    p = LogicalPlan("graph_loop")
    source = p.add(operator("TextFileSource"), dataset=t.dataset(cardinality))
    prefix = [source]
    for i in range(len(t.kinds) - 1):
        prefix.append(p.add(t.unary(i, complexity)))
    p.chain(*prefix)
    init = p.add(operator("Map"))
    pagerank = p.add(operator("PageRank"))
    decode = p.add(operator("Join", selectivity=1.0))
    sink = p.add(operator("CollectionSink"))
    p.chain(prefix[-1], init, pagerank, decode, sink)
    # The dictionary side of the decode join comes off the preprocessing
    # prefix (a replicate), as in the CrocoPR encoding/decoding pattern.
    p.connect(prefix[min(len(prefix) - 1, max(1, len(prefix) // 2))], decode)
    p.add_loop([pagerank], iterations=t.iterations)
    return p


_BUILDERS: dict = {
    "pipeline": _build_pipeline,
    "juncture": _build_juncture,
    "replicate": _build_replicate,
    "loop": _build_loop,
    "ml_loop": _build_ml_loop,
    "sgd_loop": _build_sgd_loop,
    "graph_loop": _build_graph_loop,
    "relational": _build_relational,
}

#: How many operators each builder adds beyond the slotted unary kinds.
_EXTRA_OPERATORS = {
    "pipeline": 2,  # source + sink
    "juncture": 4,  # two sources + join + sink
    "replicate": 4,  # source + union + sink (+ padding branches)
    "loop": 2,
    "ml_loop": 5,  # source + assign/reduce/update + sink
    "sgd_loop": 5,  # source + cache/sample/grad... (see builder)
    "graph_loop": 6,  # source + init/pagerank/decode + sink (see builder)
    "relational": 5,  # two sources + join + aggregate + sink
}


def build_template(
    shape: str,
    n_operators: int,
    rng: Optional[np.random.Generator] = None,
    uid: int = 0,
) -> Template:
    """Create a random template of a shape with ~``n_operators`` operators."""
    if shape not in _BUILDERS:
        raise GenerationError(f"unknown shape {shape!r}; expected one of {SHAPES}")
    rng = rng if rng is not None else np.random.default_rng()
    n_slots = n_operators - _EXTRA_OPERATORS[shape]
    if n_slots < 1:
        raise GenerationError(
            f"shape {shape!r} needs at least {_EXTRA_OPERATORS[shape] + 1} operators, "
            f"got {n_operators}"
        )
    kinds = _pick_kinds(n_slots, rng)
    # Iterations drawn log-uniformly in [5, 500): loops of very different
    # weights teach the model the value of iteration-aware placement.
    iterations = int(np.exp(rng.uniform(np.log(5), np.log(500))))
    # Jitter the selectivities and tuple size so the training plans cover
    # the value ranges real workloads exhibit (FlatMap fan-outs up to ~8,
    # aggressive ReduceBy reductions, narrow and wide tuples).
    selectivities = []
    for kind in kinds:
        base = _SELECTIVITY.get(kind, 1.0)
        if kind == "FlatMap":
            selectivities.append(float(rng.uniform(1.5, 8.0)))
        elif kind in ("ReduceBy", "GroupBy"):
            selectivities.append(float(np.exp(rng.uniform(np.log(0.005), np.log(0.5)))))
        else:
            selectivities.append(float(base * np.exp(rng.uniform(-0.7, 0.7))))
    tuple_size = float(rng.uniform(60.0, 280.0))
    return Template(
        shape, n_operators, kinds, iterations, uid,
        selectivities=selectivities, tuple_size=tuple_size,
    )
