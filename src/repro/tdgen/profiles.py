"""Configuration profiles: the knobs TDGEN instantiates jobs with (§VI-A).

A :class:`ConfigurationProfile` pairs a grid of input cardinalities with
the set of UDF-complexity levels; the log generator decides which grid
points are actually executed and which are interpolated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.exceptions import GenerationError

#: Complexity levels the log generator executes (the paper runs "only jobs
#: with low and high UDF complexity", §VI-B) and the ones it imputes.
EXECUTED_LEVELS: Tuple[int, ...] = (1, 4)
IMPUTED_LEVELS: Tuple[int, ...] = (2, 3)
ALL_LEVELS: Tuple[int, ...] = (1, 2, 3, 4)


def default_cardinality_grid(
    low: float = 1e4, high: float = 1e10, points: int = 9
) -> List[float]:
    """A log-spaced grid of input cardinalities."""
    if low <= 0 or high <= low:
        raise GenerationError(f"bad cardinality range [{low}, {high}]")
    if points < 2:
        raise GenerationError(f"need at least 2 grid points, got {points}")
    return list(np.geomspace(low, high, points))


@dataclass(frozen=True)
class ConfigurationProfile:
    """Input cardinalities × UDF complexity levels for one template."""

    cardinalities: Tuple[float, ...] = field(
        default_factory=lambda: tuple(default_cardinality_grid())
    )
    levels: Tuple[int, ...] = ALL_LEVELS

    def __post_init__(self):
        if not self.cardinalities:
            raise GenerationError("profile needs at least one cardinality")
        if any(c <= 0 for c in self.cardinalities):
            raise GenerationError("cardinalities must be positive")
        if not set(self.levels) <= set(ALL_LEVELS):
            raise GenerationError(
                f"levels must be within {ALL_LEVELS}, got {self.levels}"
            )

    def executed_cardinalities(self) -> List[int]:
        """Indices of the grid points the log generator executes.

        Per §VI-B: all the small inputs (the lower half of the grid) plus
        every other medium/large point — the rest is interpolated.
        """
        n = len(self.cardinalities)
        small = list(range((n + 1) // 2))
        medium_large = list(range((n + 1) // 2, n, 2))
        if (n - 1) not in small + medium_large:
            medium_large.append(n - 1)  # anchor the spline's right end
        return sorted(set(small + medium_large))

    @property
    def n_jobs_per_assignment(self) -> int:
        return len(self.cardinalities) * len(self.levels)
