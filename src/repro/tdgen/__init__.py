"""TDGEN: the scalable training data generator (§VI).

Building an ML model for query optimization needs thousands of labelled
execution plans, and executing all of them is impractical (§I: a thousand
alternative plans of one 200 GB TPC-H query would run for 9 days). TDGEN
attacks both problems:

* **job generation** (§VI-A, :mod:`repro.tdgen.jobgen`): synthesizes
  logical plans of the requested topology shapes, enumerates execution
  plans with the β-platform-switch pruning, and instantiates each with
  configuration profiles (input cardinalities, UDF complexities);
* **log generation** (§VI-B, :mod:`repro.tdgen.loggen`): actually runs
  only a subset of the jobs (all small inputs, a few medium/large ones,
  only low/high UDF complexities) and imputes the remaining labels with
  piecewise degree-5 polynomial interpolation.

:class:`~repro.tdgen.generator.TrainingDataGenerator` is the facade that
produces a ready-to-train :class:`~repro.ml.model.TrainingDataset`.
"""

from repro.tdgen.shapes import SHAPES, build_template, list_shapes
from repro.tdgen.jobgen import JobGenerator, sample_execution_plans
from repro.tdgen.profiles import ConfigurationProfile, default_cardinality_grid
from repro.tdgen.loggen import LogGenerator, interpolate_runtimes
from repro.tdgen.generator import TrainingDataGenerator

__all__ = [
    "SHAPES",
    "list_shapes",
    "build_template",
    "JobGenerator",
    "sample_execution_plans",
    "ConfigurationProfile",
    "default_cardinality_grid",
    "LogGenerator",
    "interpolate_runtimes",
    "TrainingDataGenerator",
]
