"""The TDGEN facade: produce a ready-to-train dataset (§VI).

Typical use::

    registry = default_registry()
    executor = SimulatedExecutor.default(registry)
    tdgen = TrainingDataGenerator(registry, executor, seed=0)
    dataset = tdgen.generate(4000)
    model = RuntimeModel.train(dataset)

The generator walks (template × assignment × cardinality × complexity)
grids, executes the subset the configuration profile selects, interpolates
the rest (see :mod:`repro.tdgen.loggen`), and encodes every job into a
plan vector with the same :class:`FeatureSchema` the optimizer uses —
so the model is trained on exactly the representation it will be queried
with during enumeration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import GenerationError, PlatformError
from repro.core.features import FeatureSchema
from repro.obs import current_tracer
from repro.ml.model import TrainingDataset
from repro.rheem.execution_plan import ExecutionPlan
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.platforms import PlatformRegistry
from repro.simulator.executor import SimulatedExecutor
from repro.tdgen.jobgen import JobGenerator
from repro.tdgen.loggen import LogGenerator
from repro.tdgen.profiles import (
    ALL_LEVELS,
    EXECUTED_LEVELS,
    ConfigurationProfile,
    default_cardinality_grid,
)


@dataclass
class GenerationStats:
    """Bookkeeping of one `generate` run (the "scalable" in TDGEN)."""

    n_templates: int = 0
    n_assignments: int = 0
    n_points: int = 0
    n_executed: int = 0
    n_imputed: int = 0
    n_failures: int = 0

    @property
    def executed_fraction(self) -> float:
        total = self.n_executed + self.n_imputed
        return self.n_executed / total if total else 0.0


class TrainingDataGenerator:
    """Generates labelled plan vectors for runtime-model training.

    Parameters
    ----------
    registry:
        Platforms the generated execution plans may use; also fixes the
        feature schema.
    executor:
        The execution environment that labels the executed subset (the
        simulated cluster in this reproduction).
    seed:
        Seed of all generator randomness.
    schema:
        Optional shared feature schema.
    """

    def __init__(
        self,
        registry: PlatformRegistry,
        executor: SimulatedExecutor,
        seed: Optional[int] = None,
        schema: Optional[FeatureSchema] = None,
    ):
        self.registry = registry
        self.executor = executor
        self.schema = schema if schema is not None else FeatureSchema(registry)
        self.jobgen = JobGenerator(registry, seed=seed)
        self.stats = GenerationStats()

    # ------------------------------------------------------------------
    def generate(
        self,
        n_points: int,
        shapes: Sequence[str] = ("pipeline", "juncture", "loop"),
        max_operators: int = 50,
        assignments_per_plan: int = 4,
        profile: Optional[ConfigurationProfile] = None,
        beta: int = 3,
        workload: Optional[Sequence[LogicalPlan]] = None,
        include_xplans: bool = False,
    ) -> TrainingDataset:
        """Produce ~``n_points`` labelled plan vectors.

        ``shapes``/``max_operators`` mirror the paper's evaluation setup
        (three topology shapes, at most 50 operators, §VII-A); passing
        ``workload`` switches to mode (i) — synthesize data resembling the
        user's queries instead.
        """
        if n_points < 1:
            raise GenerationError(f"n_points must be >= 1, got {n_points}")
        tracer = current_tracer()
        if tracer.enabled:
            with tracer.span(
                "tdgen.generate", n_points=n_points, shapes=list(shapes)
            ) as span:
                dataset = self._generate_traced(
                    n_points,
                    shapes,
                    max_operators,
                    assignments_per_plan,
                    profile,
                    beta,
                    workload,
                    include_xplans,
                    tracer,
                )
                span.set(
                    rows=len(dataset),
                    executed=self.stats.n_executed,
                    imputed=self.stats.n_imputed,
                )
            return dataset
        return self._generate_traced(
            n_points,
            shapes,
            max_operators,
            assignments_per_plan,
            profile,
            beta,
            workload,
            include_xplans,
            tracer,
        )

    def _generate_traced(
        self,
        n_points: int,
        shapes: Sequence[str],
        max_operators: int,
        assignments_per_plan: int,
        profile: Optional[ConfigurationProfile],
        beta: int,
        workload: Optional[Sequence[LogicalPlan]],
        include_xplans: bool,
        tracer,
    ) -> TrainingDataset:
        profile = profile if profile is not None else ConfigurationProfile()
        per_assignment = profile.n_jobs_per_assignment
        n_templates = max(
            1, math.ceil(n_points / (assignments_per_plan * per_assignment))
        )
        if workload is not None:
            templates = self.jobgen.templates_like(workload, n_templates)
        else:
            templates = self.jobgen.templates_for_shapes(
                shapes, max_operators, n_templates
            )

        loggen = LogGenerator(self.executor)
        ref_card = profile.cardinalities[len(profile.cardinalities) // 2]
        rows: List[np.ndarray] = []
        labels: List[float] = []
        meta: List[Dict] = []

        for template_idx, template in enumerate(templates):
            if tracer.enabled:
                tracer.event(
                    "tdgen.progress",
                    template=template_idx,
                    n_templates=len(templates),
                    points_so_far=len(labels),
                )
            ref_plan = template(ref_card, level=2)
            try:
                assignments = self.jobgen.assignments_for(
                    ref_plan, assignments_per_plan, beta=beta
                )
            except PlatformError:
                # Shape needs a platform this registry lacks (e.g. the
                # relational shape without a database) — skip it.
                continue
            for assignment in assignments:
                self.stats.n_assignments += 1

                def make_xplan(card: float, level: int) -> ExecutionPlan:
                    plan = template(card, level)
                    return ExecutionPlan(plan, assignment, self.registry)

                records = loggen.label_grid(
                    make_xplan,
                    cardinalities=profile.cardinalities,
                    executed_card_indices=profile.executed_cardinalities(),
                    levels=list(profile.levels),
                    executed_levels=EXECUTED_LEVELS,
                )
                for record in records:
                    xplan = make_xplan(record.cardinality, record.level)
                    rows.append(self.schema.encode_execution_plan(xplan))
                    labels.append(record.runtime)
                    entry = {
                        "template": template.uid,
                        "shape": template.shape,
                        "n_operators": template.n_operators,
                        "cardinality": record.cardinality,
                        "level": record.level,
                        "executed": record.executed,
                        "status": record.status,
                        "platforms": tuple(sorted(set(assignment.values()))),
                    }
                    if include_xplans:
                        entry["xplan"] = xplan
                    meta.append(entry)
                    if record.status in ("oom", "timeout"):
                        self.stats.n_failures += 1

        self.stats.n_templates += len(templates)
        self.stats.n_executed += loggen.n_executed
        self.stats.n_imputed += loggen.n_imputed
        self.stats.n_points += len(labels)
        if tracer.enabled:
            tracer.count("tdgen.templates", len(templates))
            tracer.count("tdgen.executed", loggen.n_executed)
            tracer.count("tdgen.imputed", loggen.n_imputed)
            tracer.count("tdgen.points", len(labels))

        X = np.vstack(rows)
        y = np.asarray(labels, dtype=np.float64)
        if len(labels) > n_points:
            # Trim deterministically but evenly across the grid structure.
            keep = np.linspace(0, len(labels) - 1, n_points).astype(np.int64)
            X, y = X[keep], y[keep]
            meta = [meta[int(i)] for i in keep]
        return TrainingDataset(X, y, meta)
