"""Log generation: execute a subset, interpolate the rest (§VI-B).

Running every generated job is infeasible, so the :class:`LogGenerator`
executes only the jobs selected by the configuration profile (all small
cardinalities, a few medium/large ones, and only the low/high UDF
complexity levels) and imputes the remaining runtimes:

* across the **cardinality** axis with piecewise polynomial interpolation
  of degree 5 (the paper's choice — "degree 5 was giving us better
  accuracy without sacrificing runtime"), implemented as an order-5
  interpolating spline over log(runtime) vs. log(cardinality);
* across the **UDF complexity** axis by linear interpolation on the
  per-tuple work scale between the executed low and high levels.

Failed executions (out-of-memory, one-hour aborts) are kept and labelled
with a fixed penalty so the model learns to steer away from them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.interpolate import InterpolatedUnivariateSpline

from repro.exceptions import GenerationError
from repro.simulator.executor import DEFAULT_TIMEOUT_S, SimulatedExecutor
from repro.simulator.profiles import COMPLEXITY_WORK
from repro.rheem.operators import UdfComplexity

#: Runtime label assigned to failed executions (OOM / abort): twice the
#: timeout — clearly worse than anything that finishes.
FAILURE_PENALTY_S = 2.0 * DEFAULT_TIMEOUT_S

#: Spline degree of the cardinality interpolation (§VI-B, footnote 3).
SPLINE_DEGREE = 5

#: Work-scale positions of the four complexity levels (x-axis of the
#: complexity interpolation).
_LEVEL_WORK = {
    1: COMPLEXITY_WORK[UdfComplexity.LOGARITHMIC],
    2: COMPLEXITY_WORK[UdfComplexity.LINEAR],
    3: COMPLEXITY_WORK[UdfComplexity.QUADRATIC],
    4: COMPLEXITY_WORK[UdfComplexity.SUPER_QUADRATIC],
}


def interpolate_runtimes(
    executed_cards: Sequence[float],
    executed_runtimes: Sequence[float],
    query_cards: Sequence[float],
    degree: int = SPLINE_DEGREE,
) -> np.ndarray:
    """Impute runtimes over the cardinality axis (Fig. 8).

    Fits an interpolating spline of order ``min(degree, n_points - 1)`` to
    the executed (cardinality, runtime) points in log-log space — runtimes
    grow polynomially with input size, so the log-log fit keeps the
    degree-5 pieces well behaved — and evaluates it at ``query_cards``.
    """
    x = np.asarray(executed_cards, dtype=np.float64)
    y = np.asarray(executed_runtimes, dtype=np.float64)
    if x.ndim != 1 or x.shape != y.shape:
        raise GenerationError(
            f"interpolation inputs must be equal-length 1-D, got {x.shape}, {y.shape}"
        )
    if x.size < 2:
        raise GenerationError("interpolation needs at least 2 executed points")
    if np.any(x <= 0) or np.any(y < 0):
        raise GenerationError("cardinalities must be positive, runtimes non-negative")
    order = np.argsort(x)
    x, y = x[order], y[order]
    if np.any(np.diff(x) <= 0):
        raise GenerationError("executed cardinalities must be distinct")
    # Distinct raw cardinalities can still collide after np.log (e.g.
    # 1e6 vs 1e6 - 1e-7), and scipy demands strictly increasing knots —
    # collapse log-space ties, keeping the first point of each run.
    log_x = np.log(x)
    _, keep = np.unique(log_x, return_index=True)
    log_x, y = log_x[keep], y[keep]
    if log_x.size < 2:
        # All points collapsed onto one log knot: runtime is constant
        # over this (degenerate) cardinality range.
        return np.clip(
            np.full(len(query_cards), float(y[0])), 0.0, FAILURE_PENALTY_S
        )
    k = min(degree, log_x.size - 1)
    spline = InterpolatedUnivariateSpline(log_x, np.log(y + 1e-9), k=k)
    query = np.log(np.asarray(query_cards, dtype=np.float64))
    predicted = np.exp(spline(query)) - 1e-9
    return np.clip(predicted, 0.0, FAILURE_PENALTY_S)


def interpolate_level(
    low_level: int,
    low_runtime: float,
    high_level: int,
    high_runtime: float,
    level: int,
) -> float:
    """Impute a runtime between two executed UDF-complexity levels."""
    x0, x1 = _LEVEL_WORK[low_level], _LEVEL_WORK[high_level]
    x = _LEVEL_WORK[level]
    if x1 == x0:
        return low_runtime
    frac = (x - x0) / (x1 - x0)
    value = low_runtime + frac * (high_runtime - low_runtime)
    return float(np.clip(value, 0.0, FAILURE_PENALTY_S))


@dataclass
class LogRecord:
    """One labelled training point, before feature encoding."""

    cardinality: float
    level: int
    runtime: float
    executed: bool
    status: str  # "ok", "oom", "timeout", or "interpolated"


class LogGenerator:
    """Labels a grid of jobs for one (template, assignment) pair."""

    def __init__(self, executor: SimulatedExecutor):
        self.executor = executor
        self.n_executed = 0
        self.n_imputed = 0

    def label_grid(
        self,
        make_xplan,
        cardinalities: Sequence[float],
        executed_card_indices: Sequence[int],
        levels: Sequence[int],
        executed_levels: Sequence[int],
    ) -> List[LogRecord]:
        """Execute the selected subset of a (cardinality × level) grid and
        impute the rest.

        ``make_xplan(cardinality, level)`` must build the execution plan
        for one grid point.
        """
        executed_card_indices = sorted(set(executed_card_indices))
        executed_levels = [lv for lv in levels if lv in set(executed_levels)]
        if not executed_levels:
            executed_levels = list(levels)

        # Phase 1: run the executed subset.
        measured: Dict[Tuple[int, int], LogRecord] = {}
        for lv in executed_levels:
            for ci in executed_card_indices:
                card = cardinalities[ci]
                report = self.executor.execute(make_xplan(card, lv))
                runtime = report.runtime_s if report.ok else FAILURE_PENALTY_S
                measured[(ci, lv)] = LogRecord(
                    cardinality=card,
                    level=lv,
                    runtime=runtime,
                    executed=True,
                    status=report.status,
                )
                self.n_executed += 1

        # Phase 2: impute the remaining cardinalities per executed level.
        records: Dict[Tuple[int, int], LogRecord] = dict(measured)
        for lv in executed_levels:
            points = [
                measured[(ci, lv)]
                for ci in executed_card_indices
                if measured[(ci, lv)].status == "ok"
            ]
            missing = [
                ci for ci in range(len(cardinalities)) if (ci, lv) not in measured
            ]
            if not missing:
                continue
            if len(points) >= 2:
                predicted = interpolate_runtimes(
                    [r.cardinality for r in points],
                    [r.runtime for r in points],
                    [cardinalities[ci] for ci in missing],
                )
            else:
                # Nearly everything failed at this level: propagate penalty.
                predicted = [FAILURE_PENALTY_S] * len(missing)
            for ci, runtime in zip(missing, predicted):
                records[(ci, lv)] = LogRecord(
                    cardinality=cardinalities[ci],
                    level=lv,
                    runtime=float(runtime),
                    executed=False,
                    status="interpolated",
                )
                self.n_imputed += 1

        # Phase 3: impute the middle complexity levels per cardinality.
        low, high = min(executed_levels), max(executed_levels)
        for lv in levels:
            if lv in executed_levels:
                continue
            for ci in range(len(cardinalities)):
                records[(ci, lv)] = LogRecord(
                    cardinality=cardinalities[ci],
                    level=lv,
                    runtime=interpolate_level(
                        low,
                        records[(ci, low)].runtime,
                        high,
                        records[(ci, high)].runtime,
                        lv,
                    ),
                    executed=False,
                    status="interpolated",
                )
                self.n_imputed += 1

        return [records[(ci, lv)] for lv in levels for ci in range(len(cardinalities))]
