"""The model fallback chain: ML model → cost model → cardinality heuristic.

The optimizer's cost oracle is an ML model — which in production can
fail to load, return NaN/inf, or be handed a feature matrix of the wrong
width (a schema/model mismatch after a registry change). None of those
should abort an enumeration: :class:`FallbackRuntimeModel` wraps the
primary model and, per ``predict`` call, degrades level by level until a
predictor produces a finite, correctly-shaped cost vector. The terminal
level is :class:`CardinalityHeuristicModel`, which cannot fail.

Repeated primary failures trip a :class:`CircuitBreaker`: after
``failure_threshold`` consecutive failures the primary is short-circuited
(no more exception overhead on the hot path) until ``cooldown_s`` has
passed, at which point one half-open probe is allowed through; a
successful probe closes the breaker again. Kepler and Reqo make the same
argument for serving learned optimizers: robustness machinery belongs
*around* the model, not inside it.

Failure is not only exceptions: a bagged model that still *answers* but
whose trees wildly disagree is guessing, and a guess priced as a cost is
worse than the calibrated cost model one level down. :class:`VarianceGuard`
watches the primary's relative prediction spread (``predict_dist``, when
the model offers it) over a sliding window of calls; sustained high
variance counts as a soft failure — the call degrades to the fallback
chain and the breaker sees a failure, so a model that keeps guessing
eventually short-circuits like one that keeps crashing.

Counters (ambient tracer): ``resilience.model_failure``,
``resilience.fallback``, ``resilience.breaker_open``,
``resilience.breaker_short_circuit``, ``resilience.breaker_close``,
``resilience.high_variance``.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ModelError, ReproError
from repro.obs import current_tracer

__all__ = [
    "CircuitBreaker",
    "FallbackRuntimeModel",
    "CardinalityHeuristicModel",
    "VarianceGuard",
]

#: Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """A consecutive-failure circuit breaker with half-open probes.

    State machine: ``closed`` (calls allowed; ``failure_threshold``
    consecutive failures open it) → ``open`` (calls short-circuited for
    ``cooldown_s``) → ``half_open`` (one probe allowed; success closes,
    failure re-opens). The clock is injectable so tests can drive the
    cooldown deterministically.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ReproError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_s < 0:
            raise ReproError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._state = CLOSED
        self._failures = 0
        self._opened_at: Optional[float] = None

    @property
    def state(self) -> str:
        """Current state, promoting ``open`` → ``half_open`` on cooldown."""
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._state = HALF_OPEN
        return self._state

    @property
    def failures(self) -> int:
        """Consecutive failures since the last success."""
        return self._failures

    def allow(self) -> bool:
        """May the guarded call proceed right now?"""
        return self.state != OPEN

    def record_success(self) -> None:
        if self._state != CLOSED:
            tracer = current_tracer()
            if tracer.enabled:
                tracer.count("resilience.breaker_close")
        self._state = CLOSED
        self._failures = 0
        self._opened_at = None

    def record_failure(self) -> None:
        self._failures += 1
        state = self.state
        if state == HALF_OPEN or (
            state == CLOSED and self._failures >= self.failure_threshold
        ):
            self._state = OPEN
            self._opened_at = self._clock()
            tracer = current_tracer()
            if tracer.enabled:
                tracer.count("resilience.breaker_open")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CircuitBreaker(state={self.state!r}, failures={self._failures}/"
            f"{self.failure_threshold}, cooldown_s={self.cooldown_s})"
        )


class _HighVariance(ModelError):
    """Internal soft-failure signal: the primary answered, but guessing."""


class VarianceGuard:
    """Sliding-window monitor of a model's relative prediction spread.

    Each guarded ``predict`` contributes one flag: whether the batch's
    mean relative std (``std / max(|mean|, floor_s)``) exceeded
    ``threshold``. With the log-space delta transform in
    :meth:`repro.ml.model.RuntimeModel.predict_dist`, relative std is ≈
    the ensemble's log-space disagreement, so the threshold is
    scale-free — 0.8 means the trees disagree by roughly a factor of
    ``e^0.8 ≈ 2.2`` on a typical plan. The guard *trips* once
    ``trip_count`` of the last ``window`` calls are flagged (default:
    all of them — variance must be *sustained*, a single odd batch is
    what ensembles are for).

    ``floor_s`` keeps near-zero predicted runtimes from inflating the
    ratio: sub-millisecond plans are all equally cheap, their spread is
    not a model-health signal.
    """

    def __init__(
        self,
        threshold: float = 0.8,
        window: int = 8,
        trip_count: Optional[int] = None,
        floor_s: float = 1e-3,
    ):
        if not threshold > 0.0:
            raise ReproError(f"threshold must be > 0, got {threshold}")
        if window < 1:
            raise ReproError(f"window must be >= 1, got {window}")
        if trip_count is None:
            trip_count = window
        if not 1 <= trip_count <= window:
            raise ReproError(
                f"trip_count must be in [1, {window}], got {trip_count}"
            )
        self.threshold = float(threshold)
        self.window = int(window)
        self.trip_count = int(trip_count)
        self.floor_s = float(floor_s)
        self._flags: deque = deque(maxlen=self.window)
        self.high_calls = 0

    def observe(self, mean: np.ndarray, std: np.ndarray) -> bool:
        """Record one batch; returns whether it was flagged high-variance."""
        mean = np.asarray(mean, dtype=np.float64).reshape(-1)
        std = np.asarray(std, dtype=np.float64).reshape(-1)
        if mean.size == 0:
            return False
        rel = float(np.mean(std / np.maximum(np.abs(mean), self.floor_s)))
        flagged = bool(np.isfinite(rel) and rel > self.threshold)
        self._flags.append(flagged)
        if flagged:
            self.high_calls += 1
        return flagged

    @property
    def tripped(self) -> bool:
        """True when the window is full and flagged calls reach trip_count."""
        return (
            len(self._flags) == self.window
            and sum(self._flags) >= self.trip_count
        )

    def reset(self) -> None:
        """Forget the window — a fresh (retrained/swapped) model starts clean."""
        self._flags.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"VarianceGuard(threshold={self.threshold}, "
            f"flags={sum(self._flags)}/{len(self._flags)} of {self.window})"
        )


class CardinalityHeuristicModel:
    """The terminal fallback: cost ≈ data volume pushed through the plan.

    Ranks plan vectors by the cardinalities each platform processes plus
    the data moved by conversions — the crudest useful cost signal, and
    one that cannot fail: the input is sanitized (``nan_to_num``) and the
    output is a finite non-negative array by construction. With every
    dynamic-column term positive it still prefers fewer conversions and
    lighter platform loads, so degraded decisions stay sane.
    """

    #: Seconds per processed tuple / per moved tuple — only the *ratio*
    #: matters for ranking; the scale keeps outputs in a plausible range.
    TUPLE_COST = 1e-8
    CONVERSION_COST = 5e-8

    def __init__(self, schema):
        self.schema = schema
        self.n_features = schema.n_features
        weights = np.zeros(schema.n_features, dtype=np.float64)
        for pi in range(schema.k):
            weights[schema.platform_in_card_cell(pi)] = self.TUPLE_COST
            weights[schema.platform_out_card_cell(pi)] = self.TUPLE_COST
            weights[schema.platform_loop_work_cell(pi)] = self.TUPLE_COST
        for kind in schema.conversion_kinds:
            weights[schema.conv_input_card_cell(kind)] = self.CONVERSION_COST
        self._weights = weights

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        width = min(X.shape[1], self._weights.shape[0])
        # Tolerate a width mismatch: this is the level that must not fail.
        costs = np.nan_to_num(X[:, :width], posinf=0.0, neginf=0.0) @ self._weights[:width]
        return np.maximum(np.nan_to_num(costs), 0.0)


class FallbackRuntimeModel:
    """``predict`` with graceful degradation across a chain of predictors.

    Parameters
    ----------
    primary:
        The ML model (anything with ``predict(matrix) -> array``) — or a
        zero-argument *loader* returning one, resolved lazily on first
        use so that a missing/corrupt model file degrades instead of
        failing construction.
    fallbacks:
        Ordered lower-fidelity predictors tried after the primary; the
        last should be infallible (:class:`CardinalityHeuristicModel`).
    breaker:
        The breaker guarding the primary (a fresh default one otherwise).
    expected_features:
        When given, primary outputs are additionally validated against
        inputs of this width (shape mismatches count as failures).
    variance_guard:
        Optional :class:`VarianceGuard`. When set and the primary offers
        ``predict_dist``, every primary call is variance-checked; a
        tripped guard is a soft failure — the call is served from the
        fallback chain and the breaker records a failure
        (``resilience.high_variance``).
    """

    def __init__(
        self,
        primary,
        fallbacks: Sequence = (),
        breaker: Optional[CircuitBreaker] = None,
        expected_features: Optional[int] = None,
        variance_guard: Optional[VarianceGuard] = None,
    ):
        if hasattr(primary, "predict"):
            self._loader = None
            self._primary = primary
        elif callable(primary):
            self._loader = primary
            self._primary = None
        else:
            raise ModelError(
                "primary must have .predict or be a zero-arg loader"
            )
        self.fallbacks = list(fallbacks)
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.expected_features = expected_features
        self.variance_guard = variance_guard
        self.last_level: Optional[str] = None
        self.last_error: Optional[str] = None
        self.level_counts = {}

    # ------------------------------------------------------------------
    @classmethod
    def for_schema(
        cls,
        primary,
        schema,
        cost_model=None,
        breaker: Optional[CircuitBreaker] = None,
        variance_guard: Optional[VarianceGuard] = None,
    ) -> "FallbackRuntimeModel":
        """The standard chain: primary → calibrated cost → cardinality sum.

        ``cost_model`` is a :class:`repro.cost.cost_model.FeatureCostModel`
        (or anything vectorized over plan-vector matrices); when omitted a
        default-calibrated one is built for the schema.
        """
        from repro.cost.cost_model import FeatureCostModel

        if cost_model is None:
            cost_model = FeatureCostModel(schema)
        return cls(
            primary,
            fallbacks=[cost_model, CardinalityHeuristicModel(schema)],
            breaker=breaker,
            expected_features=schema.n_features,
            variance_guard=variance_guard,
        )

    # ------------------------------------------------------------------
    @property
    def levels(self) -> List[str]:
        """Level names, primary first."""
        return ["primary"] + [type(f).__name__ for f in self.fallbacks]

    @property
    def n_features(self) -> Optional[int]:
        if self.expected_features is not None:
            return self.expected_features
        return getattr(self._primary, "n_features", None)

    def _resolve_primary(self):
        if self._primary is None:
            model = self._loader()
            if not hasattr(model, "predict"):
                raise ModelError(
                    f"model loader returned {type(model).__name__} "
                    "without a predict method"
                )
            self._primary = model
        return self._primary

    def _validated(self, predicted, n_rows: int) -> np.ndarray:
        out = np.asarray(predicted, dtype=np.float64).reshape(-1)
        if out.shape != (n_rows,):
            raise ModelError(
                f"predictor returned shape {np.shape(predicted)} "
                f"for {n_rows} rows"
            )
        if not np.all(np.isfinite(out)):
            bad = int(np.count_nonzero(~np.isfinite(out)))
            raise ModelError(f"predictor returned {bad} non-finite values")
        return out

    def _note(self, level: str) -> None:
        self.last_level = level
        self.level_counts[level] = self.level_counts.get(level, 0) + 1

    # ------------------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted costs through the first level that answers sanely."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        n = X.shape[0]
        tracer = current_tracer()
        if self.breaker.allow():
            try:
                if (
                    self.expected_features is not None
                    and X.shape[1] != self.expected_features
                ):
                    raise ModelError(
                        f"expected {self.expected_features} features, "
                        f"got {X.shape[1]}"
                    )
                primary = self._resolve_primary()
                guard = self.variance_guard
                if guard is not None and hasattr(primary, "predict_dist"):
                    # One traversal serves both the costs and the health
                    # check: the dist mean is bit-identical to predict.
                    mean, std = primary.predict_dist(X)
                    out = self._validated(mean, n)
                    guard.observe(out, std)
                    if guard.tripped:
                        raise _HighVariance(
                            "sustained high prediction variance "
                            f"({sum(guard._flags)}/{guard.window} calls over "
                            f"threshold {guard.threshold})"
                        )
                else:
                    out = self._validated(primary.predict(X), n)
                self.breaker.record_success()
                self._note("primary")
                return out
            except Exception as exc:
                self.breaker.record_failure()
                self.last_error = f"{type(exc).__name__}: {exc}"
                if tracer.enabled:
                    tracer.count(
                        "resilience.high_variance"
                        if isinstance(exc, _HighVariance)
                        else "resilience.model_failure"
                    )
        elif tracer.enabled:
            tracer.count("resilience.breaker_short_circuit")
        for fallback in self.fallbacks:
            try:
                out = self._validated(fallback.predict(X), n)
            except Exception as exc:
                self.last_error = f"{type(exc).__name__}: {exc}"
                continue
            self._note(type(fallback).__name__)
            if tracer.enabled:
                tracer.count("resilience.fallback")
            return out
        raise ModelError(
            f"every level of the fallback chain failed "
            f"(last error: {self.last_error})"
        )

    def predict_one(self, x: np.ndarray) -> float:
        return float(self.predict(np.asarray(x)[None, :])[0])

    # ------------------------------------------------------------------
    def predict_dist(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Per-row ``(mean, std)`` with honest uncertainty at every level.

        The std encodes which level answered: the primary's real
        ensemble spread when it offers ``predict_dist``; exact zeros for
        a primary that only point-predicts (a deterministic predictor
        has no spread to report, and inventing one would poison
        risk-adjusted ranking); and ``+inf`` when the call was served
        from the fallback chain — a degraded cost is an unbounded-
        uncertainty estimate, and ``mean + k·inf`` correctly makes any
        risk-averse consumer refuse to prefer it over a primary-priced
        alternative.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        n = X.shape[0]
        tracer = current_tracer()
        if self.breaker.allow():
            try:
                if (
                    self.expected_features is not None
                    and X.shape[1] != self.expected_features
                ):
                    raise ModelError(
                        f"expected {self.expected_features} features, "
                        f"got {X.shape[1]}"
                    )
                primary = self._resolve_primary()
                if hasattr(primary, "predict_dist"):
                    mean, std = primary.predict_dist(X)
                    mean = self._validated(mean, n)
                    std = np.asarray(std, dtype=np.float64).reshape(-1)
                    if std.shape != (n,):
                        raise ModelError(
                            f"predict_dist returned std shape {std.shape} "
                            f"for {n} rows"
                        )
                else:
                    mean = self._validated(primary.predict(X), n)
                    std = np.zeros(n)
                self.breaker.record_success()
                self._note("primary")
                return mean, std
            except Exception as exc:
                self.breaker.record_failure()
                self.last_error = f"{type(exc).__name__}: {exc}"
                if tracer.enabled:
                    tracer.count("resilience.model_failure")
        elif tracer.enabled:
            tracer.count("resilience.breaker_short_circuit")
        for fallback in self.fallbacks:
            try:
                out = self._validated(fallback.predict(X), n)
            except Exception as exc:
                self.last_error = f"{type(exc).__name__}: {exc}"
                continue
            self._note(type(fallback).__name__)
            if tracer.enabled:
                tracer.count("resilience.fallback")
            return out, np.full(n, np.inf)
        raise ModelError(
            f"every level of the fallback chain failed "
            f"(last error: {self.last_error})"
        )

    def swap_primary(self, model) -> None:
        """Atomically replace the primary model (a feedback-loop retrain).

        A single attribute assignment — concurrent ``predict`` calls see
        either the old model or the new one, never a half-swapped state
        (the enumerator's cost closure holds *this* wrapper, not the
        model it wraps). The breaker and variance guard are reset: the
        fresh model has not earned the old one's failure record.
        """
        if not hasattr(model, "predict"):
            raise ModelError("swap_primary needs a model with .predict")
        self._primary = model
        self._loader = None
        self.breaker.record_success()
        if self.variance_guard is not None:
            self.variance_guard.reset()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FallbackRuntimeModel(levels={self.levels}, "
            f"breaker={self.breaker.state!r})"
        )
