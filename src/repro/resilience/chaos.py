"""Deterministic fault injection for the optimizer and the batch service.

A :class:`ChaosProfile` declares *rates* for a small failure taxonomy —
model exceptions, NaN predictions, worker deaths, cache corruption,
artificial latency — and a :class:`FaultInjector` turns them into
reproducible decisions: every decision draws from a generator seeded by
``(profile seed, decision token)``, so the same profile injects the same
faults regardless of process, worker, or execution order.

Wrappers plug the injector into the existing stack without touching it:

* :class:`ChaoticModel` — wraps a runtime model; ``predict`` raises or
  returns NaNs at the configured rates (keyed by call index);
* :class:`ChaoticOptimizer` — wraps an optimizer; injects per-plan
  latency and (keyed by plan name, so pool and serial agree) worker
  death via ``os._exit``;
* :func:`corrupt_cache_file` — truncates/garbles a plan-cache JSON, the
  input the corrupt-tolerant :meth:`PlanCache.load` must survive.

CLI: ``repro optimize-batch --chaos-profile model-outage`` (named
preset) or ``--chaos-profile "model_failure_rate=0.5,seed=7"`` (spec).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, fields, replace
from typing import Dict, Optional

import numpy as np

from repro.exceptions import ReproError

__all__ = [
    "ChaosProfile",
    "FaultInjector",
    "ChaoticModel",
    "ChaoticOptimizer",
    "corrupt_cache_file",
    "PROFILES",
]


class InjectedFault(RuntimeError):
    """Raised by chaos wrappers when a fault fires (never by real code)."""


@dataclass(frozen=True)
class ChaosProfile:
    """Failure rates (each in [0, 1]) plus a seed for determinism."""

    seed: int = 0
    model_failure_rate: float = 0.0
    model_nan_rate: float = 0.0
    worker_death_rate: float = 0.0
    cache_corrupt_rate: float = 0.0
    latency_ms: float = 0.0
    latency_rate: float = 1.0

    def __post_init__(self):
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name.endswith("_rate") and not 0.0 <= value <= 1.0:
                raise ReproError(f"{f.name} must be in [0, 1], got {value}")
        if self.latency_ms < 0:
            raise ReproError(f"latency_ms must be >= 0, got {self.latency_ms}")

    @property
    def inert(self) -> bool:
        """True when this profile injects nothing."""
        return (
            self.model_failure_rate == 0.0
            and self.model_nan_rate == 0.0
            and self.worker_death_rate == 0.0
            and self.cache_corrupt_rate == 0.0
            and self.latency_ms == 0.0
        )

    @classmethod
    def parse(cls, spec: str) -> "ChaosProfile":
        """Build a profile from a preset name and/or ``k=v`` overrides.

        ``"model-outage"``, ``"model-outage,seed=7"`` and
        ``"model_failure_rate=1.0,latency_ms=5"`` are all valid.
        """
        profile = cls()
        for part in str(spec).split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                try:
                    preset = PROFILES[part]
                except KeyError:
                    raise ReproError(
                        f"unknown chaos preset {part!r}; known: "
                        f"{', '.join(sorted(PROFILES))}"
                    ) from None
                overrides = {
                    f.name: getattr(preset, f.name)
                    for f in fields(cls)
                    if getattr(preset, f.name) != getattr(cls, f.name, None)
                    and f.name != "seed"
                }
                profile = replace(profile, **overrides)
                continue
            key, _, raw = part.partition("=")
            key = key.strip()
            if key not in {f.name for f in fields(cls)}:
                raise ReproError(
                    f"unknown chaos field {key!r}; known: "
                    f"{', '.join(f.name for f in fields(cls))}"
                )
            value = int(raw) if key == "seed" else float(raw)
            profile = replace(profile, **{key: value})
        return profile


#: Named presets for the CLI and the CI chaos matrix.
PROFILES: Dict[str, ChaosProfile] = {
    "model-outage": ChaosProfile(model_failure_rate=1.0),
    "model-flaky": ChaosProfile(model_failure_rate=0.3),
    "nan-storm": ChaosProfile(model_nan_rate=1.0),
    "worker-deaths": ChaosProfile(worker_death_rate=0.3),
    "cache-corruption": ChaosProfile(cache_corrupt_rate=1.0),
    "slow-model": ChaosProfile(latency_ms=20.0),
    "everything": ChaosProfile(
        model_failure_rate=0.3,
        model_nan_rate=0.2,
        worker_death_rate=0.1,
        cache_corrupt_rate=0.5,
        latency_ms=5.0,
    ),
}


def _token_seed(token: str) -> int:
    """A stable 63-bit integer for a decision token (not ``hash``: that is
    salted per process, which would break cross-worker determinism)."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


class FaultInjector:
    """Seeded, token-keyed fault decisions for one chaos profile."""

    def __init__(self, profile: ChaosProfile):
        self.profile = profile

    def decide(self, token: str, rate: float) -> bool:
        """Does the fault keyed by ``token`` fire at ``rate``?

        Deterministic in ``(profile.seed, token)`` alone.
        """
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        rng = np.random.default_rng([self.profile.seed, _token_seed(token)])
        return bool(rng.uniform() < rate)

    # Convenience wrappers over the taxonomy -----------------------------
    def model_fails(self, token: str) -> bool:
        return self.decide(f"model_failure:{token}", self.profile.model_failure_rate)

    def model_nans(self, token: str) -> bool:
        return self.decide(f"model_nan:{token}", self.profile.model_nan_rate)

    def worker_dies(self, token: str) -> bool:
        return self.decide(f"worker_death:{token}", self.profile.worker_death_rate)

    def cache_corrupts(self, token: str) -> bool:
        return self.decide(f"cache_corrupt:{token}", self.profile.cache_corrupt_rate)

    def latency_s(self, token: str) -> float:
        if self.profile.latency_ms <= 0.0:
            return 0.0
        if not self.decide(f"latency:{token}", self.profile.latency_rate):
            return 0.0
        return self.profile.latency_ms / 1000.0


class ChaoticModel:
    """A runtime model that fails/poisons predictions per the injector.

    Decisions are keyed by a per-instance call counter, so a sub-1.0
    failure rate produces a deterministic pass/fail sequence within one
    optimizer (each worker builds its own instance).
    """

    def __init__(self, inner, injector: FaultInjector):
        self.inner = inner
        self.injector = injector
        self.calls = 0

    @property
    def n_features(self):
        return getattr(self.inner, "n_features", None)

    def predict(self, X):
        token = f"call{self.calls}"
        self.calls += 1
        if self.injector.model_fails(token):
            raise InjectedFault(f"injected model failure ({token})")
        out = np.asarray(self.inner.predict(X), dtype=np.float64)
        if self.injector.model_nans(token):
            out = out.copy()
            out[:] = np.nan
        return out


class ChaoticOptimizer:
    """An optimizer wrapper injecting latency and worker deaths.

    Worker death is keyed by the *plan name*, so the same plan kills its
    worker on every dispatch — the poisoned-job scenario the batch
    service's quarantine must contain. ``os._exit`` only fires inside a
    pool worker; in the main process (serial dispatch) the death is
    simulated as a raised :class:`InjectedFault`, because actually
    exiting would take the whole service down rather than exercise it.
    """

    def __init__(self, inner, injector: FaultInjector):
        self.inner = inner
        self.injector = injector

    @property
    def registry(self):
        return self.inner.registry

    @property
    def singleton_memo(self):
        return getattr(self.inner, "singleton_memo", None)

    @singleton_memo.setter
    def singleton_memo(self, memo):
        if hasattr(self.inner, "singleton_memo"):
            self.inner.singleton_memo = memo

    def optimize(self, plan):
        token = plan.name or "unnamed"
        if self.injector.worker_dies(token):
            import multiprocessing
            import os

            if multiprocessing.parent_process() is not None:
                os._exit(17)
            raise InjectedFault(
                f"injected worker death for plan {token!r} "
                "(serial mode: surfaced as a job failure)"
            )
        delay = self.injector.latency_s(token)
        if delay > 0.0:
            time.sleep(delay)
        return self.inner.optimize(plan)


def corrupt_cache_file(path, injector: FaultInjector, token: str = "cache") -> bool:
    """Maybe corrupt a cache JSON in place (truncate to half its bytes).

    Returns whether corruption was injected. Used by the chaos CLI path
    and the load-tolerance tests; a truncated JSON document is the
    classic crash-during-write artifact :meth:`PlanCache.load` must
    shrug off.
    """
    from pathlib import Path

    path = Path(path)
    if not path.exists() or not injector.cache_corrupts(token):
        return False
    blob = path.read_bytes()
    path.write_bytes(blob[: max(1, len(blob) // 2)])
    return True
