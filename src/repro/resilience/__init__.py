"""Resilience subsystem: budgets, fallback chains, retries, chaos.

Four orthogonal pieces, each usable on its own:

* :mod:`repro.resilience.budget` — deadline/vector budgets the
  enumerator polls to return *anytime* results instead of running
  unboundedly;
* :mod:`repro.resilience.fallback` — the runtime-model fallback chain
  (ML model → calibrated cost model → cardinality heuristic) behind a
  circuit breaker;
* :mod:`repro.resilience.retry` — retry policy with jittered
  exponential backoff and the worker-death quarantine used by the batch
  service;
* :mod:`repro.resilience.chaos` — deterministic, seeded fault injection
  for tests and the ``--chaos-profile`` CLI flag.
"""

from repro.resilience.budget import Budget, BudgetClock
from repro.resilience.chaos import (
    PROFILES,
    ChaosProfile,
    ChaoticModel,
    ChaoticOptimizer,
    FaultInjector,
    corrupt_cache_file,
)
from repro.resilience.fallback import (
    CardinalityHeuristicModel,
    CircuitBreaker,
    FallbackRuntimeModel,
    VarianceGuard,
)
from repro.resilience.retry import Quarantine, RetryPolicy

__all__ = [
    "Budget",
    "BudgetClock",
    "CircuitBreaker",
    "FallbackRuntimeModel",
    "CardinalityHeuristicModel",
    "VarianceGuard",
    "RetryPolicy",
    "Quarantine",
    "ChaosProfile",
    "FaultInjector",
    "ChaoticModel",
    "ChaoticOptimizer",
    "corrupt_cache_file",
    "PROFILES",
]
