"""Optimization budgets: wall-clock deadlines and vector caps.

A :class:`Budget` is immutable configuration ("this query may spend 10ms
and/or 100k plan vectors on optimization"); :meth:`Budget.start` stamps a
:class:`BudgetClock` against the current wall clock, which the enumerator
polls between concatenations. On expiry the enumerator does **not** raise
— it returns the best *complete* plan assemblable from the partial
enumerations (see ``PriorityEnumerator._anytime_result``), records
``RunStats.degraded``/``RunStats.degradation`` and bumps the
``resilience.deadline_hit``/``resilience.degraded`` counters.

Budget-aware primitives that cannot degrade locally (e.g.
:func:`repro.core.operations.enumerate_singleton`) raise
:class:`repro.exceptions.BudgetExceededError` instead; only the
enumerator turns expiry into degradation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import BudgetExceededError, ReproError

__all__ = ["Budget", "BudgetClock"]

#: Degradation reasons a clock can report.
REASON_DEADLINE = "deadline"
REASON_MAX_VECTORS = "max_vectors"


@dataclass(frozen=True)
class Budget:
    """How much an optimization run may spend before degrading.

    Parameters
    ----------
    deadline_s:
        Wall-clock budget in seconds (``None`` = unbounded). ``0`` is
        legal and means "degrade immediately" — useful for tests and for
        forcing the greedy path.
    max_vectors:
        Cap on the total number of plan vectors materialized
        (``RunStats.total_vectors``); crossing it degrades the run
        instead of raising like the enumerator's hard ``max_vectors``
        safety valve.
    """

    deadline_s: Optional[float] = None
    max_vectors: Optional[int] = None

    def __post_init__(self):
        if self.deadline_s is not None and self.deadline_s < 0:
            raise ReproError(f"deadline_s must be >= 0, got {self.deadline_s}")
        if self.max_vectors is not None and self.max_vectors < 0:
            raise ReproError(f"max_vectors must be >= 0, got {self.max_vectors}")

    @property
    def unbounded(self) -> bool:
        """True when the budget constrains nothing."""
        return self.deadline_s is None and self.max_vectors is None

    def start(self, clock=time.perf_counter) -> "BudgetClock":
        """Stamp this budget against the current wall clock."""
        return BudgetClock(self, started=clock(), clock=clock)


class BudgetClock:
    """One run's view of a started :class:`Budget`.

    ``clock`` is injectable for deterministic tests.
    """

    __slots__ = ("budget", "started", "_clock")

    def __init__(self, budget: Budget, started: float, clock=time.perf_counter):
        self.budget = budget
        self.started = started
        self._clock = clock

    def elapsed_s(self) -> float:
        return self._clock() - self.started

    def remaining_s(self) -> Optional[float]:
        """Seconds left under the deadline (``None`` = no deadline)."""
        if self.budget.deadline_s is None:
            return None
        return self.budget.deadline_s - self.elapsed_s()

    def check(self, vectors: int = 0) -> Optional[str]:
        """The expiry reason, or ``None`` while the budget still holds.

        The deadline is checked first: a run that is both over time and
        over its vector cap reports ``"deadline"``.
        """
        remaining = self.remaining_s()
        if remaining is not None and remaining <= 0:
            return REASON_DEADLINE
        cap = self.budget.max_vectors
        if cap is not None and vectors > cap:
            return REASON_MAX_VECTORS
        return None

    def ensure(self, vectors: int = 0) -> None:
        """Raise :class:`BudgetExceededError` if the budget expired."""
        reason = self.check(vectors)
        if reason is not None:
            raise BudgetExceededError(reason)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BudgetClock(deadline_s={self.budget.deadline_s}, "
            f"max_vectors={self.budget.max_vectors}, "
            f"elapsed_s={self.elapsed_s():.4f})"
        )
