"""Retry policy (exponential backoff + deterministic jitter) and quarantine.

Used by :class:`repro.serve.batch.BatchOptimizationService`: failed jobs
are re-dispatched up to ``max_retries`` times with exponentially growing,
jittered delays, and jobs that repeatedly *kill pool workers* (rather
than merely raise) are quarantined — one pathological plan must not
re-break the pool on every batch.

Jitter is seeded: the same service configuration produces the same delay
sequence, so chaos tests are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.exceptions import ReproError

__all__ = ["RetryPolicy", "Quarantine"]


@dataclass(frozen=True)
class RetryPolicy:
    """How failed jobs are retried.

    ``delay(attempt)`` for attempt 1, 2, … is
    ``base_backoff_s * multiplier**(attempt-1)``, capped at
    ``max_backoff_s``, times a jitter factor drawn uniformly from
    ``[1 - jitter, 1 + jitter]`` with a generator seeded by
    ``(seed, attempt)`` — deterministic and independent of call order.
    """

    max_retries: int = 2
    base_backoff_s: float = 0.05
    multiplier: float = 2.0
    max_backoff_s: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ReproError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ReproError("backoff seconds must be >= 0")
        if not 0.0 <= self.jitter < 1.0:
            raise ReproError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.multiplier < 1.0:
            raise ReproError(f"multiplier must be >= 1, got {self.multiplier}")

    def delay_s(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based), jittered."""
        if attempt < 1:
            raise ReproError(f"attempt must be >= 1, got {attempt}")
        base = min(
            self.base_backoff_s * self.multiplier ** (attempt - 1),
            self.max_backoff_s,
        )
        if self.jitter == 0.0 or base == 0.0:
            return base
        rng = np.random.default_rng([self.seed, attempt])
        return base * float(rng.uniform(1.0 - self.jitter, 1.0 + self.jitter))


class Quarantine:
    """Tracks plans that killed pool workers; isolates repeat offenders.

    Keyed by plan fingerprint (so retries and later batches of the same
    pathological plan are recognized). A key with ``threshold`` or more
    recorded worker deaths is quarantined: the batch service fails it
    immediately instead of handing it another worker to kill.

    A broken pool fails every in-flight job, so the service records a
    death for *all* of them — attribution to the one poisonous plan is
    impossible from the outside. Innocent bystanders clear their tally
    via :meth:`record_success` when their retry completes; only the plan
    whose dispatches keep coinciding with pool breakage accumulates
    deaths and crosses the threshold.
    """

    def __init__(self, threshold: int = 2):
        if threshold < 1:
            raise ReproError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self._deaths: Dict[str, int] = {}

    def record_worker_death(self, key: str) -> int:
        """Note that this key's job took a worker down; returns the tally."""
        self._deaths[key] = self._deaths.get(key, 0) + 1
        return self._deaths[key]

    def record_success(self, key: str) -> None:
        """Clear the tally: the key completed without breaking anything."""
        self._deaths.pop(key, None)

    def deaths(self, key: str) -> int:
        return self._deaths.get(key, 0)

    def is_quarantined(self, key: str) -> bool:
        return self._deaths.get(key, 0) >= self.threshold

    def __len__(self) -> int:
        """How many keys are currently quarantined."""
        return sum(1 for n in self._deaths.values() if n >= self.threshold)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Quarantine(threshold={self.threshold}, "
            f"quarantined={len(self)}, tracked={len(self._deaths)})"
        )
