"""Robopt reproduction: ML-based cross-platform query optimization.

A full reimplementation of the system described in *"ML-based
Cross-Platform Query Optimization"* (Kaoudi et al., ICDE 2020):

* :mod:`repro.rheem` — the cross-platform substrate (logical plans,
  platforms, execution plans, conversion operators);
* :mod:`repro.core` — the vectorized optimizer (plan vectors, algebraic
  operations, boundary pruning, priority-based enumeration);
* :mod:`repro.ml` — runtime-prediction models (random forest, linear,
  MLP) implemented from scratch on NumPy;
* :mod:`repro.simulator` — the simulated multi-platform execution
  environment that stands in for the paper's cluster;
* :mod:`repro.cost` — the RHEEMix-style cost-based optimizer baseline;
* :mod:`repro.baselines` — Rheem-ML and exhaustive enumeration baselines;
* :mod:`repro.tdgen` — the scalable training data generator;
* :mod:`repro.obs` — observability (tracer, spans, counters, JSONL);
* :mod:`repro.serve` — the serving layer: the batch optimization
  service (process-pool parallelism, fingerprint-keyed plan cache, CLI
  ``optimize-batch``) and the persistent ``repro serve`` daemon
  (versioned wire protocol, admission control, cross-client
  coalescing);
* :mod:`repro.resilience` — deadline-budgeted anytime optimization,
  the model fallback chain (circuit breaker → cost model → heuristic),
  retry/quarantine policies and deterministic fault injection;
* :mod:`repro.workloads` — the queries of Table II plus synthetic plans.

Every optimizer (:class:`Robopt`, :class:`RheemixOptimizer`,
:class:`RheemMLOptimizer`, :class:`ExhaustiveOptimizer`) implements the
:class:`Optimizer` protocol and returns the same
:class:`OptimizationResult` with :class:`RunStats` — see
:mod:`repro.api`.

Quickstart::

    from repro import (
        Robopt, default_registry, SimulatedExecutor,
        TrainingDataGenerator, RuntimeModel,
    )
    from repro.workloads import wordcount

    registry = default_registry()
    executor = SimulatedExecutor.default(registry)
    dataset = TrainingDataGenerator(registry, executor, seed=0).generate(500)
    model = RuntimeModel.train(dataset)
    plan = wordcount.plan()
    result = Robopt(registry, model).optimize(plan)
    print(result.execution_plan.describe())
"""

from repro.core import (
    FeatureSchema,
    OptimizationResult,
    PriorityEnumerator,
    Robopt,
)
from repro.rheem import (
    DatasetProfile,
    ExecutionPlan,
    LogicalPlan,
    PlatformRegistry,
    default_registry,
    operator,
    synthetic_registry,
)

__version__ = "1.1.0"

#: Lazy exports: public names resolved on first attribute access so that
#: ``import repro`` stays light. This map — together with the eager
#: imports above — is the single source of truth behind ``__all__``.
_LAZY = {
    "Optimizer": ("repro.api", "Optimizer"),
    "RunStats": ("repro.api", "RunStats"),
    "RheemixOptimizer": ("repro.cost", "RheemixOptimizer"),
    "RheemMLOptimizer": ("repro.baselines", "RheemMLOptimizer"),
    "ExhaustiveOptimizer": ("repro.baselines", "ExhaustiveOptimizer"),
    "SimulatedExecutor": ("repro.simulator", "SimulatedExecutor"),
    "RuntimeModel": ("repro.ml", "RuntimeModel"),
    "TrainingDataGenerator": ("repro.tdgen", "TrainingDataGenerator"),
    "Tracer": ("repro.obs", "Tracer"),
    "current_tracer": ("repro.obs", "current_tracer"),
    "use_tracer": ("repro.obs", "use_tracer"),
    # serving layer
    "BatchOptimizationService": ("repro.serve", "BatchOptimizationService"),
    "BatchJob": ("repro.serve", "BatchJob"),
    "BatchReport": ("repro.serve", "BatchReport"),
    "PlanCache": ("repro.serve", "PlanCache"),
    "TemplateCache": ("repro.serve", "TemplateCache"),
    "plan_fingerprint": ("repro.serve", "plan_fingerprint"),
    "template_fingerprint": ("repro.serve", "template_fingerprint"),
    "robopt_factory": ("repro.serve", "robopt_factory"),
    "resilient_robopt_factory": ("repro.serve", "resilient_robopt_factory"),
    "OptimizationDaemon": ("repro.serve", "OptimizationDaemon"),
    "DaemonConfig": ("repro.serve", "DaemonConfig"),
    "ServeClient": ("repro.serve", "ServeClient"),
    "OptimizeRequest": ("repro.serve", "OptimizeRequest"),
    "OptimizeResponse": ("repro.serve", "OptimizeResponse"),
    "ErrorResponse": ("repro.serve", "ErrorResponse"),
    "PROTOCOL_VERSION": ("repro.serve", "PROTOCOL_VERSION"),
    # resilience layer
    "Budget": ("repro.resilience", "Budget"),
    "CircuitBreaker": ("repro.resilience", "CircuitBreaker"),
    "FallbackRuntimeModel": ("repro.resilience", "FallbackRuntimeModel"),
    "RetryPolicy": ("repro.resilience", "RetryPolicy"),
    "ChaosProfile": ("repro.resilience", "ChaosProfile"),
}

__all__ = [
    # core optimizer + unified API
    "Robopt",
    "Optimizer",
    "OptimizationResult",
    "RunStats",
    "PriorityEnumerator",
    "FeatureSchema",
    # baselines
    "RheemixOptimizer",
    "RheemMLOptimizer",
    "ExhaustiveOptimizer",
    # substrate
    "LogicalPlan",
    "ExecutionPlan",
    "DatasetProfile",
    "PlatformRegistry",
    "default_registry",
    "synthetic_registry",
    "operator",
    # execution / training / models
    "SimulatedExecutor",
    "TrainingDataGenerator",
    "RuntimeModel",
    # observability
    "Tracer",
    "current_tracer",
    "use_tracer",
    # serving layer
    "BatchOptimizationService",
    "BatchJob",
    "BatchReport",
    "PlanCache",
    "TemplateCache",
    "plan_fingerprint",
    "template_fingerprint",
    "robopt_factory",
    "resilient_robopt_factory",
    "OptimizationDaemon",
    "DaemonConfig",
    "ServeClient",
    "OptimizeRequest",
    "OptimizeResponse",
    "ErrorResponse",
    "PROTOCOL_VERSION",
    # resilience layer
    "Budget",
    "CircuitBreaker",
    "FallbackRuntimeModel",
    "RetryPolicy",
    "ChaosProfile",
    "__version__",
]


def __getattr__(name):
    """Resolve the lazy exports declared in ``_LAZY``."""
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
