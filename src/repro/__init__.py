"""Robopt reproduction: ML-based cross-platform query optimization.

A full reimplementation of the system described in *"ML-based
Cross-Platform Query Optimization"* (Kaoudi et al., ICDE 2020):

* :mod:`repro.rheem` — the cross-platform substrate (logical plans,
  platforms, execution plans, conversion operators);
* :mod:`repro.core` — the vectorized optimizer (plan vectors, algebraic
  operations, boundary pruning, priority-based enumeration);
* :mod:`repro.ml` — runtime-prediction models (random forest, linear,
  MLP) implemented from scratch on NumPy;
* :mod:`repro.simulator` — the simulated multi-platform execution
  environment that stands in for the paper's cluster;
* :mod:`repro.cost` — the RHEEMix-style cost-based optimizer baseline;
* :mod:`repro.baselines` — Rheem-ML and exhaustive enumeration baselines;
* :mod:`repro.tdgen` — the scalable training data generator;
* :mod:`repro.workloads` — the queries of Table II plus synthetic plans.

Quickstart::

    from repro import (
        Robopt, default_registry, SimulatedExecutor,
        TrainingDataGenerator, RuntimeModel,
    )
    from repro.workloads import wordcount

    registry = default_registry()
    executor = SimulatedExecutor.default(registry)
    dataset = TrainingDataGenerator(registry, executor, seed=0).generate(500)
    model = RuntimeModel.train(dataset)
    plan = wordcount.plan()
    result = Robopt(registry, model).optimize(plan)
    print(result.execution_plan.describe())
"""

from repro.core import (
    FeatureSchema,
    OptimizationResult,
    PriorityEnumerator,
    Robopt,
)
from repro.rheem import (
    DatasetProfile,
    ExecutionPlan,
    LogicalPlan,
    PlatformRegistry,
    default_registry,
    operator,
    synthetic_registry,
)

__version__ = "1.0.0"

__all__ = [
    "FeatureSchema",
    "Robopt",
    "OptimizationResult",
    "PriorityEnumerator",
    "LogicalPlan",
    "ExecutionPlan",
    "DatasetProfile",
    "PlatformRegistry",
    "default_registry",
    "synthetic_registry",
    "operator",
    "__version__",
]


def __getattr__(name):
    """Lazy exports that pull in heavier subsystems on first use."""
    if name == "SimulatedExecutor":
        from repro.simulator import SimulatedExecutor

        return SimulatedExecutor
    if name == "RuntimeModel":
        from repro.ml import RuntimeModel

        return RuntimeModel
    if name == "TrainingDataGenerator":
        from repro.tdgen import TrainingDataGenerator

        return TrainingDataGenerator
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
