"""Exception hierarchy for the Robopt reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class. Subclasses are grouped by subsystem:
plan construction, enumeration, ML, simulation, and training-data
generation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class PlanError(ReproError):
    """A logical or execution plan is malformed."""


class CycleError(PlanError):
    """A logical plan contains a cycle (plans must be DAGs)."""


class ArityError(PlanError):
    """An operator has the wrong number of inputs or outputs."""


class UnknownOperatorError(PlanError):
    """An operator kind is not present in the catalog."""


class PlatformError(ReproError):
    """A platform-related error (unknown platform, unsupported operator)."""


class UnsupportedOperatorError(PlatformError):
    """No platform can execute a given logical operator."""


class EnumerationError(ReproError):
    """The plan enumeration reached an inconsistent state."""


class BudgetExceededError(EnumerationError):
    """An optimization budget (deadline or vector cap) expired mid-run.

    Raised only from budget-aware primitives; the priority enumerator
    catches it and degrades to the best complete plan found so far
    instead of surfacing the error (see ``repro.resilience.budget``).
    """

    def __init__(self, reason: str, message: str = ""):
        self.reason = reason
        super().__init__(message or f"optimization budget exceeded ({reason})")


class ScopeError(EnumerationError):
    """Two enumerations have incompatible scopes for the requested operation."""


class VectorizationError(ReproError):
    """A plan could not be (un)vectorized against the feature schema."""


class ModelError(ReproError):
    """An ML model is misconfigured or used before being fitted."""


class NotFittedError(ModelError):
    """Predict was called on a model that has not been fitted."""


class SimulationError(ReproError):
    """The simulated executor could not run a plan."""


class ExecutionFailure(SimulationError):
    """A simulated execution failed (e.g. out of memory or timeout).

    Carries the failure ``reason`` (``"oom"`` or ``"timeout"``) and the
    simulated time at which the failure occurred.
    """

    def __init__(self, reason: str, runtime: float, message: str = ""):
        self.reason = reason
        self.runtime = runtime
        super().__init__(message or f"execution failed: {reason} after {runtime:.1f}s")


class GenerationError(ReproError):
    """The training-data generator received infeasible parameters."""
