"""The unified optimizer API: one protocol, one result, one stats type.

Every optimizer in this repository — :class:`repro.core.optimizer.Robopt`,
the cost-based :class:`repro.cost.optimizer.RheemixOptimizer`, the
Rheem-ML strawman and the exhaustive vectorized baseline — satisfies the
same contract, so experiments can swap systems without touching the
measurement code (the fair-comparison requirement of §VII):

* :class:`Optimizer` — the protocol: ``optimize(logical_plan) ->
  OptimizationResult``;
* :class:`OptimizationResult` — the chosen execution plan, its predicted
  runtime/cost, and the run's :class:`RunStats`;
* :class:`RunStats` — instrumentation shared by the vectorized and the
  object-based enumerators (subplan counts, pruning effect, phase
  timings).

The vectorized vocabulary is the only one: the pre-unification names
(``OptimizationResult.cost``, ``RunStats.subplans_created``,
``subplans_pruned``, ``singleton_subplans``, ``cost_evaluations``)
shipped as deprecated aliases for one release and have been removed —
use ``predicted_runtime``, ``vectors_created``, ``vectors_pruned``,
``singleton_vectors`` and ``rows_predicted``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Any, Dict, Optional, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.rheem.execution_plan import ExecutionPlan
    from repro.rheem.logical_plan import LogicalPlan

__all__ = ["Optimizer", "OptimizationResult", "RunStats"]


@dataclass
class RunStats:
    """Instrumentation of one optimization run, shared by all optimizers.

    The vectorized enumerator's vocabulary is canonical: a "vector" is
    one enumerated subplan (the paper's Table I quantity), whether it is
    stored as a matrix row (Robopt, exhaustive) or a Python object
    (RHEEMix, Rheem-ML). ``rows_predicted`` counts cost-oracle rows —
    ML-model rows for the learned optimizers, cost-formula evaluations
    for RHEEMix. The ``time_*`` fields break the latency into phases;
    object-based runs additionally split cost evaluation into
    vectorization vs. model invocation (the §VII-B measurement).
    """

    singleton_vectors: int = 0
    vectors_created: int = 0
    vectors_pruned: int = 0
    merges: int = 0
    prune_calls: int = 0
    rows_predicted: int = 0
    peak_enumeration: int = 0
    final_vectors: int = 0
    time_merge_s: float = 0.0
    time_prune_s: float = 0.0
    latency_s: float = 0.0
    # Object-enumeration extras (§VII-B time breakdown).
    time_cost_s: float = 0.0
    time_vectorize_s: float = 0.0
    time_predict_s: float = 0.0
    # Resilience: set when the run was cut short (deadline/vector budget)
    # and returned an anytime answer instead of the model-optimal plan.
    # ``degradation`` names the cause ("deadline", "max_vectors",
    # "greedy_fallback"); empty when the search ran to completion.
    degraded: bool = False
    degradation: str = ""
    # Uncertainty: the model's prediction spread (seconds) for the chosen
    # plan, populated only when risk-adjusted ranking ran (see
    # ``Robopt(risk_aversion=...)``); 0.0 otherwise.
    predicted_std: float = 0.0

    @property
    def total_vectors(self) -> int:
        """All enumerated subplans: singletons plus concatenation output."""
        return self.singleton_vectors + self.vectors_created

    def as_dict(self) -> Dict[str, float]:
        """Field name → value (for traces and bench records)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def copy(self) -> "RunStats":
        """An independent field-by-field copy."""
        return RunStats(**self.as_dict())


@dataclass
class OptimizationResult:
    """The optimizer's answer for one logical plan.

    ``predicted_runtime`` is the cost oracle's estimate for the chosen
    plan — seconds for the ML optimizers, calibrated cost units for
    RHEEMix (``predicted_cost`` is the same number under the cost-based
    vocabulary). ``optimizer`` names the producing system so traces and
    bench records are self-describing. ``final_enumeration`` carries the
    surviving complete enumeration when the producing enumerator is
    vectorized (``None`` for object-based runs).
    """

    execution_plan: "ExecutionPlan"
    predicted_runtime: float
    stats: RunStats = field(default_factory=RunStats)
    optimizer: str = ""
    final_enumeration: Any = None

    @property
    def predicted_cost(self) -> float:
        """The predicted runtime under the cost-based vocabulary."""
        return self.predicted_runtime

    @property
    def latency_s(self) -> float:
        """End-to-end optimization latency (logical plan → execution plan)."""
        return self.stats.latency_s

    def copy(self) -> "OptimizationResult":
        """An independent copy safe to hand to a second consumer.

        The logical plan is deep-cloned and the platform assignment
        rebuilt, so mutating the copy's plan or assignment cannot affect
        the original (the plan cache relies on this). The
        ``final_enumeration`` — which aliases enumeration matrices — is
        deliberately not carried over.
        """
        from repro.rheem.execution_plan import ExecutionPlan as _ExecutionPlan

        xplan = self.execution_plan
        return OptimizationResult(
            execution_plan=_ExecutionPlan(
                xplan.plan.clone(), dict(xplan.assignment), xplan.registry
            ),
            predicted_runtime=self.predicted_runtime,
            stats=self.stats.copy(),
            optimizer=self.optimizer,
            final_enumeration=None,
        )


@runtime_checkable
class Optimizer(Protocol):
    """What every cross-platform optimizer in this repository looks like."""

    def optimize(self, plan: "LogicalPlan") -> OptimizationResult:
        """Choose an execution plan for a validated logical plan."""
        ...
