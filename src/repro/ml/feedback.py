"""Execution feedback: fold observed runtimes back into the model.

The paper trains its model once from TDGEN logs ("no further tuning was
then required", §VII-A) but also notes Robopt "is able to find such cases
by observing patterns in the execution logs". This module closes that
loop for a deployed optimizer: every executed plan is an additional
labelled point, and periodic retraining sharpens the model exactly where
the production workload lives — the cheapest possible form of adaptivity,
with no optimizer changes (the model stays a black-box ``predict``).

Usage::

    loop = FeedbackLoop(schema, base_dataset=tdgen_dataset)
    model = loop.retrain()
    result = Robopt(registry, model).optimize(plan)
    runtime = executor.measure(result.execution_plan)
    loop.observe(result.execution_plan, runtime)
    if loop.observations_since_retrain >= 50:
        model = loop.retrain()
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import ModelError
from repro.core.features import FeatureSchema
from repro.ml.model import RuntimeModel, TrainingDataset
from repro.obs import current_tracer
from repro.rheem.execution_plan import ExecutionPlan


class FeedbackLoop:
    """Accumulates execution observations and retrains the runtime model.

    Parameters
    ----------
    schema:
        The feature schema shared with the optimizer.
    base_dataset:
        The TDGEN dataset the initial model was trained on; observations
        are appended to it so retraining never forgets the synthetic
        coverage.
    algorithm, train_params:
        Passed to :meth:`RuntimeModel.train` on every retrain.
    observation_weight:
        How many copies of each observation enter the training set.
        Observed production plans are few against thousands of synthetic
        points; replicating them shifts the model where it matters. The
        default (3) is mild.
    seed:
        Training seed.
    """

    def __init__(
        self,
        schema: FeatureSchema,
        base_dataset: Optional[TrainingDataset] = None,
        algorithm: str = "random_forest",
        observation_weight: int = 3,
        seed: int = 0,
        **train_params,
    ):
        if observation_weight < 1:
            raise ModelError(
                f"observation_weight must be >= 1, got {observation_weight}"
            )
        if base_dataset is None:
            # Pure-observation mode: a deployed daemon usually has only
            # the pickled model, not the TDGEN logs it was trained from.
            base_dataset = TrainingDataset(
                np.zeros((0, schema.n_features)), np.zeros(0), []
            )
        if base_dataset.n_features != schema.n_features:
            raise ModelError(
                f"base dataset has {base_dataset.n_features} features, "
                f"schema expects {schema.n_features}"
            )
        self.schema = schema
        self.base_dataset = base_dataset
        self.algorithm = algorithm
        self.observation_weight = observation_weight
        self.seed = seed
        self.train_params = train_params
        self._rows: List[np.ndarray] = []
        self._labels: List[float] = []
        self._meta: List[Dict] = []
        self.observations_since_retrain = 0
        self.n_retrains = 0
        self.rejected = 0

    # ------------------------------------------------------------------
    @property
    def n_observations(self) -> int:
        return len(self._labels)

    def observe(self, xplan: ExecutionPlan, runtime_s: float, stats=None) -> bool:
        """Record one executed plan and its measured runtime.

        Returns ``True`` if the observation was accepted. Two classes of
        outcome are rejected rather than learned from, with the
        ``ml.feedback.rejected`` counter (and a per-reason variant)
        bumped: non-finite or negative runtimes (a crashed or unmeasured
        execution is not a label), and plans whose ``stats.degraded``
        flag is set — a degraded plan came from the fallback chain, not
        the optimizer's real choice, so its runtime would teach the
        model that the *fallback's* picks are what good plans cost.
        """
        reason = None
        if runtime_s < 0 or not np.isfinite(runtime_s):
            reason = "nonfinite"
        elif stats is not None and getattr(stats, "degraded", False):
            reason = "degraded"
        if reason is not None:
            self.rejected += 1
            tracer = current_tracer()
            tracer.count("ml.feedback.rejected")
            tracer.count(f"ml.feedback.rejected.{reason}")
            return False
        self._rows.append(self.schema.encode_execution_plan(xplan))
        self._labels.append(float(runtime_s))
        self._meta.append(
            {
                "source": "observation",
                "plan": xplan.plan.name,
                "platforms": tuple(sorted(set(xplan.assignment.values()))),
            }
        )
        self.observations_since_retrain += 1
        current_tracer().count("ml.feedback.accepted")
        return True

    def observations_dataset(self) -> TrainingDataset:
        """The accumulated observations as a dataset (unweighted)."""
        if not self._rows:
            return TrainingDataset(
                np.zeros((0, self.schema.n_features)), np.zeros(0), []
            )
        return TrainingDataset(
            np.vstack(self._rows), np.asarray(self._labels), list(self._meta)
        )

    def training_dataset(self) -> TrainingDataset:
        """Base dataset plus (weighted) observations."""
        combined = self.base_dataset
        observations = self.observations_dataset()
        for _ in range(self.observation_weight):
            if len(observations):
                combined = combined.extend(observations)
        return combined

    def retrain(self, dataset: Optional[TrainingDataset] = None) -> RuntimeModel:
        """Train a fresh model on everything seen so far.

        ``dataset`` lets a concurrent caller snapshot
        :meth:`training_dataset` under its own lock and run the (slow)
        fit outside it.
        """
        model = RuntimeModel.train(
            dataset if dataset is not None else self.training_dataset(),
            self.algorithm,
            seed=self.seed,
            **self.train_params,
        )
        self.observations_since_retrain = 0
        self.n_retrains += 1
        return model
