"""A CART-style regression tree on NumPy arrays.

The tree is stored in flat arrays (feature, threshold, children, value),
which makes prediction a fully vectorized loop over tree levels — crucial
here because the optimizer's prune operation predicts thousands of plan
vectors per call and Python-level recursion would dominate.

Splits minimize the within-node sum of squared errors, found by scanning
sorted feature columns with prefix sums (the classical O(n log n) per
feature CART search).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ModelError, NotFittedError


class DecisionTreeRegressor:
    """Regression tree with variance-reduction splits.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root = depth 0).
    min_samples_split:
        Do not split nodes with fewer samples.
    min_samples_leaf:
        Each child must keep at least this many samples.
    max_features:
        Number of candidate features per split: an int, ``"sqrt"``, or
        ``None`` for all features (random forests pass ``"sqrt"``).
    rng:
        NumPy random generator for feature subsampling.
    """

    def __init__(
        self,
        max_depth: int = 16,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        max_features=None,
        rng: Optional[np.random.Generator] = None,
    ):
        if max_depth < 1:
            raise ModelError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_leaf < 1 or min_samples_split < 2:
            raise ModelError("min_samples_leaf >= 1 and min_samples_split >= 2 required")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng if rng is not None else np.random.default_rng()
        self._fitted = False

    # ------------------------------------------------------------------
    def _n_candidate_features(self, n_features: int) -> int:
        if self.max_features is None:
            return n_features
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        n = int(self.max_features)
        if n < 1:
            raise ModelError(f"max_features must be >= 1, got {n}")
        return min(n, n_features)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        """Grow the tree on a training matrix and targets."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2:
            raise ModelError(f"X must be 2-D, got shape {X.shape}")
        if y.shape != (X.shape[0],):
            raise ModelError(f"y shape {y.shape} does not match X rows {X.shape[0]}")
        if X.shape[0] == 0:
            raise ModelError("cannot fit a tree on zero samples")

        n_samples, n_features = X.shape
        m = self._n_candidate_features(n_features)

        features = [-1]
        thresholds = [0.0]
        lefts = [-1]
        rights = [-1]
        values = [float(y.mean())]

        # (node_id, row_indices, depth) work stack.
        stack = [(0, np.arange(n_samples), 0)]
        while stack:
            node, rows, depth = stack.pop()
            y_node = y[rows]
            values[node] = float(y_node.mean())
            if (
                depth >= self.max_depth
                or rows.size < self.min_samples_split
                or np.all(y_node == y_node[0])
            ):
                continue
            candidates = (
                np.arange(n_features)
                if m == n_features
                else self.rng.choice(n_features, size=m, replace=False)
            )
            feat, thr = self._best_split(X, y_node, rows, candidates)
            if feat < 0:
                continue
            go_left = X[rows, feat] <= thr
            left_rows = rows[go_left]
            right_rows = rows[~go_left]
            if (
                left_rows.size < self.min_samples_leaf
                or right_rows.size < self.min_samples_leaf
            ):
                continue
            left_id = len(features)
            right_id = left_id + 1
            for _ in range(2):
                features.append(-1)
                thresholds.append(0.0)
                lefts.append(-1)
                rights.append(-1)
                values.append(0.0)
            features[node] = int(feat)
            thresholds[node] = float(thr)
            lefts[node] = left_id
            rights[node] = right_id
            stack.append((left_id, left_rows, depth + 1))
            stack.append((right_id, right_rows, depth + 1))

        self.feature_ = np.asarray(features, dtype=np.int64)
        self.threshold_ = np.asarray(thresholds, dtype=np.float64)
        self.left_ = np.asarray(lefts, dtype=np.int64)
        self.right_ = np.asarray(rights, dtype=np.int64)
        self.value_ = np.asarray(values, dtype=np.float64)
        self.n_features_ = n_features
        self._fitted = True
        return self

    def _best_split(self, X, y_node, rows, candidates):
        """Best (feature, threshold) by SSE reduction over candidate features.

        All candidate columns are processed in one batch: a single
        ``argsort(axis=0)`` over the node's candidate matrix, batched
        prefix sums, and one vectorized gain computation. This keeps the
        per-node Python overhead constant regardless of ``max_features``.
        """
        n = rows.size
        min_leaf = self.min_samples_leaf
        if n < 2 * min_leaf:
            return -1, 0.0
        Xn = X[np.ix_(rows, candidates)]
        order = np.argsort(Xn, axis=0, kind="stable")
        xs = np.take_along_axis(Xn, order, axis=0)
        ys = y_node[order]

        total_sum = y_node.sum()
        total_sse = float(np.dot(y_node, y_node) - total_sum * total_sum / n)
        csum = np.cumsum(ys, axis=0)
        csq = np.cumsum(ys * ys, axis=0)

        # Split after row i keeps rows [0..i] on the left.
        idx = np.arange(min_leaf - 1, n - min_leaf)
        if idx.size == 0:
            return -1, 0.0
        valid = xs[idx] < xs[idx + 1]
        if not valid.any():
            return -1, 0.0
        n_left = (idx + 1.0)[:, None]
        n_right = n - n_left
        sum_left = csum[idx]
        sq_left = csq[idx]
        sse_left = sq_left - sum_left * sum_left / n_left
        sum_right = total_sum - sum_left
        sq_right = csq[-1] - sq_left
        sse_right = sq_right - sum_right * sum_right / n_right
        gains = np.where(valid, total_sse - (sse_left + sse_right), -np.inf)

        flat = int(np.argmax(gains))
        pos, col = divmod(flat, gains.shape[1])
        if not np.isfinite(gains[pos, col]) or gains[pos, col] <= 1e-12:
            return -1, 0.0
        i = idx[pos]
        threshold = float((xs[i, col] + xs[i + 1, col]) / 2.0)
        return int(candidates[col]), threshold

    # ------------------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Vectorized prediction: all rows descend the tree level by level."""
        if not self._fitted:
            raise NotFittedError("DecisionTreeRegressor.predict before fit")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ModelError(
                f"X must be 2-D with {self.n_features_} columns, got {X.shape}"
            )
        node = np.zeros(X.shape[0], dtype=np.int64)
        active = self.feature_[node] >= 0
        while active.any():
            rows = np.flatnonzero(active)
            cur = node[rows]
            feat = self.feature_[cur]
            go_left = X[rows, feat] <= self.threshold_[cur]
            node[rows] = np.where(go_left, self.left_[cur], self.right_[cur])
            active = self.feature_[node] >= 0
        return self.value_[node]

    @property
    def n_nodes(self) -> int:
        if not self._fitted:
            raise NotFittedError("tree is not fitted")
        return int(self.feature_.size)

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        if not self._fitted:
            raise NotFittedError("tree is not fitted")
        depths = np.zeros(self.n_nodes, dtype=np.int64)
        for node in range(self.n_nodes):
            if self.feature_[node] >= 0:
                depths[self.left_[node]] = depths[node] + 1
                depths[self.right_[node]] = depths[node] + 1
        return int(depths.max(initial=0))
