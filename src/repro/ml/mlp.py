"""A small feed-forward neural network regressor (NumPy + Adam).

The third model family the paper evaluated (§VII-A). Two hidden ReLU
layers trained with Adam on standardized inputs; intentionally modest —
the paper's finding is precisely that a plain neural net is *less* robust
than a random forest on this feature encoding, and the model-comparison
benchmark reproduces that.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ModelError, NotFittedError


class MLPRegressor:
    """Fully-connected ReLU network trained with minibatch Adam.

    Parameters
    ----------
    hidden:
        Hidden layer widths.
    epochs, batch_size, learning_rate:
        Optimization knobs.
    l2:
        Weight decay.
    seed:
        Seed for initialization and shuffling.
    """

    def __init__(
        self,
        hidden: Sequence[int] = (64, 32),
        epochs: int = 200,
        batch_size: int = 64,
        learning_rate: float = 1e-3,
        l2: float = 1e-5,
        seed: Optional[int] = None,
    ):
        if any(h < 1 for h in hidden):
            raise ModelError(f"hidden widths must be >= 1, got {hidden}")
        self.hidden = tuple(hidden)
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.l2 = l2
        self.seed = seed
        self._fitted = False

    # ------------------------------------------------------------------
    def _init_params(self, n_in: int, rng: np.random.Generator):
        sizes = (n_in,) + self.hidden + (1,)
        self.weights_ = []
        self.biases_ = []
        for a, b in zip(sizes, sizes[1:]):
            # He initialization for ReLU layers.
            self.weights_.append(rng.normal(0.0, np.sqrt(2.0 / a), size=(a, b)))
            self.biases_.append(np.zeros(b))

    def _forward(self, Z: np.ndarray) -> Tuple[np.ndarray, list]:
        activations = [Z]
        h = Z
        last = len(self.weights_) - 1
        for i, (w, b) in enumerate(zip(self.weights_, self.biases_)):
            h = h @ w + b
            if i < last:
                h = np.maximum(h, 0.0)
            activations.append(h)
        return h[:, 0], activations

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.shape != (X.shape[0],):
            raise ModelError(
                f"incompatible shapes X={X.shape}, y={y.shape} for MLP fit"
            )
        rng = np.random.default_rng(self.seed)
        self.x_mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.x_scale_ = scale
        self.y_mean_ = float(y.mean())
        self.y_scale_ = float(y.std()) or 1.0
        Z = (X - self.x_mean_) / self.x_scale_
        t = (y - self.y_mean_) / self.y_scale_

        n = Z.shape[0]
        self._init_params(Z.shape[1], rng)
        m = [np.zeros_like(w) for w in self.weights_]
        v = [np.zeros_like(w) for w in self.weights_]
        mb = [np.zeros_like(b) for b in self.biases_]
        vb = [np.zeros_like(b) for b in self.biases_]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        batch = min(self.batch_size, n)
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, batch):
                rows = order[start : start + batch]
                pred, acts = self._forward(Z[rows])
                err = (pred - t[rows])[:, None]  # dL/dout, L = mse/2
                grad = err / rows.size
                step += 1
                # Backprop through the stack.
                for layer in reversed(range(len(self.weights_))):
                    a_in = acts[layer]
                    gw = a_in.T @ grad + self.l2 * self.weights_[layer]
                    gb = grad.sum(axis=0)
                    if layer > 0:
                        grad = grad @ self.weights_[layer].T
                        grad = grad * (acts[layer] > 0.0)
                    m[layer] = beta1 * m[layer] + (1 - beta1) * gw
                    v[layer] = beta2 * v[layer] + (1 - beta2) * gw * gw
                    mb[layer] = beta1 * mb[layer] + (1 - beta1) * gb
                    vb[layer] = beta2 * vb[layer] + (1 - beta2) * gb * gb
                    mhat = m[layer] / (1 - beta1 ** step)
                    vhat = v[layer] / (1 - beta2 ** step)
                    mbh = mb[layer] / (1 - beta1 ** step)
                    vbh = vb[layer] / (1 - beta2 ** step)
                    self.weights_[layer] -= (
                        self.learning_rate * mhat / (np.sqrt(vhat) + eps)
                    )
                    self.biases_[layer] -= (
                        self.learning_rate * mbh / (np.sqrt(vbh) + eps)
                    )
        self._fitted = True
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise NotFittedError("MLPRegressor.predict before fit")
        X = np.asarray(X, dtype=np.float64)
        Z = (X - self.x_mean_) / self.x_scale_
        pred, _ = self._forward(Z)
        return pred * self.y_scale_ + self.y_mean_
