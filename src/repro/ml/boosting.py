"""Gradient-boosted regression trees.

A fourth model family beyond the paper's three (§VII-A tried linear
models, random forests and neural nets): boosting often edges out bagging
on tabular features, so the model-family ablation benchmark includes it.
Implementation: least-squares gradient boosting — each stage fits a
shallow tree to the current residuals and contributes ``learning_rate``
of its prediction.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ModelError, NotFittedError
from repro.ml.tree import DecisionTreeRegressor


class GradientBoostingRegressor:
    """Least-squares gradient boosting over shallow CART trees.

    Parameters
    ----------
    n_estimators:
        Number of boosting stages.
    learning_rate:
        Shrinkage per stage.
    max_depth:
        Depth of each stage's tree (shallow trees regularize).
    subsample:
        Fraction of rows sampled (without replacement) per stage —
        stochastic gradient boosting.
    seed:
        Seed for subsampling.
    """

    def __init__(
        self,
        n_estimators: int = 150,
        learning_rate: float = 0.08,
        max_depth: int = 4,
        min_samples_leaf: int = 3,
        subsample: float = 0.8,
        seed: Optional[int] = None,
    ):
        if n_estimators < 1:
            raise ModelError(f"n_estimators must be >= 1, got {n_estimators}")
        if not 0.0 < learning_rate <= 1.0:
            raise ModelError(f"learning_rate must be in (0, 1], got {learning_rate}")
        if not 0.0 < subsample <= 1.0:
            raise ModelError(f"subsample must be in (0, 1], got {subsample}")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.seed = seed
        self.stages_ = []
        self.base_ = 0.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.shape != (X.shape[0],):
            raise ModelError(
                f"incompatible shapes X={X.shape}, y={y.shape} for boosting fit"
            )
        rng = np.random.default_rng(self.seed)
        n = X.shape[0]
        self.base_ = float(y.mean())
        prediction = np.full(n, self.base_)
        self.stages_ = []
        sample_size = max(1, int(round(n * self.subsample)))
        for _ in range(self.n_estimators):
            residual = y - prediction
            rows = (
                rng.choice(n, size=sample_size, replace=False)
                if sample_size < n
                else np.arange(n)
            )
            stage = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                min_samples_split=2 * self.min_samples_leaf,
                rng=rng,
            )
            stage.fit(X[rows], residual[rows])
            prediction += self.learning_rate * stage.predict(X)
            self.stages_.append(stage)
        self.n_features_ = X.shape[1]
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self.stages_:
            raise NotFittedError("GradientBoostingRegressor.predict before fit")
        X = np.asarray(X, dtype=np.float64)
        out = np.full(X.shape[0], self.base_)
        for stage in self.stages_:
            out += self.learning_rate * stage.predict(X)
        return out

    def staged_score(self, X: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Training-curve utility: RMSE after each boosting stage."""
        if not self.stages_:
            raise NotFittedError("model is not fitted")
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        out = np.full(X.shape[0], self.base_)
        scores = np.empty(len(self.stages_))
        for i, stage in enumerate(self.stages_):
            out += self.learning_rate * stage.predict(X)
            scores[i] = float(np.sqrt(np.mean((out - y) ** 2)))
        return scores
