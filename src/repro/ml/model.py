"""The runtime model: what the optimizer actually calls.

:class:`RuntimeModel` wraps one of the regressors behind a uniform
interface: ``predict(feature_matrix) -> runtimes_in_seconds``. It fits in
log space (runtimes span milliseconds to hours), guarantees non-negative
predictions, records holdout metrics at training time, and pickles to disk
so benches can reuse one trained model.

:class:`TrainingDataset` is the (X, y) container produced by TDGEN.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import ModelError, NotFittedError
from repro.obs import current_tracer
from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.linear import RidgeRegression
from repro.ml.metrics import q_error, rmse, spearman
from repro.ml.mlp import MLPRegressor

#: Model families: the three the paper evaluated (§VII-A) plus gradient
#: boosting ("one can plug any regression algorithm").
ALGORITHMS = ("random_forest", "linear", "mlp", "boosting")


@dataclass
class TrainingDataset:
    """Plan vectors with runtime labels, as produced by TDGEN (§VI).

    ``meta`` carries one dict per row (e.g. whether the label was executed
    or interpolated, the plan shape, the platforms used).
    """

    X: np.ndarray
    y: np.ndarray
    meta: List[Dict] = field(default_factory=list)

    def __post_init__(self):
        self.X = np.asarray(self.X, dtype=np.float64)
        self.y = np.asarray(self.y, dtype=np.float64)
        if self.X.ndim != 2 or self.y.shape != (self.X.shape[0],):
            raise ModelError(
                f"incompatible dataset shapes X={self.X.shape}, y={self.y.shape}"
            )
        if self.meta and len(self.meta) != len(self.y):
            raise ModelError(
                f"metadata length {len(self.meta)} does not match {len(self.y)} rows"
            )

    def __len__(self) -> int:
        return int(self.y.size)

    @property
    def n_features(self) -> int:
        return int(self.X.shape[1])

    def split(
        self, test_fraction: float = 0.2, seed: int = 0
    ) -> Tuple["TrainingDataset", "TrainingDataset"]:
        """Shuffled train/test split."""
        if not 0.0 < test_fraction < 1.0:
            raise ModelError(f"test_fraction must be in (0, 1), got {test_fraction}")
        n = len(self)
        rng = np.random.default_rng(seed)
        order = rng.permutation(n)
        n_test = max(1, int(round(n * test_fraction)))
        test_rows = order[:n_test]
        train_rows = order[n_test:]
        if train_rows.size == 0:
            raise ModelError("split left no training rows")
        return self.take(train_rows), self.take(test_rows)

    def take(self, rows: np.ndarray) -> "TrainingDataset":
        meta = [self.meta[int(i)] for i in rows] if self.meta else []
        return TrainingDataset(self.X[rows], self.y[rows], meta)

    def extend(self, other: "TrainingDataset") -> "TrainingDataset":
        """A new dataset with the rows of both."""
        if other.n_features != self.n_features:
            raise ModelError(
                f"feature mismatch: {self.n_features} vs {other.n_features}"
            )
        meta = (self.meta or [{} for _ in range(len(self))]) + (
            other.meta or [{} for _ in range(len(other))]
        )
        return TrainingDataset(
            np.vstack([self.X, other.X]), np.concatenate([self.y, other.y]), meta
        )

    def save(self, path) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("wb") as f:
            pickle.dump({"X": self.X, "y": self.y, "meta": self.meta}, f)

    @classmethod
    def load(cls, path) -> "TrainingDataset":
        with Path(path).open("rb") as f:
            blob = pickle.load(f)
        return cls(blob["X"], blob["y"], blob.get("meta", []))


def _make_regressor(algorithm: str, seed: Optional[int], params: Dict):
    if algorithm == "random_forest":
        defaults = dict(n_estimators=40, max_depth=16, seed=seed)
        defaults.update(params)
        return RandomForestRegressor(**defaults)
    if algorithm == "linear":
        defaults = dict(alpha=1.0)
        defaults.update(params)
        return RidgeRegression(**defaults)
    if algorithm == "mlp":
        defaults = dict(hidden=(64, 32), epochs=150, seed=seed)
        defaults.update(params)
        return MLPRegressor(**defaults)
    if algorithm == "boosting":
        defaults = dict(n_estimators=150, max_depth=4, seed=seed)
        defaults.update(params)
        return GradientBoostingRegressor(**defaults)
    raise ModelError(f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}")


class RuntimeModel:
    """A trained runtime predictor over plan vectors.

    Use :meth:`train` to build one from a :class:`TrainingDataset`; the
    returned model exposes ``predict`` (seconds, non-negative, batched)
    and its holdout ``metrics``.
    """

    def __init__(self, regressor, algorithm: str, n_features: int):
        self._regressor = regressor
        self.algorithm = algorithm
        self.n_features = n_features
        self.metrics: Dict[str, float] = {}
        self._fitted = False

    # ------------------------------------------------------------------
    @classmethod
    def train(
        cls,
        dataset: TrainingDataset,
        algorithm: str = "random_forest",
        seed: int = 0,
        test_fraction: float = 0.15,
        **params,
    ) -> "RuntimeModel":
        """Fit a runtime model and record holdout metrics.

        Targets are transformed with ``log1p`` before fitting — runtimes
        span several orders of magnitude and squared error in log space
        matches the "order the plans correctly" objective far better.
        """
        if len(dataset) < 5:
            raise ModelError(
                f"need at least 5 training rows, got {len(dataset)}"
            )
        train, test = dataset.split(test_fraction=test_fraction, seed=seed)
        regressor = _make_regressor(algorithm, seed, params)
        regressor.fit(train.X, np.log1p(np.maximum(train.y, 0.0)))
        model = cls(regressor, algorithm, dataset.n_features)
        model._fitted = True
        pred = model.predict(test.X)
        model.metrics = {
            "rmse_log": rmse(np.log1p(test.y), np.log1p(pred)),
            "spearman": spearman(test.y, pred),
            "q50": q_error(test.y, pred, 0.5),
            "q95": q_error(test.y, pred, 0.95),
            "n_train": float(len(train)),
            "n_test": float(len(test)),
        }
        return model

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predicted runtimes in seconds for a matrix of plan vectors."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        if X.shape[1] != self.n_features:
            raise ModelError(
                f"expected {self.n_features} features, got {X.shape[1]}"
            )
        return self.predict_matrix(X)

    def predict_matrix(self, X: np.ndarray) -> np.ndarray:
        """:meth:`predict` minus input coercion, for trusted callers.

        ``X`` must already be a 2-D float64 matrix with ``n_features``
        columns — exactly what the plan enumeration produces, which calls
        this once per prune. Output values and tracing semantics are
        identical to :meth:`predict`.
        """
        if not self._fitted:
            raise NotFittedError("RuntimeModel.predict before train/load")
        tracer = current_tracer()
        if tracer.enabled:
            with tracer.span(
                "model.predict", rows=X.shape[0], algorithm=self.algorithm
            ):
                log_pred = self._regressor.predict(X)
            tracer.count("model.rows_predicted", X.shape[0])
            tracer.count("model.calls")
        else:
            log_pred = self._regressor.predict(X)
        # The regressor output is a fresh array; undo the log1p target
        # transform in place instead of allocating two temporaries.
        out = np.asarray(log_pred, dtype=np.float64)
        np.expm1(out, out=out)
        np.maximum(out, 0.0, out=out)
        return out

    def predict_one(self, x: np.ndarray) -> float:
        """Predicted runtime for a single plan vector."""
        return float(self.predict(np.asarray(x)[None, :])[0])

    # ------------------------------------------------------------------
    @property
    def supports_dist(self) -> bool:
        """Whether the wrapped regressor offers per-ensemble uncertainty."""
        return hasattr(self._regressor, "predict_dist")

    def predict_dist(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Per-row ``(mean, std)`` of the predicted runtime, in seconds.

        The mean is **bit-identical** to :meth:`predict` on the same rows
        (same traversal, same ``expm1`` back-transform), so callers may
        use this as a drop-in replacement that additionally surfaces
        uncertainty. The regressor's ensemble spread lives in log space
        (targets are ``log1p``-transformed at fit time); it is mapped to
        seconds with the first-order delta method,
        ``std_seconds = exp(mean_log) * std_log`` — the local slope of
        the inverse transform. The relative spread ``std/mean`` is
        therefore ≈ the log-space std, which is the convention every
        uncertainty consumer (variance guard, template selector, risk
        ranking) shares.

        A regressor without ``predict_dist`` (linear, MLP, boosting —
        deterministic single predictors with no ensemble to disagree)
        honestly reports zero std rather than inventing a number.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        if X.shape[1] != self.n_features:
            raise ModelError(
                f"expected {self.n_features} features, got {X.shape[1]}"
            )
        if not self._fitted:
            raise NotFittedError("RuntimeModel.predict_dist before train/load")
        if not self.supports_dist:
            out = self.predict_matrix(X)
            return out, np.zeros_like(out)
        log_mean, log_std = self._regressor.predict_dist(X)
        mean = np.asarray(log_mean, dtype=np.float64).copy()
        # d/dx expm1(x) = exp(x): scale the log-space spread by the local
        # slope of the back-transform, *before* mean is overwritten.
        std = np.exp(mean)
        std *= np.asarray(log_std, dtype=np.float64)
        np.expm1(mean, out=mean)
        np.maximum(mean, 0.0, out=mean)
        np.abs(std, out=std)
        return mean, std

    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Pickle the model (regressor, metadata, metrics) to disk."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("wb") as f:
            pickle.dump(
                {
                    "regressor": self._regressor,
                    "algorithm": self.algorithm,
                    "n_features": self.n_features,
                    "metrics": self.metrics,
                },
                f,
            )

    @classmethod
    def load(cls, path) -> "RuntimeModel":
        """Unpickle a saved model.

        Any load failure — missing file, truncated/corrupt pickle, a blob
        missing required keys — surfaces as :class:`ModelError`, the
        exception taxonomy the resilience layer treats as "primary model
        unavailable" (see
        :class:`repro.resilience.fallback.FallbackRuntimeModel`).
        """
        try:
            with Path(path).open("rb") as f:
                blob = pickle.load(f)
            model = cls(blob["regressor"], blob["algorithm"], blob["n_features"])
        except ModelError:
            raise
        except Exception as exc:
            raise ModelError(f"cannot load runtime model from {path}: {exc}") from exc
        model.metrics = blob.get("metrics", {})
        model._fitted = True
        return model

    @classmethod
    def loader(cls, path):
        """A zero-argument lazy loader for the model at ``path``.

        Hand this to :class:`repro.resilience.fallback.FallbackRuntimeModel`
        as the primary: the file is only opened on first ``predict``, and a
        missing/corrupt file degrades to the fallback chain instead of
        failing optimizer construction.
        """
        return lambda: cls.load(path)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        spear = self.metrics.get("spearman")
        extra = f", spearman={spear:.3f}" if spear is not None else ""
        return f"RuntimeModel({self.algorithm}, n_features={self.n_features}{extra})"
