"""Windowed q-error drift detection over executed plans.

The paper trains its runtime model once from TDGEN logs (§VII-A) but
notes Robopt "is able to find such cases by observing patterns in the
execution logs". :class:`DriftMonitor` is the observer half of that
loop: it keeps a sliding window of ``(predicted, observed)`` runtime
pairs from real (simulated) executions, re-computes the windowed median
q-error after every observation, and classifies the model's health as
:class:`DriftStatus` ``OK`` / ``WARN`` / ``DRIFTED``. The retrain half
lives in :mod:`repro.serve.feedback`, which watches for ``DRIFTED`` and
refits off the critical path.

Q-error (``max(pred/obs, obs/pred)``, see :mod:`repro.ml.metrics`) is
the same statistic the training pipeline reports as holdout quality, so
"drifted" is directly comparable to the model's own birth certificate.
"""

from __future__ import annotations

import enum
import threading
from collections import deque
from typing import Deque, Dict, Tuple

import numpy as np

from repro.exceptions import ModelError
from repro.ml.metrics import q_error


class DriftStatus(enum.Enum):
    """Model health verdict from the sliding q-error window."""

    OK = "ok"
    WARN = "warn"
    DRIFTED = "drifted"


class DriftMonitor:
    """Sliding-window q-error monitor over (predicted, observed) pairs.

    Parameters
    ----------
    window:
        Number of most-recent observations the q-error is computed over.
    min_samples:
        Observations required before any verdict other than ``OK`` is
        issued — a two-sample window saying "drifted" is noise.
    warn_threshold, drift_threshold:
        Windowed median q-error levels for ``WARN`` and ``DRIFTED``.
        A perfectly calibrated model sits at 1.0; the defaults flag a
        sustained 2× (warn) / 4× (drift) median misprediction.
    quantile:
        Which q-error quantile the verdict uses (default: the median,
        matching the ``q50`` holdout metric recorded at training time).

    Thread safety: ``observe``/``status``/``reset`` take an internal
    lock, so the serving hot path and a background retrainer may share
    one monitor.
    """

    def __init__(
        self,
        window: int = 64,
        min_samples: int = 16,
        warn_threshold: float = 2.0,
        drift_threshold: float = 4.0,
        quantile: float = 0.5,
    ):
        if window < 1:
            raise ModelError(f"window must be >= 1, got {window}")
        if min_samples < 1:
            raise ModelError(f"min_samples must be >= 1, got {min_samples}")
        if not warn_threshold >= 1.0:
            raise ModelError(
                f"warn_threshold must be >= 1.0, got {warn_threshold}"
            )
        if not drift_threshold >= warn_threshold:
            raise ModelError(
                "drift_threshold must be >= warn_threshold, got "
                f"{drift_threshold} < {warn_threshold}"
            )
        if not 0.0 <= quantile <= 1.0:
            raise ModelError(f"quantile must be in [0, 1], got {quantile}")
        self.window = int(window)
        self.min_samples = int(min_samples)
        self.warn_threshold = float(warn_threshold)
        self.drift_threshold = float(drift_threshold)
        self.quantile = float(quantile)
        self._pairs: Deque[Tuple[float, float]] = deque(maxlen=self.window)
        self._total = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def observe(self, predicted: float, observed: float) -> DriftStatus:
        """Record one executed plan and return the updated verdict.

        Non-finite or negative pairs are ignored (the feedback loop
        rejects them upstream too, but a monitor must not be corruptible
        by a single bad sample).
        """
        p = float(predicted)
        o = float(observed)
        if not (np.isfinite(p) and np.isfinite(o)) or p < 0.0 or o < 0.0:
            return self.status()
        with self._lock:
            self._pairs.append((p, o))
            self._total += 1
        return self.status()

    def q_error(self) -> float:
        """Windowed q-error at ``quantile``; NaN before any observation."""
        with self._lock:
            if not self._pairs:
                return float("nan")
            pairs = list(self._pairs)
        pred = np.array([p for p, _ in pairs])
        obs = np.array([o for _, o in pairs])
        return q_error(obs, pred, self.quantile)

    def status(self) -> DriftStatus:
        """Current verdict from the windowed q-error."""
        with self._lock:
            n = len(self._pairs)
        if n < self.min_samples:
            return DriftStatus.OK
        q = self.q_error()
        if q >= self.drift_threshold:
            return DriftStatus.DRIFTED
        if q >= self.warn_threshold:
            return DriftStatus.WARN
        return DriftStatus.OK

    def reset(self) -> None:
        """Drop the window — called after a retrain swaps a new model in,
        so stale pre-retrain errors can't re-trigger drift."""
        with self._lock:
            self._pairs.clear()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._pairs)

    @property
    def total_observations(self) -> int:
        """Lifetime observation count (unaffected by ``reset``)."""
        with self._lock:
            return self._total

    def snapshot(self) -> Dict[str, object]:
        """Stats-frame payload: window fill, q-error, verdict."""
        q = self.q_error()
        return {
            "window": float(len(self)),
            "observations": float(self.total_observations),
            "q_error": q if np.isfinite(q) else float("nan"),
            "status": self.status().value,
        }
