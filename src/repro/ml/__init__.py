"""Runtime-prediction models, implemented from scratch on NumPy.

The paper tried linear regression, random forests and neural networks and
found random forests most robust (§VII-A); all three families are provided
here. :class:`~repro.ml.model.RuntimeModel` is the wrapper the optimizer
consumes — it handles the log-space target transform, train/validation
splitting, persistence and batch prediction over plan-vector matrices.
"""

from repro.ml.tree import DecisionTreeRegressor
from repro.ml.forest import RandomForestRegressor
from repro.ml.boosting import GradientBoostingRegressor
from repro.ml.linear import LinearRegression, RidgeRegression
from repro.ml.mlp import MLPRegressor
from repro.ml.model import RuntimeModel, TrainingDataset
from repro.ml.feedback import FeedbackLoop
from repro.ml.drift import DriftMonitor, DriftStatus
from repro.ml.metrics import mae, pearson, q_error, rmse, spearman

__all__ = [
    "DecisionTreeRegressor",
    "RandomForestRegressor",
    "GradientBoostingRegressor",
    "LinearRegression",
    "RidgeRegression",
    "MLPRegressor",
    "RuntimeModel",
    "TrainingDataset",
    "FeedbackLoop",
    "DriftMonitor",
    "DriftStatus",
    "rmse",
    "mae",
    "q_error",
    "pearson",
    "spearman",
]
