"""Regression and ranking metrics for runtime models.

The optimizer only needs the model to *order* plans correctly (§IV-A: the
features must let the model "accurately order the plan vectors according
to their predicted runtime"), so rank metrics (Spearman) matter as much as
absolute ones (RMSE, q-error).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ModelError


def _check(y_true, y_pred):
    y_true = np.asarray(y_true, dtype=np.float64)
    y_pred = np.asarray(y_pred, dtype=np.float64)
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise ModelError(
            f"metric inputs must be equal-length 1-D arrays, got "
            f"{y_true.shape} and {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ModelError("metric inputs are empty")
    return y_true, y_pred


def rmse(y_true, y_pred) -> float:
    """Root mean squared error."""
    y_true, y_pred = _check(y_true, y_pred)
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


def mae(y_true, y_pred) -> float:
    """Mean absolute error."""
    y_true, y_pred = _check(y_true, y_pred)
    return float(np.mean(np.abs(y_true - y_pred)))


def q_error(y_true, y_pred, quantile: float = 0.5) -> float:
    """Quantile of the multiplicative error max(pred/true, true/pred).

    Inputs must be positive (runtimes are); a tiny floor guards zeros.
    """
    y_true, y_pred = _check(y_true, y_pred)
    floor = 1e-9
    a = np.maximum(y_true, floor)
    b = np.maximum(y_pred, floor)
    q = np.maximum(a / b, b / a)
    return float(np.quantile(q, quantile))


def pearson(x, y) -> float:
    """Pearson correlation coefficient."""
    x, y = _check(x, y)
    sx = x.std()
    sy = y.std()
    if sx == 0.0 or sy == 0.0:
        return 0.0
    return float(np.mean((x - x.mean()) * (y - y.mean())) / (sx * sy))


def _ranks(values: np.ndarray) -> np.ndarray:
    """Average ranks (ties share their mean rank), 1-based."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(values.size, dtype=np.float64)
    ranks[order] = np.arange(1, values.size + 1, dtype=np.float64)
    # Average the ranks of tied values.
    sorted_vals = values[order]
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = ranks[order[i : j + 1]].mean()
        i = j + 1
    return ranks


def spearman(x, y) -> float:
    """Spearman rank correlation — how well the model orders plans."""
    x, y = _check(x, y)
    return pearson(_ranks(x), _ranks(y))
