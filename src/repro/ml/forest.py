"""Random forest regression (the paper's model of choice, §VII-A)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ModelError, NotFittedError
from repro.ml.tree import DecisionTreeRegressor


class RandomForestRegressor:
    """Bagged regression trees with per-split feature subsampling.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_split, min_samples_leaf:
        Passed to every :class:`DecisionTreeRegressor`.
    max_features:
        Candidate features per split; defaults to ``"sqrt"``.
    bootstrap:
        Sample training rows with replacement per tree (classic bagging).
    max_samples:
        Fraction of the training rows each tree draws (with replacement);
        smaller values trade a little accuracy for much faster fits.
    seed:
        Seed of the forest's random generator.
    """

    def __init__(
        self,
        n_estimators: int = 40,
        max_depth: int = 16,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        max_features="sqrt",
        bootstrap: bool = True,
        max_samples: float = 1.0,
        seed: Optional[int] = None,
    ):
        if n_estimators < 1:
            raise ModelError(f"n_estimators must be >= 1, got {n_estimators}")
        if not 0.0 < max_samples <= 1.0:
            raise ModelError(f"max_samples must be in (0, 1], got {max_samples}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.max_samples = max_samples
        self.seed = seed
        self.trees_ = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        """Fit all trees on bootstrap resamples of ``(X, y)``."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.shape != (X.shape[0],):
            raise ModelError(
                f"incompatible shapes X={X.shape}, y={y.shape} for forest fit"
            )
        rng = np.random.default_rng(self.seed)
        n = X.shape[0]
        self.trees_ = []
        for _ in range(self.n_estimators):
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                rng=rng,
            )
            if self.bootstrap:
                rows = rng.integers(0, n, size=max(1, int(round(n * self.max_samples))))
            else:
                rows = np.arange(n)
            tree.fit(X[rows], y[rows])
            self.trees_.append(tree)
        self.n_features_ = X.shape[1]
        self._pack()
        return self

    def _pack(self) -> None:
        """Concatenate all trees into flat arrays for joint traversal.

        ``predict`` descends all rows through all trees simultaneously:
        one NumPy gather per tree level instead of one Python call per
        tree. This is what keeps the prune operation's ML invocations at
        ~10% of the optimization time (§VII-B) instead of dominating it.
        """
        offsets = np.cumsum([0] + [t.n_nodes for t in self.trees_[:-1]])
        self._roots = offsets.astype(np.int64)
        self._feature = np.concatenate([t.feature_ for t in self.trees_])
        self._threshold = np.concatenate([t.threshold_ for t in self.trees_])
        self._left = np.concatenate(
            [t.left_ + off for t, off in zip(self.trees_, offsets)]
        )
        self._right = np.concatenate(
            [t.right_ + off for t, off in zip(self.trees_, offsets)]
        )
        self._value = np.concatenate([t.value_ for t in self.trees_])

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Mean prediction over all trees (vectorized joint traversal).

        All (row, tree) pairs descend one level per iteration over flat
        arrays; leaves are made self-looping via clipped feature indices,
        so the loop body is a handful of ``take`` calls with no masking.
        """
        if not self.trees_:
            raise NotFittedError("RandomForestRegressor.predict before fit")
        X = np.asarray(X, dtype=np.float64)
        if not hasattr(self, "_roots"):
            self._pack()  # models unpickled from older saves
        n, n_features = X.shape
        t = len(self.trees_)
        x_flat = np.ascontiguousarray(X).ravel()
        row_offset = np.repeat(np.arange(n, dtype=np.int64) * n_features, t)
        nodes = np.tile(self._roots, n)
        feature = self._feature.take(nodes)
        active = feature >= 0
        while active.any():
            values = x_flat.take(row_offset + np.maximum(feature, 0))
            go_left = values <= self._threshold.take(nodes)
            children = np.where(
                go_left, self._left.take(nodes), self._right.take(nodes)
            )
            nodes = np.where(active, children, nodes)
            feature = self._feature.take(nodes)
            active = feature >= 0
        return self._value.take(nodes).reshape(n, t).mean(axis=1)

    def feature_importances(self) -> np.ndarray:
        """Split-count importances (how often each feature is used)."""
        if not self.trees_:
            raise NotFittedError("forest is not fitted")
        counts = np.zeros(self.n_features_, dtype=np.float64)
        for tree in self.trees_:
            used = tree.feature_[tree.feature_ >= 0]
            np.add.at(counts, used, 1.0)
        total = counts.sum()
        return counts / total if total > 0 else counts
