"""Random forest regression (the paper's model of choice, §VII-A)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ModelError, NotFittedError
from repro.ml.tree import DecisionTreeRegressor


class RandomForestRegressor:
    """Bagged regression trees with per-split feature subsampling.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth, min_samples_split, min_samples_leaf:
        Passed to every :class:`DecisionTreeRegressor`.
    max_features:
        Candidate features per split; defaults to ``"sqrt"``.
    bootstrap:
        Sample training rows with replacement per tree (classic bagging).
    max_samples:
        Fraction of the training rows each tree draws (with replacement);
        smaller values trade a little accuracy for much faster fits.
    seed:
        Seed of the forest's random generator.
    """

    def __init__(
        self,
        n_estimators: int = 40,
        max_depth: int = 16,
        min_samples_split: int = 4,
        min_samples_leaf: int = 2,
        max_features="sqrt",
        bootstrap: bool = True,
        max_samples: float = 1.0,
        seed: Optional[int] = None,
    ):
        if n_estimators < 1:
            raise ModelError(f"n_estimators must be >= 1, got {n_estimators}")
        if not 0.0 < max_samples <= 1.0:
            raise ModelError(f"max_samples must be in (0, 1], got {max_samples}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.max_samples = max_samples
        self.seed = seed
        self.trees_ = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        """Fit all trees on bootstrap resamples of ``(X, y)``."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.shape != (X.shape[0],):
            raise ModelError(
                f"incompatible shapes X={X.shape}, y={y.shape} for forest fit"
            )
        rng = np.random.default_rng(self.seed)
        n = X.shape[0]
        self.trees_ = []
        for _ in range(self.n_estimators):
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                rng=rng,
            )
            if self.bootstrap:
                rows = rng.integers(0, n, size=max(1, int(round(n * self.max_samples))))
            else:
                rows = np.arange(n)
            tree.fit(X[rows], y[rows])
            self.trees_.append(tree)
        self.n_features_ = X.shape[1]
        self._pack()
        return self

    def _pack(self) -> None:
        """Concatenate all trees into flat arrays for joint traversal.

        ``predict`` descends all rows through all trees simultaneously:
        one NumPy gather per tree level instead of one Python call per
        tree. This is what keeps the prune operation's ML invocations at
        ~10% of the optimization time (§VII-B) instead of dominating it.

        The tree builder always appends a split's right child directly
        after its left child, so ``right == left + 1`` on internal nodes.
        When that invariant holds (verified here, never assumed), leaves
        are rewritten to self-loop — ``left = self``, ``threshold = +inf``,
        ``feature = 0`` — and the per-tree depths are recorded, which lets
        ``predict`` run a fixed-depth loop of pure gathers with no
        active-row masking: ``next = left[node] + (x > threshold[node])``.
        """
        offsets = np.cumsum([0] + [t.n_nodes for t in self.trees_[:-1]])
        self._roots = offsets.astype(np.int64)
        self._feature = np.concatenate([t.feature_ for t in self.trees_])
        self._threshold = np.concatenate([t.threshold_ for t in self.trees_])
        self._left = np.concatenate(
            [t.left_ + off for t, off in zip(self.trees_, offsets)]
        )
        self._right = np.concatenate(
            [t.right_ + off for t, off in zip(self.trees_, offsets)]
        )
        self._value = np.concatenate([t.value_ for t in self.trees_])
        self._gather_cache = {}
        internal = self._feature >= 0
        if not np.array_equal(
            self._right[internal], self._left[internal] + 1
        ):
            self._max_depth = -1  # invariant violated: masked fallback loop
            return
        # Children are appended after their parent, so one forward pass
        # over the (still untransformed) child pointers yields node depths.
        depth = np.zeros(self._feature.shape[0], dtype=np.int64)
        left, right = self._left, self._right
        for i in np.flatnonzero(internal).tolist():
            d = depth[i] + 1
            depth[left[i]] = d
            depth[right[i]] = d
        self._max_depth = int(depth.max(initial=0))
        leaves = np.flatnonzero(~internal)
        self._left[leaves] = leaves
        self._threshold[leaves] = np.inf
        self._feature[leaves] = 0

    def _leaf_nodes(self, X: np.ndarray) -> Tuple[np.ndarray, int, int]:
        """Flat leaf-node indices for every (row, tree) pair.

        The shared descent behind :meth:`predict` and
        :meth:`predict_dist`: identical gathers in identical order, so
        both entry points resolve the same leaves bit-for-bit.
        """
        if not self.trees_:
            raise NotFittedError("RandomForestRegressor.predict before fit")
        X = np.asarray(X, dtype=np.float64)
        if not hasattr(self, "_roots") or not hasattr(self, "_max_depth"):
            self._pack()  # models unpickled from older saves
        n, n_features = X.shape
        t = len(self.trees_)
        x_flat = np.ascontiguousarray(X).ravel()
        cached = self._gather_cache.get(n)
        if cached is None:
            row_offset = np.repeat(np.arange(n, dtype=np.int64) * n_features, t)
            nodes0 = np.tile(self._roots, n)
            if n <= 4096:  # keep arenas for the small prune-time batches
                self._gather_cache[n] = (row_offset, nodes0)
        else:
            row_offset, nodes0 = cached
        nodes = nodes0
        if self._max_depth < 0:
            # Fallback for tree arrays that violate right == left + 1:
            # masked level-by-level descent (leaves are not self-looping
            # here, so inactive rows are held in place explicitly).
            feature = self._feature.take(nodes)
            active = feature >= 0
            while active.any():
                values = x_flat.take(row_offset + np.maximum(feature, 0))
                go_left = values <= self._threshold.take(nodes)
                children = np.where(
                    go_left, self._left.take(nodes), self._right.take(nodes)
                )
                nodes = np.where(active, children, nodes)
                feature = self._feature.take(nodes)
                active = feature >= 0
        else:
            # Fresh gathers beat ``take(..., out=)`` here, and plain fancy
            # indexing beats ``take`` on these 1-D flat gathers (the int64
            # index fast path skips take's mode handling), so only the adds
            # run in place.
            feature, threshold, left = self._feature, self._threshold, self._left
            for _ in range(self._max_depth):
                f = feature[nodes]
                f += row_offset
                values = x_flat[f]
                go_right = values > threshold[nodes]
                nxt = left[nodes]
                nxt += go_right
                nodes = nxt
        return nodes, n, t

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Mean prediction over all trees (vectorized joint traversal).

        All (row, tree) pairs descend one level per iteration over flat
        arrays. With self-looping leaves (see :meth:`_pack`) each level is
        three gathers, one comparison and one add, repeated exactly
        ``max_depth`` times — leaves stay put because nothing exceeds a
        ``+inf`` threshold. Row order does not affect a row's prediction
        (traversals are independent), so prune-time batches and the final
        selection see bit-identical costs for identical feature rows.

        NaN feature values descend left (``NaN > t`` is false); the
        training pipeline never produces NaN features.
        """
        nodes, n, t = self._leaf_nodes(X)
        # sum + in-place scalar division == mean(axis=1) bit-for-bit (same
        # pairwise reduction, same true_divide), minus the _mean wrapper.
        out = self._value[nodes].reshape(n, t).sum(axis=1)
        out /= t
        return out

    def predict_dist(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Per-row ``(mean, std)`` over the per-tree predictions.

        One traversal serves both moments: the leaves each (row, tree)
        pair lands on are resolved exactly as in :meth:`predict` (the
        mean array is bit-identical to a ``predict`` call on the same
        rows), and the std is the population spread of the per-tree leaf
        values — the bagged ensemble's disagreement, which Reqo-style
        robust plan evaluation reads as predictive uncertainty. A fitted
        single-tree forest honestly reports zero std everywhere.
        """
        nodes, n, t = self._leaf_nodes(X)
        per_tree = self._value[nodes].reshape(n, t)
        mean = per_tree.sum(axis=1)
        mean /= t
        return mean, per_tree.std(axis=1)

    def feature_importances(self) -> np.ndarray:
        """Split-count importances (how often each feature is used)."""
        if not self.trees_:
            raise NotFittedError("forest is not fitted")
        counts = np.zeros(self.n_features_, dtype=np.float64)
        for tree in self.trees_:
            used = tree.feature_[tree.feature_ >= 0]
            np.add.at(counts, used, 1.0)
        total = counts.sum()
        return counts / total if total > 0 else counts
