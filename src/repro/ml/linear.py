"""Linear models: ordinary least squares and ridge regression.

These serve two roles in the reproduction: (i) the "linear regression"
model family the paper tried and found less robust than random forests
(§VII-A), and (ii) the calibration machinery for the RHEEMix cost-model
baseline, whose per-operator cost formulas are linear by construction
(§II, §VII-C1 discussion).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ModelError, NotFittedError


class RidgeRegression:
    """L2-regularized least squares with intercept and feature scaling.

    Features are standardized internally (constant columns are left
    untouched), which keeps the closed-form solve well-conditioned on plan
    vectors whose columns span many orders of magnitude (counts vs.
    cardinalities).
    """

    def __init__(self, alpha: float = 1.0, fit_intercept: bool = True):
        if alpha < 0:
            raise ModelError(f"alpha must be >= 0, got {alpha}")
        self.alpha = alpha
        self.fit_intercept = fit_intercept
        self._fitted = False

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RidgeRegression":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.shape != (X.shape[0],):
            raise ModelError(
                f"incompatible shapes X={X.shape}, y={y.shape} for ridge fit"
            )
        self.mean_ = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale == 0.0] = 1.0
        self.scale_ = scale
        Z = (X - self.mean_) / self.scale_
        if self.fit_intercept:
            y_mean = y.mean()
        else:
            y_mean = 0.0
        self.y_mean_ = float(y_mean)
        n_features = Z.shape[1]
        gram = Z.T @ Z + self.alpha * np.eye(n_features)
        self.coef_ = np.linalg.solve(gram, Z.T @ (y - y_mean))
        self._fitted = True
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise NotFittedError("RidgeRegression.predict before fit")
        X = np.asarray(X, dtype=np.float64)
        Z = (X - self.mean_) / self.scale_
        return Z @ self.coef_ + self.y_mean_


class LinearRegression(RidgeRegression):
    """Ordinary least squares (ridge with a vanishing penalty)."""

    def __init__(self, fit_intercept: bool = True):
        super().__init__(alpha=1e-8, fit_intercept=fit_intercept)


def nonnegative_least_squares(
    X: np.ndarray, y: np.ndarray, iterations: int = 2000, seed: Optional[int] = None
) -> np.ndarray:
    """Solve ``min ||Xw - y||`` with ``w >= 0``.

    Cost-model coefficients must be non-negative (a negative per-tuple cost
    is meaningless and breaks pruning monotonicity), so the cost-model
    calibration uses this instead of the unconstrained solve. Columns are
    norm-scaled for conditioning, solved with SciPy's active-set NNLS, and
    fall back to projected gradient if the active-set solver fails to
    converge (it can on degenerate designs).
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if X.ndim != 2 or y.shape != (X.shape[0],):
        raise ModelError(f"incompatible shapes X={X.shape}, y={y.shape} for NNLS")
    n_features = X.shape[1]
    scale = np.linalg.norm(X, axis=0)
    scale[scale == 0.0] = 1.0
    Z = X / scale

    try:
        from scipy.optimize import nnls as scipy_nnls

        w, _residual = scipy_nnls(Z, y)
        return w / scale
    except Exception:
        pass  # fall through to projected gradient

    w = np.zeros(n_features)
    gram = Z.T @ Z
    lipschitz = np.linalg.norm(gram, 2)
    if lipschitz == 0:
        return w
    step = 1.0 / lipschitz
    Zty = Z.T @ y
    for _ in range(iterations):
        grad = gram @ w - Zty
        w = np.maximum(0.0, w - step * grad)
    return w / scale
