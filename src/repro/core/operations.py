"""The algebraic operations of the vectorized plan enumeration (§IV-C/D).

Core operations: ``vectorize``, ``enumerate``, ``unvectorize``.
Auxiliary operations: ``split``, ``iterate``, ``merge``.
(The ``prune`` operation lives in :mod:`repro.core.pruning`.)

All heavy lifting happens on NumPy matrices: ``merge_enumerations``
concatenates two plan vector enumerations with one batched addition, a
vectorized assignment combine, and masked conversion-delta updates — the
Python-level work is O(#edges × k²) regardless of how many plan vectors
are involved. This is the reproduction of the paper's SIMD-style
"vectorized execution" of the enumeration.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

import numpy as np

from repro.exceptions import EnumerationError, ScopeError, VectorizationError
from repro.core.enumeration import EnumerationContext, PlanVectorEnumeration
from repro.rheem.execution_plan import ExecutionPlan
from repro.rheem.logical_plan import LogicalPlan


class AbstractPlanVector:
    """The output of ``vectorize``: a plan vector with open platform choices.

    Per-platform cells of operators that *could* run on a platform hold
    ``-1`` (the paper's convention); everything else matches the concrete
    plan vector layout. ``alternatives`` lists the feasible platform
    indices per operator, which is what ``enumerate`` instantiates.

    The feature vector materializes lazily: ``enumerate_singleton`` reads
    only the scope and alternatives (its concrete vectors start from the
    context's cached static vector), so the split/enumerate hot path never
    pays for the ``-1`` marker pass.
    """

    __slots__ = ("ctx", "scope", "alternatives", "_features")

    def __init__(
        self,
        ctx: EnumerationContext,
        scope: FrozenSet[int],
        features: np.ndarray = None,
        alternatives: Dict[int, np.ndarray] = None,
    ):
        self.ctx = ctx
        self.scope = scope
        self.alternatives = alternatives if alternatives is not None else {}
        self._features = features

    @property
    def features(self) -> np.ndarray:
        if self._features is None:
            ctx = self.ctx
            schema, plan = ctx.schema, ctx.plan
            features = ctx.static_features(self.scope).copy()
            for op_id, alts in self.alternatives.items():
                kind = plan.operators[op_id].kind_name
                for pi in alts:
                    features[schema.op_platform_cell(kind, int(pi))] = -1.0
            self._features = features
        return self._features

    @property
    def n_operators(self) -> int:
        return len(self.scope)


def vectorize(
    plan_or_ctx, registry=None, schema=None
) -> AbstractPlanVector:
    """Transform a logical plan into an abstract plan vector (§IV-C op. 1).

    Accepts either an :class:`EnumerationContext` or a
    :class:`~repro.rheem.logical_plan.LogicalPlan` plus a registry.
    """
    if isinstance(plan_or_ctx, EnumerationContext):
        ctx = plan_or_ctx
    else:
        if registry is None:
            raise VectorizationError("vectorize(plan, ...) needs a registry")
        ctx = EnumerationContext(plan_or_ctx, registry, schema)
    return _abstract_for_scope(ctx, frozenset(ctx.plan.operators))


def _abstract_for_scope(
    ctx: EnumerationContext, scope: FrozenSet[int]
) -> AbstractPlanVector:
    alternatives = {op_id: ctx.alternatives[op_id] for op_id in scope}
    return AbstractPlanVector(ctx, scope, alternatives=alternatives)


def split(abstract: AbstractPlanVector) -> List[AbstractPlanVector]:
    """Divide an abstract plan vector into singleton vectors (§IV-D op. 4).

    The resulting scopes are pairwise disjoint and union to the input
    scope, which renders the enumeration parallelizable and lets the
    priority-based algorithm schedule concatenations freely.
    """
    return [
        _abstract_for_scope(abstract.ctx, frozenset((op_id,)))
        for op_id in sorted(abstract.scope)
    ]


def enumerate_singleton(
    abstract: AbstractPlanVector, memo: Dict = None, clock=None
) -> PlanVectorEnumeration:
    """Instantiate a singleton abstract vector (§IV-C op. 2, base case).

    Produces one plan vector per feasible platform of the single operator.

    ``memo`` (optional, mutated in place) caches the computed feature
    matrix under the singleton's *content* — operator kind, feasible
    platforms, and the exact static feature vector — so a batch of plans
    sharing subplans vectorizes each distinct singleton once (the batch
    service shares one memo per batch/worker). The cached matrix is
    copied on every hit, never aliased.

    ``clock`` (optional, a :class:`repro.resilience.budget.BudgetClock`)
    makes the call budget-aware: an expired budget raises
    :class:`~repro.exceptions.BudgetExceededError` *before* any work.
    A singleton cannot degrade locally — turning expiry into an anytime
    answer is the enumerator's job.
    """
    if len(abstract.scope) != 1:
        raise EnumerationError(
            f"enumerate_singleton needs a singleton scope, got {sorted(abstract.scope)}"
        )
    if clock is not None:
        clock.ensure()
    ctx = abstract.ctx
    (op_id,) = abstract.scope
    alts = ctx.alternatives[op_id]
    static = ctx.static_features(abstract.scope)
    n = len(alts)
    if memo is not None:
        # The key must pin everything op_assignment_delta reads: operator
        # kind, cardinalities, loop membership (all inside the static
        # vector) plus the plan-level average input tuple size, which the
        # singleton statics do not encode.
        key = (
            ctx.plan.operators[op_id].kind_name,
            alts.tobytes(),
            static.tobytes(),
            ctx.plan.average_input_tuple_size(),
            # Nested loops: the delta uses the *product* of enclosing
            # iterations, the statics only their sum — key it explicitly.
            ctx.plan.loop_iterations(op_id),
        )
        hit = memo.get(key)
        if hit is not None and hit.shape == (n, static.shape[0]):
            features = hit.copy()
        else:
            features = _singleton_features(ctx, op_id, alts, static, n)
            memo[key] = features.copy()
    else:
        features = _singleton_features(ctx, op_id, alts, static, n)
    assignments = np.full((n, ctx.n_ops), -1, dtype=np.int8)
    assignments[:, op_id] = alts
    enum = PlanVectorEnumeration(ctx, abstract.scope, features, assignments)
    # Singleton rows are the static vector plus per-alternative deltas on
    # non-static cells, so the rows carry exactly these static values.
    enum._static_full = static
    return enum


def _singleton_features(ctx, op_id, alts, static, n) -> np.ndarray:
    # One scatter-add over the stacked per-alternative delta lanes (built
    # once per context) replaces the per-alternative Python loop. Lane
    # duplicates within a row only occur on the weight-0 padding lanes
    # (column 0, value 0.0), which a buffered fancy add handles exactly.
    cols, vals = ctx.singleton_delta(op_id)
    features = np.tile(static, (n, 1))
    features[np.arange(n)[:, None], cols] += vals
    return features


def enumerate_abstract(abstract: AbstractPlanVector) -> PlanVectorEnumeration:
    """Fully instantiate an abstract plan vector (§IV-C op. 2).

    Creates *all* plan vectors for the abstract vector by folding
    ``merge`` over its singletons — i.e. the exhaustive k^n cartesian
    instantiation. Intended for small scopes and the exhaustive baseline.
    """
    singles = [enumerate_singleton(s) for s in split(abstract)]
    if not singles:
        raise EnumerationError("cannot enumerate an empty scope")
    current = singles[0]
    for nxt in singles[1:]:
        current = merge_enumerations(current, nxt)
    return current


def iterate(
    left: PlanVectorEnumeration, right: PlanVectorEnumeration
) -> Tuple[np.ndarray, np.ndarray]:
    """All pairs of plan vectors across two enumerations (§IV-D op. 5).

    Returns the cartesian product as two row-index arrays ``(i, j)`` of
    length ``len(left) * len(right)`` — the vectorized analogue of the
    paper's list of vector pairs.
    """
    n1, n2 = left.n_vectors, right.n_vectors
    i = np.repeat(np.arange(n1, dtype=np.int64), n2)
    j = np.tile(np.arange(n2, dtype=np.int64), n1)
    return i, j


class MergeScratch:
    """Reusable merge buffers, grown geometrically and never shrunk.

    ``merge_enumerations`` gathers two row selections of the feature and
    assignment matrices plus one conversion-delta gather per crossing edge;
    with a scratch the gathers land in preallocated arenas (``out=``)
    instead of fresh allocations per merge. The *returned* enumeration's
    matrices alias the arenas, so a scratch may only be passed by callers
    that copy the result out (pruning's ``select``) before the next merge
    — the enumerator does exactly that.
    """

    __slots__ = ("_bufs", "_views", "_merge_views")

    def __init__(self):
        self._bufs: Dict[str, np.ndarray] = {}
        self._views: Dict[str, Tuple[Tuple[int, int], np.ndarray]] = {}
        self._merge_views: Dict[Tuple[int, int, int, int], Tuple] = {}

    def array(self, key: str, shape: Tuple[int, int], dtype) -> np.ndarray:
        # Merge shapes are stable across the pruning steady state (survivor
        # count × alternatives), so the reshaped view is memoized per key
        # and only rebuilt when the requested shape changes.
        hit = self._views.get(key)
        if hit is not None and hit[0] == shape:
            return hit[1]
        need = int(shape[0]) * int(shape[1])
        buf = self._grow(key, need, dtype)
        view = buf[:need].reshape(shape)
        self._views[key] = (shape, view)
        return view

    def grid(
        self, key: str, n1: int, n2: int, m: int, dtype
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Flat ``(n1*n2, m)`` and broadcast ``(n1, n2, m)`` views of one
        buffer, memoized together — the cartesian merge writes through the
        3-D view and hands the 2-D view to the enumeration."""
        hit = self._views.get(key)
        if hit is not None and hit[0] == (n1, n2, m):
            return hit[1], hit[2]
        need = n1 * n2 * m
        buf = self._grow(key, need, dtype)
        flat = buf[:need]
        view2 = flat.reshape(n1 * n2, m)
        view3 = flat.reshape(n1, n2, m)
        self._views[key] = ((n1, n2, m), view2, view3)
        return view2, view3

    def merge_views(self, n1: int, n2: int, n_features: int, n_ops: int):
        """Feature and assignment grids for one cartesian merge, as a
        single memoized lookup. Merge shapes recur (and alternate — the
        survivor count tracks the boundary width), so views are kept per
        shape; the common case is one dict hit per merge."""
        key = (n1, n2, n_features, n_ops)
        hit = self._merge_views.get(key)
        if hit is not None:
            return hit
        views = self.grid("features", n1, n2, n_features, np.float64) + self.grid(
            "assignments", n1, n2, n_ops, np.int8
        )
        self._merge_views[key] = views
        return views

    def _grow(self, key: str, need: int, dtype) -> np.ndarray:
        buf = self._bufs.get(key)
        if buf is None or buf.size < need:
            cap = 1024
            while cap < need:
                cap *= 2
            buf = np.empty(cap, dtype=dtype)
            self._bufs[key] = buf
            # A reallocation orphans every view built over the old buffer;
            # drop the multi-shape memo so no stale view is ever returned.
            self._merge_views.clear()
        return buf


def merge_enumerations(
    left: PlanVectorEnumeration,
    right: PlanVectorEnumeration,
    pairs: Tuple[np.ndarray, np.ndarray] = None,
    scratch: MergeScratch = None,
) -> PlanVectorEnumeration:
    """Concatenate two plan vector enumerations (§IV-D op. 6, batched).

    Applies ``merge`` to every pair produced by ``iterate`` in one shot:

    1. add the feature matrices of all pairs;
    2. combine the assignment matrices (scopes are disjoint);
    3. add conversion-operator features on every plan edge that crosses the
       two scopes and lands on differing platforms;
    4. rewrite the scope-static columns with their exact values for the
       merged scope (the generalization of the paper's pipeline-max rule).

    Step 3 is the pair-coded kernel: each crossing edge carries a dense
    delta table indexed by ``(src+1)*(k+1)+(dst+1)``, so the per-edge work
    is one gather plus one in-place add over the conversion-block columns —
    no per-platform-pair boolean masks. Same-platform codes hit all-zero
    table rows, which adds exact ``+0.0`` everywhere (conversion cells are
    never ``-0.0``), keeping the result bit-identical to the masked form.

    The merged enumeration inherits its boundary incrementally: only an
    operator on the boundary of ``left`` or ``right`` can be on the
    boundary of the union, so the union's boundary filters the two cached
    boundaries instead of rescanning the whole scope.
    """
    left.check_scope_disjoint(right)
    if left.ctx is not right.ctx:
        raise ScopeError("cannot merge enumerations from different contexts")
    ctx = left.ctx
    n_features = left.features.shape[1]
    if pairs is None:
        # The full cartesian product is a broadcast add — no index gathers.
        # Row a*n2 + b = left row a + right row b, exactly iterate()'s
        # ordering. Disjoint scopes hold -1 outside their scope, so the
        # combined platform index is a + b + 1 (p + -1 + 1 = p;
        # -1 + -1 + 1 = -1); at most one operand is non-negative per
        # column, so the sum stays within int8 without widening.
        n1, n2 = left.n_vectors, right.n_vectors
        n = n1 * n2
        if scratch is None:
            features = np.empty((n, n_features), dtype=np.float64)
            f3 = features.reshape(n1, n2, n_features)
            assignments = np.empty((n, ctx.n_ops), dtype=np.int8)
            a3 = assignments.reshape(n1, n2, ctx.n_ops)
        else:
            features, f3, assignments, a3 = scratch.merge_views(
                n1, n2, n_features, ctx.n_ops
            )
        np.add(left.features[:, None, :], right.features[None, :, :], out=f3)
        np.add(
            left.assignments[:, None, :],
            right.assignments[None, :, :],
            out=a3,
        )
        assignments += 1
    else:
        i, j = pairs
        n = i.shape[0]
        if scratch is None:
            features = left.features[i] + right.features[j]
            assignments = left.assignments[i] + right.assignments[j]
            assignments += 1
        else:
            features = scratch.array("features", (n, n_features), np.float64)
            left.features.take(i, axis=0, out=features)
            rbuf = scratch.array("features_rhs", (n, n_features), np.float64)
            right.features.take(j, axis=0, out=rbuf)
            features += rbuf
            assignments = scratch.array("assignments", (n, ctx.n_ops), np.int8)
            left.assignments.take(i, axis=0, out=assignments)
            abuf = scratch.array("assignments_rhs", (n, ctx.n_ops), np.int8)
            right.assignments.take(j, axis=0, out=abuf)
            assignments += abuf
            assignments += 1

    crossing = ctx.crossing_edges(left.scope, right.scope)
    if crossing:
        lo, hi = ctx.conv_block
        conv_view = features[:, lo:hi]
        kp1 = ctx.schema.k + 1
        for edge in crossing:
            # Pair code (src+1)*(k+1) + (dst+1), with the two +1 shifts
            # folded into one constant add after the multiply.
            if pairs is None:
                # Cartesian product: the edge endpoints live on opposite
                # sides, so the code column is an outer add of two tiny
                # per-side vectors — identical integers to the column
                # arithmetic below, at a fraction of the row count.
                if edge.src in left.scope:
                    base = left.assignments[:, edge.src].astype(np.int64)
                    base *= kp1
                    base += kp1 + 1
                    codes = (
                        base[:, None] + right.assignments[:, edge.dst]
                    ).ravel()
                else:
                    base = right.assignments[:, edge.src].astype(np.int64)
                    base *= kp1
                    base += kp1 + 1
                    codes = (
                        left.assignments[:, edge.dst].astype(np.int64)[:, None]
                        + base
                    ).ravel()
            else:
                codes = assignments[:, edge.src].astype(np.int64)
                codes *= kp1
                codes += assignments[:, edge.dst]
                codes += kp1 + 1
            # A fresh gather beats take(..., out=) for these small batches
            # (NumPy's out= take path is slower than the allocation).
            conv_view += edge.conv_table.take(codes, axis=0)

    scope = left.scope | right.scope
    full_static = ctx.apply_merged_statics(
        features, left, right, scope, crossing
    )
    merged = PlanVectorEnumeration._unchecked(ctx, scope, features, assignments)
    merged._static_full = full_static
    lmax, rmax = left.scope_max(), right.scope_max()
    merged._scope_max = lmax if lmax >= rmax else rmax
    lmin, rmin = left.scope_min(), right.scope_min()
    merged._scope_min = lmin if lmin <= rmin else rmin
    # The two cached boundaries are short, sorted and disjoint (disjoint
    # scopes): a plain Python merge beats concatenate + ndarray sort, and
    # the explicit loop beats any()-over-generator at these sizes.
    candidates = sorted(left.boundary_list() + right.boundary_list())
    neighbours = ctx.op_neighbours
    blist = []
    for o in candidates:
        for x in neighbours[o]:
            if x not in scope:
                blist.append(o)
                break
    merged._blist = blist
    return merged


def merge(
    left: PlanVectorEnumeration,
    right: PlanVectorEnumeration,
    row_left: int,
    row_right: int,
) -> PlanVectorEnumeration:
    """Merge a single pair of plan vectors (§IV-D op. 6, unit form).

    Exposed for completeness and testing; the enumerator always uses the
    batched :func:`merge_enumerations`. ``merge`` is commutative and
    associative — covered by property-based tests.
    """
    i = np.array([row_left], dtype=np.int64)
    j = np.array([row_right], dtype=np.int64)
    return merge_enumerations(left, right, pairs=(i, j))


def unvectorize(
    enumeration: PlanVectorEnumeration, row: int
) -> ExecutionPlan:
    """Translate a plan vector back into an executable plan (§IV-C op. 3).

    Reads the logical plan structure (the LOT), the vector's platform
    assignment, and materializes the conversion operators (the COT) via
    :class:`~repro.rheem.execution_plan.ExecutionPlan`.
    """
    if not enumeration.is_complete:
        missing = set(enumeration.ctx.plan.operators) - enumeration.scope
        raise VectorizationError(
            f"cannot unvectorize a partial plan; missing operators {sorted(missing)}"
        )
    if not 0 <= row < enumeration.n_vectors:
        raise VectorizationError(
            f"row {row} out of range for enumeration of size {enumeration.n_vectors}"
        )
    ctx = enumeration.ctx
    assignment = enumeration.assignment_dict(row)
    return ExecutionPlan(ctx.plan, assignment, ctx.registry)
