"""The algebraic operations of the vectorized plan enumeration (§IV-C/D).

Core operations: ``vectorize``, ``enumerate``, ``unvectorize``.
Auxiliary operations: ``split``, ``iterate``, ``merge``.
(The ``prune`` operation lives in :mod:`repro.core.pruning`.)

All heavy lifting happens on NumPy matrices: ``merge_enumerations``
concatenates two plan vector enumerations with one batched addition, a
vectorized assignment combine, and masked conversion-delta updates — the
Python-level work is O(#edges × k²) regardless of how many plan vectors
are involved. This is the reproduction of the paper's SIMD-style
"vectorized execution" of the enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

import numpy as np

from repro.exceptions import EnumerationError, ScopeError, VectorizationError
from repro.core.enumeration import EnumerationContext, PlanVectorEnumeration
from repro.rheem.execution_plan import ExecutionPlan
from repro.rheem.logical_plan import LogicalPlan


@dataclass(frozen=True)
class AbstractPlanVector:
    """The output of ``vectorize``: a plan vector with open platform choices.

    Per-platform cells of operators that *could* run on a platform hold
    ``-1`` (the paper's convention); everything else matches the concrete
    plan vector layout. ``alternatives`` lists the feasible platform
    indices per operator, which is what ``enumerate`` instantiates.
    """

    ctx: EnumerationContext
    scope: FrozenSet[int]
    features: np.ndarray
    alternatives: Dict[int, np.ndarray]

    @property
    def n_operators(self) -> int:
        return len(self.scope)


def vectorize(
    plan_or_ctx, registry=None, schema=None
) -> AbstractPlanVector:
    """Transform a logical plan into an abstract plan vector (§IV-C op. 1).

    Accepts either an :class:`EnumerationContext` or a
    :class:`~repro.rheem.logical_plan.LogicalPlan` plus a registry.
    """
    if isinstance(plan_or_ctx, EnumerationContext):
        ctx = plan_or_ctx
    else:
        if registry is None:
            raise VectorizationError("vectorize(plan, ...) needs a registry")
        ctx = EnumerationContext(plan_or_ctx, registry, schema)
    return _abstract_for_scope(ctx, frozenset(ctx.plan.operators))


def _abstract_for_scope(
    ctx: EnumerationContext, scope: FrozenSet[int]
) -> AbstractPlanVector:
    features = ctx.static_features(scope).copy()
    schema = ctx.schema
    plan = ctx.plan
    alternatives: Dict[int, np.ndarray] = {}
    for op_id in scope:
        alts = ctx.alternatives[op_id]
        alternatives[op_id] = alts
        kind = plan.operators[op_id].kind_name
        for pi in alts:
            features[schema.op_platform_cell(kind, int(pi))] = -1.0
    return AbstractPlanVector(ctx, scope, features, alternatives)


def split(abstract: AbstractPlanVector) -> List[AbstractPlanVector]:
    """Divide an abstract plan vector into singleton vectors (§IV-D op. 4).

    The resulting scopes are pairwise disjoint and union to the input
    scope, which renders the enumeration parallelizable and lets the
    priority-based algorithm schedule concatenations freely.
    """
    return [
        _abstract_for_scope(abstract.ctx, frozenset((op_id,)))
        for op_id in sorted(abstract.scope)
    ]


def enumerate_singleton(
    abstract: AbstractPlanVector, memo: Dict = None, clock=None
) -> PlanVectorEnumeration:
    """Instantiate a singleton abstract vector (§IV-C op. 2, base case).

    Produces one plan vector per feasible platform of the single operator.

    ``memo`` (optional, mutated in place) caches the computed feature
    matrix under the singleton's *content* — operator kind, feasible
    platforms, and the exact static feature vector — so a batch of plans
    sharing subplans vectorizes each distinct singleton once (the batch
    service shares one memo per batch/worker). The cached matrix is
    copied on every hit, never aliased.

    ``clock`` (optional, a :class:`repro.resilience.budget.BudgetClock`)
    makes the call budget-aware: an expired budget raises
    :class:`~repro.exceptions.BudgetExceededError` *before* any work.
    A singleton cannot degrade locally — turning expiry into an anytime
    answer is the enumerator's job.
    """
    if len(abstract.scope) != 1:
        raise EnumerationError(
            f"enumerate_singleton needs a singleton scope, got {sorted(abstract.scope)}"
        )
    if clock is not None:
        clock.ensure()
    ctx = abstract.ctx
    (op_id,) = abstract.scope
    alts = ctx.alternatives[op_id]
    schema = ctx.schema
    static = ctx.static_features(abstract.scope)
    n = len(alts)
    if memo is not None:
        # The key must pin everything op_assignment_delta reads: operator
        # kind, cardinalities, loop membership (all inside the static
        # vector) plus the plan-level average input tuple size, which the
        # singleton statics do not encode.
        key = (
            ctx.plan.operators[op_id].kind_name,
            alts.tobytes(),
            static.tobytes(),
            ctx.plan.average_input_tuple_size(),
            # Nested loops: the delta uses the *product* of enclosing
            # iterations, the statics only their sum — key it explicitly.
            ctx.plan.loop_iterations(op_id),
        )
        hit = memo.get(key)
        if hit is not None and hit.shape == (n, static.shape[0]):
            features = hit.copy()
        else:
            features = _singleton_features(ctx, op_id, alts, static, n)
            memo[key] = features.copy()
    else:
        features = _singleton_features(ctx, op_id, alts, static, n)
    assignments = np.full((n, ctx.n_ops), -1, dtype=np.int8)
    assignments[:, op_id] = alts
    return PlanVectorEnumeration(ctx, abstract.scope, features, assignments)


def _singleton_features(ctx, op_id, alts, static, n) -> np.ndarray:
    schema = ctx.schema
    features = np.tile(static, (n, 1))
    for row, pi in enumerate(alts):
        cols, vals = schema.op_assignment_delta(ctx.plan, op_id, int(pi))
        features[row, cols] += vals
    return features


def enumerate_abstract(abstract: AbstractPlanVector) -> PlanVectorEnumeration:
    """Fully instantiate an abstract plan vector (§IV-C op. 2).

    Creates *all* plan vectors for the abstract vector by folding
    ``merge`` over its singletons — i.e. the exhaustive k^n cartesian
    instantiation. Intended for small scopes and the exhaustive baseline.
    """
    singles = [enumerate_singleton(s) for s in split(abstract)]
    if not singles:
        raise EnumerationError("cannot enumerate an empty scope")
    current = singles[0]
    for nxt in singles[1:]:
        current = merge_enumerations(current, nxt)
    return current


def iterate(
    left: PlanVectorEnumeration, right: PlanVectorEnumeration
) -> Tuple[np.ndarray, np.ndarray]:
    """All pairs of plan vectors across two enumerations (§IV-D op. 5).

    Returns the cartesian product as two row-index arrays ``(i, j)`` of
    length ``len(left) * len(right)`` — the vectorized analogue of the
    paper's list of vector pairs.
    """
    n1, n2 = left.n_vectors, right.n_vectors
    i = np.repeat(np.arange(n1, dtype=np.int64), n2)
    j = np.tile(np.arange(n2, dtype=np.int64), n1)
    return i, j


def merge_enumerations(
    left: PlanVectorEnumeration,
    right: PlanVectorEnumeration,
    pairs: Tuple[np.ndarray, np.ndarray] = None,
) -> PlanVectorEnumeration:
    """Concatenate two plan vector enumerations (§IV-D op. 6, batched).

    Applies ``merge`` to every pair produced by ``iterate`` in one shot:

    1. add the feature matrices of all pairs;
    2. combine the assignment matrices (scopes are disjoint);
    3. add conversion-operator features on every plan edge that crosses the
       two scopes and lands on differing platforms;
    4. rewrite the scope-static columns with their exact values for the
       merged scope (the generalization of the paper's pipeline-max rule).
    """
    left.check_scope_disjoint(right)
    if left.ctx is not right.ctx:
        raise ScopeError("cannot merge enumerations from different contexts")
    ctx = left.ctx
    if pairs is None:
        pairs = iterate(left, right)
    i, j = pairs
    features = left.features[i] + right.features[j]
    # Disjoint scopes hold -1 outside their scope, so the combined platform
    # index is a + b + 1 (p + -1 + 1 = p; -1 + -1 + 1 = -1).
    assignments = (
        left.assignments[i].astype(np.int16)
        + right.assignments[j].astype(np.int16)
        + 1
    ).astype(np.int8)

    for edge in ctx.crossing_edges(left.scope, right.scope):
        src_platform = assignments[:, edge.src]
        dst_platform = assignments[:, edge.dst]
        for (pi, pj), (cols, vals) in edge.deltas.items():
            mask = (src_platform == pi) & (dst_platform == pj)
            if mask.any():
                rows = np.flatnonzero(mask)
                features[np.ix_(rows, cols)] += vals

    scope = left.scope | right.scope
    static = ctx.static_features(scope)
    static_mask = ctx.schema.static_mask
    features[:, static_mask] = static[static_mask]
    return PlanVectorEnumeration(ctx, scope, features, assignments)


def merge(
    left: PlanVectorEnumeration,
    right: PlanVectorEnumeration,
    row_left: int,
    row_right: int,
) -> PlanVectorEnumeration:
    """Merge a single pair of plan vectors (§IV-D op. 6, unit form).

    Exposed for completeness and testing; the enumerator always uses the
    batched :func:`merge_enumerations`. ``merge`` is commutative and
    associative — covered by property-based tests.
    """
    i = np.array([row_left], dtype=np.int64)
    j = np.array([row_right], dtype=np.int64)
    return merge_enumerations(left, right, pairs=(i, j))


def unvectorize(
    enumeration: PlanVectorEnumeration, row: int
) -> ExecutionPlan:
    """Translate a plan vector back into an executable plan (§IV-C op. 3).

    Reads the logical plan structure (the LOT), the vector's platform
    assignment, and materializes the conversion operators (the COT) via
    :class:`~repro.rheem.execution_plan.ExecutionPlan`.
    """
    if not enumeration.is_complete:
        missing = set(enumeration.ctx.plan.operators) - enumeration.scope
        raise VectorizationError(
            f"cannot unvectorize a partial plan; missing operators {sorted(missing)}"
        )
    if not 0 <= row < enumeration.n_vectors:
        raise VectorizationError(
            f"row {row} out of range for enumeration of size {enumeration.n_vectors}"
        )
    ctx = enumeration.ctx
    assignment = enumeration.assignment_dict(row)
    return ExecutionPlan(ctx.plan, assignment, ctx.registry)
