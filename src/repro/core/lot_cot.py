"""The Logical Operators Table (LOT) and Conversion Operators Table (COT).

``unvectorize`` needs to reconstruct an executable plan from a bare
numeric vector (§IV-C, Fig. 6). Two auxiliary structures make that
possible:

* the **LOT** captures the *immutable* structure of the logical plan —
  one row per logical operator with its kind, UDF label and parents;
* the **COT** captures the platform switches of one *specific* execution
  plan — one row per conversion operator with its kind, platform and the
  plan edge it sits on.

In this reproduction the enumeration additionally carries an assignments
matrix, so these tables serve plan reconstruction, debugging and
serialization rather than being the only path back from a vector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.rheem.execution_plan import ExecutionPlan
from repro.rheem.logical_plan import LogicalPlan


@dataclass(frozen=True)
class LotRow:
    """One logical operator: id, kind, UDF label and parent ids."""

    op_id: int
    kind: str
    label: str
    parents: Tuple[int, ...]


@dataclass(frozen=True)
class CotRow:
    """One conversion operator of a specific execution plan."""

    conv_id: int
    kind: str
    platform: str
    edge: Tuple[int, int]


class LogicalOperatorsTable:
    """The LOT: immutable structural view of a logical plan."""

    def __init__(self, plan: LogicalPlan):
        self.plan_name = plan.name
        self.rows: List[LotRow] = [
            LotRow(
                op_id=i,
                kind=plan.operators[i].kind_name,
                label=plan.operators[i].label,
                parents=tuple(plan.parents(i)),
            )
            for i in sorted(plan.operators)
        ]
        self._by_id = {row.op_id: row for row in self.rows}

    def __len__(self) -> int:
        return len(self.rows)

    def __getitem__(self, op_id: int) -> LotRow:
        return self._by_id[op_id]

    def render(self) -> str:
        """A human-readable table, one operator per line (like Fig. 6)."""
        lines = [f"LOT for {self.plan_name!r}"]
        lines.append(f"{'Id':>4}  {'Logical Operator':<28} Parents")
        for row in self.rows:
            parents = ", ".join(f"o{p}" for p in row.parents) or "-"
            lines.append(f"o{row.op_id:>3}  {row.label:<28} {parents}")
        return "\n".join(lines)


class ConversionOperatorsTable:
    """The COT: the platform switches of one execution plan."""

    def __init__(self, xplan: ExecutionPlan):
        self.rows: List[CotRow] = [
            CotRow(
                conv_id=i,
                kind=conv.kind,
                platform=conv.platform,
                edge=conv.edge,
            )
            for i, conv in enumerate(xplan.conversions())
        ]

    def __len__(self) -> int:
        return len(self.rows)

    def render(self) -> str:
        """A human-readable table, one conversion per line (like Fig. 6)."""
        lines = ["COT"]
        lines.append(f"{'Id':>4}  {'Conversion Operator':<28} Edge")
        for row in self.rows:
            u, v = row.edge
            name = f"{row.platform}.{row.kind}"
            lines.append(f"co{row.conv_id:>2}  {name:<28} o{u} -> o{v}")
        return "\n".join(lines)
