"""Robopt's core: vectorized, ML-driven plan enumeration (§IV–§V).

The subpackage implements the paper's primary contribution:

* :mod:`repro.core.features` — the plan-vector layout (§IV-A);
* :mod:`repro.core.enumeration` — plan vector enumerations (Def. 1) and the
  shared enumeration context;
* :mod:`repro.core.operations` — the seven algebraic operations
  (``vectorize``, ``enumerate``, ``unvectorize``, ``split``, ``iterate``,
  ``merge``, ``prune``; §IV-C/D/E);
* :mod:`repro.core.pruning` — boundary pruning (Def. 2) and the β-switch
  pruning used by TDGEN;
* :mod:`repro.core.priority` — priority metrics (Def. 3 and the
  top-down/bottom-up variants);
* :mod:`repro.core.enumerator` — the priority-based enumeration
  (Algorithm 1);
* :mod:`repro.core.optimizer` — the :class:`Robopt` facade.
"""

from repro.core.features import FeatureSchema
from repro.core.enumeration import EnumerationContext, PlanVectorEnumeration
from repro.core.operations import (
    AbstractPlanVector,
    enumerate_singleton,
    iterate,
    merge,
    merge_enumerations,
    split,
    unvectorize,
    vectorize,
)
from repro.core.pruning import (
    boundary_operators,
    ml_cost,
    prune,
    prune_switches,
    pruning_footprint,
)
from repro.core.priority import PRIORITIES, make_priority
from repro.core.enumerator import EnumerationResult, PriorityEnumerator
from repro.core.optimizer import OptimizationResult, Robopt

__all__ = [
    "FeatureSchema",
    "EnumerationContext",
    "PlanVectorEnumeration",
    "AbstractPlanVector",
    "vectorize",
    "split",
    "enumerate_singleton",
    "iterate",
    "merge",
    "merge_enumerations",
    "unvectorize",
    "boundary_operators",
    "pruning_footprint",
    "prune",
    "prune_switches",
    "ml_cost",
    "PRIORITIES",
    "make_priority",
    "PriorityEnumerator",
    "EnumerationResult",
    "Robopt",
    "OptimizationResult",
]
