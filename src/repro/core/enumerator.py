"""Priority-based plan enumeration — Algorithm 1 of the paper (§V-B).

The enumerator (i) vectorizes and splits the plan into singleton abstract
vectors, (ii) enumerates each singleton, (iii) repeatedly dequeues the
highest-priority enumeration and concatenates it with its children
(pruning after every concatenation), and (iv) returns the cheapest plan
vector of the final enumeration, unvectorized into an execution plan.

Because boundary pruning is lossless w.r.t. the cost oracle (Def. 2), the
returned plan is *optimal with respect to the model* — unlike learned
best-first searches (e.g. Neo), which are heuristic (§VIII).
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

import numpy as np

from repro.api import RunStats
from repro.exceptions import BudgetExceededError, EnumerationError
from repro.core.enumeration import EnumerationContext, PlanVectorEnumeration
from repro.core.features import FeatureSchema
from repro.core.operations import (
    MergeScratch,
    enumerate_singleton,
    merge_enumerations,
    split,
    unvectorize,
    vectorize,
)
from repro.core.priority import make_priority
from repro.core.pruning import CostFn, ml_cost, prune
from repro.obs import current_tracer
from repro.resilience.budget import (
    REASON_DEADLINE,
    Budget,
    BudgetClock,
)
from repro.rheem.execution_plan import ExecutionPlan
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.platforms import PlatformRegistry

#: Degradation reason recorded when even the partial enumerations could
#: not be assembled and a greedy single-pass assignment was returned.
REASON_GREEDY = "greedy_fallback"

@dataclass
class EnumerationResult:
    """The outcome of one optimization: the chosen plan and diagnostics."""

    execution_plan: ExecutionPlan
    predicted_cost: float
    final_enumeration: PlanVectorEnumeration
    stats: RunStats


class PriorityEnumerator:
    """Algorithm 1: pruning-aware, priority-driven plan enumeration.

    Parameters
    ----------
    registry:
        Platforms available to the optimizer.
    cost_fn:
        Cost oracle used by pruning and the final plan selection. Use
        :func:`repro.core.pruning.ml_cost` to wrap an ML model.
    priority:
        ``"robopt"`` (Def. 3), ``"topdown"`` or ``"bottomup"``.
    pruning:
        Disable to obtain the exhaustive vectorized enumeration (the
        "Exhaustive enumeration" baseline of Fig. 9(a)).
    schema:
        Optional shared :class:`FeatureSchema` (one is built per registry
        otherwise).
    max_vectors:
        Safety valve: a single concatenation producing more plan vectors
        than this raises :class:`EnumerationError` (the exhaustive baseline
        at 20+ operators would otherwise materialize 10^6+ vectors,
        cf. Table I).
    singleton_memo:
        Optional mutable mapping shared across runs: caches singleton
        feature matrices by content so a batch of plans with shared
        subplans vectorizes each distinct singleton once (see
        :func:`repro.core.operations.enumerate_singleton`; the batch
        service installs one per batch/worker).
    budget:
        Optional :class:`repro.resilience.budget.Budget` applied to every
        run (a per-call budget passed to :meth:`enumerate_plan` takes
        precedence). On expiry the run is *degraded*, not aborted: the
        best complete plan assemblable from the partial enumerations is
        returned and ``RunStats.degraded``/``degradation`` record why.
    """

    def __init__(
        self,
        registry: PlatformRegistry,
        cost_fn: CostFn,
        priority: str = "robopt",
        pruning: bool = True,
        schema: Optional[FeatureSchema] = None,
        max_vectors: int = 4_000_000,
        singleton_memo: Optional[Dict] = None,
        budget: Optional[Budget] = None,
    ):
        self.registry = registry
        self.cost_fn = cost_fn
        self.priority_name = priority
        self.pruning = pruning
        self.schema = schema if schema is not None else FeatureSchema(registry)
        self.max_vectors = max_vectors
        self.singleton_memo = singleton_memo
        self.budget = budget
        # Reusable merge arenas. Only safe under pruning: prune's select
        # copies the survivors out of the arenas before the next merge
        # reuses them. Without pruning every merge owns fresh matrices.
        self._scratch = MergeScratch() if pruning else None

    # ------------------------------------------------------------------
    def enumerate_plan(
        self, plan: LogicalPlan, budget: Optional[Budget] = None
    ) -> EnumerationResult:
        """Run Algorithm 1 on a logical plan and return the best plan."""
        tracer = current_tracer()
        if tracer.enabled:
            with tracer.span(
                "enumerate",
                plan=plan.name,
                n_operators=plan.n_operators,
                priority=self.priority_name,
                pruning=self.pruning,
            ) as root:
                result = self._enumerate_traced(plan, tracer, budget)
                root.set(**result.stats.as_dict())
            return result
        return self._enumerate_traced(plan, tracer, budget)

    def _enumerate_traced(
        self, plan: LogicalPlan, tracer, budget: Optional[Budget] = None
    ) -> EnumerationResult:
        started = time.perf_counter()
        budget = budget if budget is not None else self.budget
        clock: Optional[BudgetClock] = None
        if budget is not None and not budget.unbounded:
            clock = budget.start()
        ctx = EnumerationContext(plan, self.registry, self.schema)
        priority_fn = make_priority(self.priority_name, ctx)
        stats = RunStats()

        # Lines 2-5: vectorize, split, enumerate singletons, set priorities.
        enums: Dict[int, PlanVectorEnumeration] = {}
        op_to_enum: Dict[int, int] = {}
        ids = itertools.count()
        try:
            if self.singleton_memo is None:
                # No cross-run memo: build every singleton in one batched
                # pass (same vectors, two scatters for the whole plan).
                if clock is not None:
                    clock.ensure()
                for enumeration in ctx.singleton_enumerations():
                    eid = next(ids)
                    enums[eid] = enumeration
                    stats.singleton_vectors += enumeration.n_vectors
                    (op_id,) = enumeration.scope
                    op_to_enum[op_id] = eid
            else:
                for abstract in split(vectorize(ctx)):
                    eid = next(ids)
                    enumeration = enumerate_singleton(
                        abstract, memo=self.singleton_memo, clock=clock
                    )
                    enums[eid] = enumeration
                    stats.singleton_vectors += enumeration.n_vectors
                    (op_id,) = abstract.scope
                    op_to_enum[op_id] = eid
        except BudgetExceededError as exc:
            # Budget gone before the singletons even finished: the partial
            # enumerations cannot cover the plan, so assembly will fall
            # through to the greedy path inside _anytime_result.
            return self._anytime_result(
                ctx, enums, stats, exc.reason, tracer, started
            )
        if tracer.enabled:
            tracer.count("enumerate.singleton_vectors", stats.singleton_vectors)

        # Neighbouring enumerations can only attach through boundary
        # operators (an edge to another enumeration is an edge out of the
        # scope), so partner discovery walks the cached boundary instead of
        # the full scope.
        def children_of(eid: int) -> List[int]:
            found: List[int] = []
            seen: Set[int] = set()
            for u in enums[eid].boundary_list():
                for v in ctx.op_children[u]:
                    other = op_to_enum[v]
                    if other != eid and other not in seen:
                        seen.add(other)
                        found.append(other)
            return found

        def parents_of(eid: int) -> List[int]:
            found: List[int] = []
            seen: Set[int] = set()
            for u in enums[eid].boundary_list():
                for p in ctx.op_parents[u]:
                    other = op_to_enum[p]
                    if other != eid and other not in seen:
                        seen.add(other)
                        found.append(other)
            return found

        heap: List = []
        version: Dict[int, int] = {}
        seq = itertools.count()

        def push(eid: int) -> None:
            enumeration = enums[eid]
            children = [enums[c] for c in children_of(eid)]
            priority = priority_fn(enumeration, children)
            tie = len(enumeration.boundary_list())
            version[eid] = version.get(eid, 0) + 1
            heapq.heappush(heap, (-priority, tie, next(seq), eid, version[eid]))

        for eid in list(enums):
            push(eid)

        # Lines 6-17: concatenate by priority until one enumeration remains.
        while len(enums) > 1:
            if clock is not None:
                reason = clock.check(stats.total_vectors)
                if reason is not None:
                    return self._anytime_result(
                        ctx, enums, stats, reason, tracer, started
                    )
            entry = heapq.heappop(heap)
            _, _, _, eid, entry_version = entry
            if eid not in enums or version.get(eid) != entry_version:
                continue  # stale heap entry
            partners = children_of(eid) or parents_of(eid)
            if not partners:
                # Disconnected plan fragments: merge with any survivor.
                partners = [other for other in enums if other != eid][:1]
            current = eid
            for partner in partners:
                if partner not in enums or current not in enums:
                    continue
                current = self._concatenate(
                    ctx, enums, op_to_enum, current, partner, stats, tracer
                )
            push(current)
            for parent in parents_of(current):
                push(parent)  # Line 17: refresh parents' priorities.

        (final_eid,) = enums
        final = enums[final_eid]
        stats.final_vectors = final.n_vectors

        # Line 18: pick the plan with the minimum estimated runtime. The
        # last prune already costed exactly these rows (per-row predictions
        # are batch-independent), so reuse its cached survivor costs when
        # present and skip the redundant model invocation.
        costs = final.cached_costs()
        if costs is None:
            t0 = time.perf_counter()
            if tracer.enabled:
                with tracer.span("enumerate.select", rows=final.n_vectors):
                    costs = np.asarray(self.cost_fn(final), dtype=np.float64)
            else:
                costs = np.asarray(self.cost_fn(final), dtype=np.float64)
            stats.time_prune_s += time.perf_counter() - t0
            stats.rows_predicted += final.n_vectors
            if tracer.enabled:
                tracer.count("enumerate.rows_predicted", final.n_vectors)
        best_row = int(np.argmin(costs))
        xplan = unvectorize(final, best_row)
        stats.latency_s = time.perf_counter() - started
        if tracer.enabled:
            tracer.count("enumerate.final_vectors", final.n_vectors)
        return EnumerationResult(
            execution_plan=xplan,
            predicted_cost=float(costs[best_row]),
            final_enumeration=final,
            stats=stats,
        )

    # ------------------------------------------------------------------
    def _concatenate(
        self,
        ctx: EnumerationContext,
        enums: Dict[int, PlanVectorEnumeration],
        op_to_enum: Dict[int, int],
        left_id: int,
        right_id: int,
        stats: RunStats,
        tracer,
    ) -> int:
        """Merge two live enumerations (Lines 9-14) and register the result."""
        left, right = enums[left_id], enums[right_id]
        produced = left.n_vectors * right.n_vectors
        if produced > self.max_vectors:
            raise EnumerationError(
                f"concatenation would create {produced} plan vectors "
                f"(limit {self.max_vectors}); enable pruning or raise the limit"
            )
        t0 = time.perf_counter()
        if tracer.enabled:
            with tracer.span(
                "enumerate.merge",
                left=left.n_vectors,
                right=right.n_vectors,
                produced=produced,
            ):
                merged = merge_enumerations(left, right, scratch=self._scratch)
        else:
            merged = merge_enumerations(left, right, scratch=self._scratch)
        stats.time_merge_s += time.perf_counter() - t0
        stats.merges += 1
        stats.vectors_created += merged.n_vectors
        stats.peak_enumeration = max(stats.peak_enumeration, merged.n_vectors)
        if tracer.enabled:
            tracer.count("enumerate.merges")
            tracer.count("enumerate.vectors_created", merged.n_vectors)

        if self.pruning:
            t0 = time.perf_counter()
            if tracer.enabled:
                with tracer.span("enumerate.prune", rows=merged.n_vectors) as ps:
                    pruned, _costs = prune(merged, self.cost_fn)
                    ps.set(survivors=pruned.n_vectors)
            else:
                pruned, _costs = prune(merged, self.cost_fn)
            stats.time_prune_s += time.perf_counter() - t0
            stats.prune_calls += 1
            stats.rows_predicted += merged.n_vectors
            stats.vectors_pruned += merged.n_vectors - pruned.n_vectors
            if tracer.enabled:
                tracer.count("enumerate.prune_calls")
                tracer.count("enumerate.rows_predicted", merged.n_vectors)
                tracer.count(
                    "enumerate.vectors_pruned", merged.n_vectors - pruned.n_vectors
                )
            if pruned is merged and self._scratch is not None:
                # Single-row prune shortcut returns the input object, whose
                # matrices alias the merge arenas — detach before the next
                # merge reuses them (select copies and keeps the cached
                # boundary; the costs are row-bound, reattach them).
                costs_cache = pruned.cached_costs()
                pruned = pruned.select(np.arange(pruned.n_vectors))
                pruned._costs = costs_cache
            merged = pruned

        # The merged enumeration takes over the left id: left-scope
        # operators already map there, so only the (usually single-op)
        # right scope needs remapping, and older heap entries for the id
        # retire through the version counter at the next push.
        del enums[right_id]
        enums[left_id] = merged
        for op_id in right.scope:
            op_to_enum[op_id] = left_id
        return left_id

    # -- anytime degradation -------------------------------------------
    def _anytime_result(
        self,
        ctx: EnumerationContext,
        enums: Dict[int, PlanVectorEnumeration],
        stats: RunStats,
        reason: str,
        tracer,
        started: float,
    ) -> EnumerationResult:
        """Assemble the best *complete* plan from partial enumerations.

        Called when the budget expires mid-search. Each live enumeration
        covers a disjoint operator scope; taking the per-fragment argmin
        and stitching the assignments together yields a complete,
        executable plan (conversions materialize in the
        :class:`ExecutionPlan` constructor). Unlike the normal exit this
        is *lossy*: boundary pruning's Lemma-1 guarantee only covers
        finished searches, so cross-fragment conversion costs were never
        compared — hence ``RunStats.degraded``.

        If the fragments do not cover the plan (budget died during the
        singleton phase) or the cost oracle itself is failing, fall back
        to a greedy single-pass assignment that prefers the platform
        feasible for the most operators — always constructible.
        """
        budget_reason = reason
        assignment: Dict[int, str] = {}
        try:
            covered = set()
            for enumeration in enums.values():
                costs = np.asarray(self.cost_fn(enumeration), dtype=np.float64)
                stats.rows_predicted += enumeration.n_vectors
                row = int(np.argmin(np.nan_to_num(costs, nan=np.inf)))
                assignment.update(enumeration.assignment_dict(row))
                covered |= set(enumeration.scope)
            if covered != set(ctx.plan.operators):
                raise EnumerationError(
                    f"partial coverage: {len(covered)}/{ctx.n_ops} operators"
                )
            xplan = ExecutionPlan(ctx.plan, assignment, ctx.registry)
        except Exception:
            xplan = self._greedy_plan(ctx)
            assignment = dict(xplan.assignment)
            reason = REASON_GREEDY

        final = self._single_row_enumeration(ctx, xplan, assignment)
        try:
            cost = float(
                np.asarray(self.cost_fn(final), dtype=np.float64)[0]
            )
            stats.rows_predicted += 1
        except Exception:
            cost = float("nan")
        stats.final_vectors = final.n_vectors
        stats.degraded = True
        stats.degradation = reason
        stats.latency_s = time.perf_counter() - started
        if tracer.enabled:
            tracer.count("resilience.degraded")
            if budget_reason == REASON_DEADLINE:
                tracer.count("resilience.deadline_hit")
        return EnumerationResult(
            execution_plan=xplan,
            predicted_cost=cost,
            final_enumeration=final,
            stats=stats,
        )

    def _single_row_enumeration(
        self,
        ctx: EnumerationContext,
        xplan: ExecutionPlan,
        assignment: Dict[int, str],
    ) -> PlanVectorEnumeration:
        """The one-vector enumeration encoding an assembled plan exactly."""
        features = self.schema.encode_execution_plan(xplan)[None, :]
        assignments = np.full((1, ctx.n_ops), -1, dtype=np.int8)
        names = list(ctx.registry.names)
        for op_id, name in assignment.items():
            assignments[0, op_id] = names.index(name)
        return PlanVectorEnumeration(
            ctx, frozenset(ctx.plan.operators), features, assignments
        )

    def _greedy_plan(self, ctx: EnumerationContext) -> ExecutionPlan:
        """A complete plan with no search: per operator, pick the feasible
        platform that supports the most operators overall (fewest forced
        conversions), breaking ties by platform index — deterministic."""
        support: Dict[int, int] = {}
        for alts in ctx.alternatives.values():
            for pi in alts:
                support[int(pi)] = support.get(int(pi), 0) + 1
        order = sorted(support, key=lambda pi: (-support[pi], pi))
        names = list(ctx.registry.names)
        assignment: Dict[int, str] = {}
        for op_id in ctx.plan.operators:
            feasible = {int(a) for a in ctx.alternatives[op_id]}
            assignment[op_id] = names[next(pi for pi in order if pi in feasible)]
        return ExecutionPlan(ctx.plan, assignment, ctx.registry)
