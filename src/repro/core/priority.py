"""Priority metrics for the plan enumeration (§V-A, Def. 3).

Robopt's priority of an enumeration ``V`` with children ``V1..Vm`` is
``|V| × Π|Vi|`` — the cardinality of the enumeration that concatenating
``V`` with all its children would produce. Processing high-priority
enumerations first maximizes the boundary-pruning effect: it front-loads
the concatenations that create the most vectors (and hence the most
pruning matches).

Changing the priority to the distance from the sources (resp. the sink)
recovers the classical top-down (resp. bottom-up) traversals (§V-B),
which the paper uses as baselines in Fig. 10.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.exceptions import EnumerationError
from repro.core.enumeration import EnumerationContext, PlanVectorEnumeration

#: priority(enumeration, children) -> float; larger = processed earlier.
PriorityFn = Callable[[PlanVectorEnumeration, List[PlanVectorEnumeration]], float]

#: Names of the built-in priority metrics.
PRIORITIES = ("robopt", "topdown", "bottomup")


def _longest_distances(ctx: EnumerationContext) -> Dict[str, Dict[int, int]]:
    """Longest-path distances of every operator from sources and to sinks."""
    plan = ctx.plan
    order = plan.topological_order()
    from_source: Dict[int, int] = {}
    for op_id in order:
        parents = ctx.op_parents[op_id]
        from_source[op_id] = (
            0 if not parents else 1 + max(from_source[p] for p in parents)
        )
    to_sink: Dict[int, int] = {}
    for op_id in reversed(order):
        children = ctx.op_children[op_id]
        to_sink[op_id] = 0 if not children else 1 + max(to_sink[c] for c in children)
    return {"from_source": from_source, "to_sink": to_sink}


def robopt_priority(
    enumeration: PlanVectorEnumeration, children: List[PlanVectorEnumeration]
) -> float:
    """Def. 3: the size of the enumeration a full concatenation would yield."""
    priority = float(enumeration.n_vectors)
    for child in children:
        priority *= child.n_vectors
    return priority


def make_priority(name: str, ctx: EnumerationContext) -> PriorityFn:
    """Build a priority function by name: ``robopt``, ``topdown``, ``bottomup``.

    * ``robopt`` — Def. 3 (cardinality of the would-be concatenation);
    * ``topdown`` — distance from the sources: sink-side subplans first;
    * ``bottomup`` — distance to the sink: source-side subplans first.
    """
    if name == "robopt":
        return robopt_priority
    distances = _longest_distances(ctx)
    if name == "topdown":
        table = distances["from_source"]
    elif name == "bottomup":
        table = distances["to_sink"]
    else:
        raise EnumerationError(
            f"unknown priority {name!r}; expected one of {PRIORITIES}"
        )

    def distance_priority(
        enumeration: PlanVectorEnumeration, children: List[PlanVectorEnumeration]
    ) -> float:
        return float(max(table[i] for i in enumeration.scope))

    return distance_priority
