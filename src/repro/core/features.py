"""The plan vector: feature layout and encoders (§IV-A).

A plan vector is a fixed-length array of features representing one
execution (sub)plan. The layout, in order:

1. **Topology features** (4 cells): counts of pipeline, juncture, replicate
   and loop topologies in the (sub)plan.
2. **Operator features** (one block per catalog kind, ``2k + 8`` cells for
   ``k`` platforms): total instance count; instance count per platform;
   instance count per topology (pipeline/juncture/replicate/loop
   membership); sum of UDF complexities; sum of input cardinalities; sum
   of output cardinalities; and — a reproduction extension — the input
   cardinality sum *per platform*, so a model can tell a heavy join on a
   single-node database from the same join on a cluster.
3. **Data movement features** (one block per conversion kind,
   ``k + 2`` cells): instance count per platform; sums of input and output
   cardinalities (weighted by loop iterations — a conversion inside a loop
   body moves data every iteration).
4. **Platform aggregate features** (4 cells per platform; reproduction
   extension): operator count, input/output cardinality sums and
   loop-invocation count per platform. The paper's per-kind cells spread
   each platform's total load over dozens of kind blocks; tree-based
   models cannot re-aggregate them, so signals like "this plan pushes
   10^11 tuples through the single-node Java engine" (an out-of-memory
   in the making) stay invisible. These four sums make per-platform load
   a first-class feature while remaining merge-additive.
5. **Dataset features** (2 cells): maximum input tuple size over the
   (sub)plan's sources, and the total number of loop iterations. The
   second cell is also an extension: the paper's workloads sweep the
   number of iterations (Fig. 12), so the model must see it.

A key structural fact this module exploits: for a fixed enumeration *scope*
(set of operator ids), every feature except the per-platform operator
counts and the conversion blocks is identical across all plan vectors of
the enumeration. We call those columns *scope-static*. ``merge`` adds
feature matrices (as in the paper) and then rewrites the scope-static
columns with their exact values for the merged scope, which generalizes the
paper's "keep the max of the two pipeline cells" rule.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

import numpy as np

from repro.exceptions import VectorizationError
from repro.rheem.conversion import CONVERSION_KINDS
from repro.rheem.execution_plan import ExecutionPlan
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.operators import KIND_NAMES
from repro.rheem.platforms import PlatformRegistry

#: Topology order inside topology cells and per-kind topology sub-blocks.
TOPOLOGIES = ("pipeline", "juncture", "replicate", "loop")


class FeatureSchema:
    """Fixed plan-vector layout for one platform registry.

    The schema depends only on the registry (platform count and order) and
    the global operator/conversion catalogs, so one schema serves every
    plan optimized against that registry — and the ML model trained on it.
    """

    def __init__(
        self,
        registry: PlatformRegistry,
        kind_names: Tuple[str, ...] = KIND_NAMES,
        conversion_kinds: Tuple[str, ...] = CONVERSION_KINDS,
    ):
        self.registry = registry
        self.kind_names = tuple(kind_names)
        self.conversion_kinds = tuple(conversion_kinds)
        k = len(registry)
        self.k = k

        self._kind_offset: Dict[str, int] = {}
        self._conv_offset: Dict[str, int] = {}

        cursor = 4  # topology cells occupy [0, 4)
        self._op_block_size = 2 * k + 8
        for name in self.kind_names:
            self._kind_offset[name] = cursor
            cursor += self._op_block_size
        self._conv_block_size = k + 2
        for name in self.conversion_kinds:
            self._conv_offset[name] = cursor
            cursor += self._conv_block_size
        # Per-platform aggregate block (reproduction extension, see module
        # docstring): operator count, input/output cardinality sums,
        # working-set bytes, loop-invocation count and loop work per
        # platform. These summarize the load each platform carries, which
        # tree models cannot reassemble from the per-kind cells alone.
        self._platform_agg_offset = cursor
        self._platform_agg_cells = 6
        cursor += self._platform_agg_cells * k
        self.tuple_size_cell = cursor
        self.loop_iterations_cell = cursor + 1
        self.n_features = cursor + 2

        self._static_mask = self._build_static_mask()
        self._dynamic_cols = np.flatnonzero(~self._static_mask)

    # ------------------------------------------------------------------
    # Layout accessors
    # ------------------------------------------------------------------
    def kind_offset(self, kind_name: str) -> int:
        """Start column of an operator kind's block."""
        try:
            return self._kind_offset[kind_name]
        except KeyError:
            raise VectorizationError(
                f"operator kind {kind_name!r} is not in the schema"
            ) from None

    def op_total_cell(self, kind_name: str) -> int:
        return self.kind_offset(kind_name)

    def op_platform_cell(self, kind_name: str, platform_idx: int) -> int:
        return self.kind_offset(kind_name) + 1 + platform_idx

    def op_topology_cell(self, kind_name: str, topology_idx: int) -> int:
        return self.kind_offset(kind_name) + 1 + self.k + topology_idx

    def op_udf_cell(self, kind_name: str) -> int:
        return self.kind_offset(kind_name) + 5 + self.k

    def op_input_card_cell(self, kind_name: str) -> int:
        return self.kind_offset(kind_name) + 6 + self.k

    def op_output_card_cell(self, kind_name: str) -> int:
        return self.kind_offset(kind_name) + 7 + self.k

    def op_platform_in_card_cell(self, kind_name: str, platform_idx: int) -> int:
        """Input-cardinality sum of this kind's instances on one platform.

        A reproduction extension: the paper's per-kind cardinality sums are
        platform-agnostic, so a model cannot tell a heavy join placed on a
        single-node database from the same join on a 10-node cluster. This
        cell is the per-platform split of the per-kind input cardinality —
        merge-additive like every other dynamic cell."""
        return self.kind_offset(kind_name) + 8 + self.k + platform_idx

    def conv_offset(self, conv_kind: str) -> int:
        try:
            return self._conv_offset[conv_kind]
        except KeyError:
            raise VectorizationError(
                f"conversion kind {conv_kind!r} is not in the schema"
            ) from None

    def conv_platform_cell(self, conv_kind: str, platform_idx: int) -> int:
        return self.conv_offset(conv_kind) + platform_idx

    def conv_input_card_cell(self, conv_kind: str) -> int:
        return self.conv_offset(conv_kind) + self.k

    def conv_output_card_cell(self, conv_kind: str) -> int:
        return self.conv_offset(conv_kind) + self.k + 1

    def platform_count_cell(self, platform_idx: int) -> int:
        """Number of operators running on a platform."""
        return self._platform_agg_offset + self._platform_agg_cells * platform_idx

    def platform_in_card_cell(self, platform_idx: int) -> int:
        """Sum of input cardinalities of the operators on a platform."""
        return self.platform_count_cell(platform_idx) + 1

    def platform_out_card_cell(self, platform_idx: int) -> int:
        """Sum of output cardinalities of the operators on a platform."""
        return self.platform_count_cell(platform_idx) + 2

    def platform_bytes_cell(self, platform_idx: int) -> int:
        """Working-set bytes pushed through a platform (card × tuple size).

        Directly exposes the out-of-memory risk of local platforms: trees
        cannot multiply two features, so the product must be a cell.
        """
        return self.platform_count_cell(platform_idx) + 3

    def platform_loop_cell(self, platform_idx: int) -> int:
        """Sum of loop invocations of the in-loop operators on a platform."""
        return self.platform_count_cell(platform_idx) + 4

    def platform_loop_work_cell(self, platform_idx: int) -> int:
        """Sum of iterations × input cardinality of in-loop operators.

        The total per-loop work a platform performs — the quantity that
        decides where iterative operators belong (Fig. 12)."""
        return self.platform_count_cell(platform_idx) + 5

    def op_assignment_delta(
        self, plan: LogicalPlan, op_id: int, platform_idx: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Feature deltas of placing one operator on one platform.

        Used by both the singleton enumeration and the direct plan encoder,
        which keeps the two representations provably identical.
        """
        op = plan.operators[op_id]
        in_card, out_card = plan.cardinalities()[op_id]
        tuple_size = plan.average_input_tuple_size() or 100.0
        cols = [
            self.op_platform_cell(op.kind_name, platform_idx),
            self.op_platform_in_card_cell(op.kind_name, platform_idx),
            self.platform_count_cell(platform_idx),
            self.platform_in_card_cell(platform_idx),
            self.platform_out_card_cell(platform_idx),
            self.platform_bytes_cell(platform_idx),
        ]
        vals = [1.0, in_card, 1.0, in_card, out_card, max(in_card, out_card) * tuple_size]
        if plan.in_loop(op_id):
            iterations = float(plan.loop_iterations(op_id))
            cols.append(self.platform_loop_cell(platform_idx))
            vals.append(iterations)
            if op.kind_name in ("Sample", "ShufflePartitionSample"):
                # Sampling operators keep state across iterations: they
                # materialize their input once and then draw batches, so
                # their loop work is amortized, not iterations × input.
                loop_work = in_card + (iterations - 1.0) * out_card
            else:
                loop_work = iterations * in_card
            cols.append(self.platform_loop_work_cell(platform_idx))
            vals.append(loop_work)
        return np.asarray(cols, dtype=np.int64), np.asarray(vals, dtype=np.float64)

    def conv_block_bounds(self) -> Tuple[int, int]:
        """``[lo, hi)`` column range of the (contiguous) conversion blocks."""
        lo = self._conv_offset[self.conversion_kinds[0]]
        hi = self._conv_offset[self.conversion_kinds[-1]] + self._conv_block_size
        return lo, hi

    def conversion_tables(self) -> Dict[bool, Tuple[np.ndarray, np.ndarray]]:
        """Dense pair-coded conversion deltas, one table pair per loop flag.

        For each ``in_loop`` flag this returns ``(base, scale)`` arrays of
        shape ``((k+1)**2, n_conv_cols)`` over the conversion-block columns
        (see :meth:`conv_block_bounds`). Row ``(pi+1)*(k+1)+(pj+1)`` holds
        the feature delta of moving data from platform ``pi`` to ``pj``:
        ``base`` carries the per-step instance counts, ``scale`` marks the
        cardinality cells, so the full delta for one plan edge is
        ``base + moved * scale`` with ``moved = cardinality x iterations``.

        The tables depend only on the schema (registry + conversion rules),
        are built once per schema on first use, and are therefore shared by
        every enumeration context — and, through the serve layer's
        long-lived optimizers, by every request hitting one worker. This
        hoists the O(edges x k^2) Python ``conversion_path`` reconstruction
        out of ``EnumerationContext`` entirely.
        """
        cached = getattr(self, "_conversion_tables", None)
        if cached is not None:
            return cached
        from repro.rheem.conversion import conversion_path

        k = self.k
        lo, hi = self.conv_block_bounds()
        tables: Dict[bool, Tuple[np.ndarray, np.ndarray]] = {}
        for in_loop in (False, True):
            base = np.zeros(((k + 1) ** 2, hi - lo), dtype=np.float64)
            scale = np.zeros_like(base)
            for pi in range(k):
                for pj in range(k):
                    if pi == pj:
                        continue
                    code = (pi + 1) * (k + 1) + (pj + 1)
                    steps = conversion_path(
                        self.registry[pi], self.registry[pj], in_loop=in_loop
                    )
                    for step in steps:
                        p_idx = self.registry.index(step.platform)
                        base[code, self.conv_platform_cell(step.kind, p_idx) - lo] += 1.0
                        scale[code, self.conv_input_card_cell(step.kind) - lo] += 1.0
                        scale[code, self.conv_output_card_cell(step.kind) - lo] += 1.0
            tables[in_loop] = (base, scale)
        self._conversion_tables = tables
        return tables

    @property
    def static_mask(self) -> np.ndarray:
        """Boolean mask of scope-static columns."""
        return self._static_mask

    @property
    def dynamic_columns(self) -> np.ndarray:
        """Indices of assignment-dependent columns."""
        return self._dynamic_cols

    def _build_static_mask(self) -> np.ndarray:
        mask = np.zeros(self.n_features, dtype=bool)
        mask[0:4] = True  # topology cells
        for name in self.kind_names:
            mask[self.op_total_cell(name)] = True
            for t in range(4):
                mask[self.op_topology_cell(name, t)] = True
            mask[self.op_udf_cell(name)] = True
            mask[self.op_input_card_cell(name)] = True
            mask[self.op_output_card_cell(name)] = True
        mask[self.tuple_size_cell] = True
        mask[self.loop_iterations_cell] = True
        return mask

    def feature_names(self) -> List[str]:
        """Human-readable names for every column (debugging/introspection)."""
        names = [""] * self.n_features
        for t, topo in enumerate(TOPOLOGIES):
            names[t] = f"topology.{topo}"
        platforms = self.registry.names
        for kind in self.kind_names:
            names[self.op_total_cell(kind)] = f"op.{kind}.total"
            for i, p in enumerate(platforms):
                names[self.op_platform_cell(kind, i)] = f"op.{kind}.on.{p}"
            for t, topo in enumerate(TOPOLOGIES):
                names[self.op_topology_cell(kind, t)] = f"op.{kind}.in.{topo}"
            names[self.op_udf_cell(kind)] = f"op.{kind}.udf_sum"
            names[self.op_input_card_cell(kind)] = f"op.{kind}.in_card"
            names[self.op_output_card_cell(kind)] = f"op.{kind}.out_card"
            for i, p in enumerate(platforms):
                names[self.op_platform_in_card_cell(kind, i)] = (
                    f"op.{kind}.in_card.on.{p}"
                )
        for conv in self.conversion_kinds:
            for i, p in enumerate(platforms):
                names[self.conv_platform_cell(conv, i)] = f"conv.{conv}.on.{p}"
            names[self.conv_input_card_cell(conv)] = f"conv.{conv}.in_card"
            names[self.conv_output_card_cell(conv)] = f"conv.{conv}.out_card"
        for i, p in enumerate(platforms):
            names[self.platform_count_cell(i)] = f"platform.{p}.n_ops"
            names[self.platform_in_card_cell(i)] = f"platform.{p}.in_card"
            names[self.platform_out_card_cell(i)] = f"platform.{p}.out_card"
            names[self.platform_bytes_cell(i)] = f"platform.{p}.bytes"
            names[self.platform_loop_cell(i)] = f"platform.{p}.loop_invocations"
            names[self.platform_loop_work_cell(i)] = f"platform.{p}.loop_work"
        names[self.tuple_size_cell] = "dataset.tuple_size"
        names[self.loop_iterations_cell] = "dataset.loop_iterations"
        return names

    # ------------------------------------------------------------------
    # Encoders
    # ------------------------------------------------------------------
    def empty(self) -> np.ndarray:
        return np.zeros(self.n_features, dtype=np.float64)

    def _op_topology_membership(self, plan: LogicalPlan, op_id: int) -> List[int]:
        """Topology indices an operator belongs to (§IV-A operator features)."""
        op = plan.operators[op_id]
        member: List[int] = []
        if op.kind.arity_in >= 2:
            member.append(1)  # juncture
        elif len(plan.children(op_id)) >= 2:
            member.append(2)  # replicate
        else:
            member.append(0)  # pipeline
        if plan.in_loop(op_id):
            member.append(3)
        return member

    def static_features(
        self, plan: LogicalPlan, scope: Optional[Iterable[int]] = None
    ) -> np.ndarray:
        """The scope-static part of the plan vector for a (sub)plan.

        Dynamic columns (per-platform counts, conversion blocks) are zero.
        """
        ids = frozenset(plan.operators) if scope is None else frozenset(scope)
        v = self.empty()
        topo = plan.topology_counts(ids)
        v[0:4] = topo.as_tuple()
        cards = plan.cardinalities()
        # Canonical accumulation order: iterating the scope sorted by
        # operator id pins the floating-point summation order of the
        # per-kind cardinality cells, so the vectorized static kernel in
        # EnumerationContext can reproduce this vector bit-identically.
        for op_id in sorted(ids):
            op = plan.operators[op_id]
            kind = op.kind_name
            v[self.op_total_cell(kind)] += 1.0
            for t in self._op_topology_membership(plan, op_id):
                v[self.op_topology_cell(kind, t)] += 1.0
            v[self.op_udf_cell(kind)] += float(int(op.udf_complexity))
            in_card, out_card = cards[op_id]
            v[self.op_input_card_cell(kind)] += in_card
            v[self.op_output_card_cell(kind)] += out_card
        tuple_sizes = [
            plan.datasets[i].tuple_size for i in ids if i in plan.datasets
        ]
        v[self.tuple_size_cell] = max(tuple_sizes) if tuple_sizes else 0.0
        v[self.loop_iterations_cell] = float(
            sum(spec.iterations for spec in plan.loops if spec.body & ids)
        )
        return v

    def encode_execution_plan(self, xplan: ExecutionPlan) -> np.ndarray:
        """Directly encode a complete execution plan into a plan vector.

        This is the per-plan transformation the Rheem-ML baseline performs
        on every ML invocation — and exactly the vector the vectorized
        enumeration assembles through merges (tested as an invariant).
        """
        if xplan.registry is not self.registry and list(
            xplan.registry.names
        ) != list(self.registry.names):
            raise VectorizationError(
                "execution plan registry does not match the schema registry"
            )
        plan = xplan.plan
        v = self.static_features(plan)
        for op_id, platform_name in xplan.assignment.items():
            pi = self.registry.index(platform_name)
            cols, vals = self.op_assignment_delta(plan, op_id, pi)
            v[cols] += vals
        for conv in xplan.conversions():
            pi = self.registry.index(conv.platform)
            v[self.conv_platform_cell(conv.kind, pi)] += 1.0
            moved = conv.cardinality * conv.iterations
            v[self.conv_input_card_cell(conv.kind)] += moved
            v[self.conv_output_card_cell(conv.kind)] += moved
        return v

    def encode_partial(
        self,
        plan: LogicalPlan,
        scope: Iterable[int],
        assignment,
    ) -> np.ndarray:
        """Encode a partial plan (a subplan object) into a plan vector.

        This is the per-subplan transformation the Rheem-ML baseline pays
        on every pruning step (§VII-B measured it at ~47% of its
        optimization time). Covers the operators in ``scope`` and the
        conversions on scope-internal edges.
        """
        scope = frozenset(scope)
        v = self.static_features(plan, scope)
        for op_id in scope:
            pi = self.registry.index(assignment[op_id])
            cols, vals = self.op_assignment_delta(plan, op_id, pi)
            v[cols] += vals

        from repro.rheem.conversion import conversion_path

        cards = plan.cardinalities()
        for u, child in plan.edges:
            if u not in scope or child not in scope:
                continue
            src = self.registry[assignment[u]]
            dst = self.registry[assignment[child]]
            if src.name == dst.name:
                continue
            in_loop = plan.in_loop(u) and plan.in_loop(child)
            iters = min(plan.loop_iterations(u), plan.loop_iterations(child))
            moved = cards[u][1] * iters
            for step in conversion_path(src, dst, in_loop=in_loop):
                pi = self.registry.index(step.platform)
                v[self.conv_platform_cell(step.kind, pi)] += 1.0
                v[self.conv_input_card_cell(step.kind)] += moved
                v[self.conv_output_card_cell(step.kind)] += moved
        return v

    def encode_batch(self, xplans: Iterable[ExecutionPlan]) -> np.ndarray:
        """Encode several execution plans into a feature matrix."""
        rows = [self.encode_execution_plan(x) for x in xplans]
        if not rows:
            return np.zeros((0, self.n_features), dtype=np.float64)
        return np.vstack(rows)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FeatureSchema(platforms={self.registry.names}, "
            f"n_features={self.n_features})"
        )
