"""Plan vector enumerations (Def. 1) and the shared enumeration context.

A :class:`PlanVectorEnumeration` ``V = (s, V)`` couples a *scope* ``s`` (the
set of logical operator ids it covers) with a set of plan vectors, stored as
one contiguous feature matrix — plus an *assignments* matrix that records,
for every vector, which platform each in-scope operator runs on. The
assignments matrix is what makes the whole pipeline vectorized: pruning
footprints, conversion deltas on merge, switch counting and ``unvectorize``
are all column slices of it.

The :class:`EnumerationContext` precomputes everything that is per-plan
rather than per-enumeration: feasible platforms per operator, edge metadata
(cardinality, loop membership) and the per-edge conversion feature deltas
for every ordered platform pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.exceptions import EnumerationError, ScopeError
from repro.core.features import FeatureSchema
from repro.rheem.conversion import conversion_path
from repro.rheem.execution_plan import feasible_platforms
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.platforms import PlatformRegistry


@dataclass(frozen=True)
class EdgeInfo:
    """Precomputed metadata for one plan edge.

    ``deltas[(pi, pj)]`` is a ``(columns, values)`` pair: the conversion
    feature columns to bump (and by how much) when the producer runs on
    platform index ``pi`` and the consumer on ``pj``.
    """

    src: int
    dst: int
    cardinality: float
    in_loop: bool
    iterations: int
    deltas: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]]


class EnumerationContext:
    """Per-plan state shared by all enumerations of one optimization run."""

    def __init__(
        self,
        plan: LogicalPlan,
        registry: PlatformRegistry,
        schema: Optional[FeatureSchema] = None,
    ):
        self.plan = plan
        self.registry = registry
        self.schema = schema if schema is not None else FeatureSchema(registry)
        if list(self.schema.registry.names) != list(registry.names):
            raise EnumerationError("schema registry does not match plan registry")
        self.n_ops = plan.n_operators
        #: feasible platform indices per operator id
        self.alternatives: Dict[int, np.ndarray] = {
            op_id: np.array(
                [registry.index(name) for name in feasible_platforms(plan, registry, op_id)],
                dtype=np.int8,
            )
            for op_id in plan.operators
        }
        # Cardinalities are per-plan, not per-edge: estimate them once here
        # instead of re-deriving the full map inside every _edge_info call.
        self._cards = plan.cardinalities()
        self.edges: List[EdgeInfo] = [
            self._edge_info(u, v) for u, v in plan.edges
        ]
        self._edges_by_pair: Dict[Tuple[int, int], EdgeInfo] = {
            (e.src, e.dst): e for e in self.edges
        }
        # Per-operator edge index so crossing_edges can walk one scope's
        # incident edges instead of scanning every plan edge per merge.
        self._edges_by_op: Dict[int, List[EdgeInfo]] = {
            op_id: [] for op_id in plan.operators
        }
        for e in self.edges:
            self._edges_by_op[e.src].append(e)
            self._edges_by_op[e.dst].append(e)
        self._static_cache: Dict[FrozenSet[int], np.ndarray] = {}
        # Adjacency over operator ids (forward edges), used for boundaries.
        self.op_children: Dict[int, Tuple[int, ...]] = {
            i: tuple(plan.children(i)) for i in plan.operators
        }
        self.op_parents: Dict[int, Tuple[int, ...]] = {
            i: tuple(plan.parents(i)) for i in plan.operators
        }

    def _edge_info(self, u: int, v: int) -> EdgeInfo:
        plan, schema, registry = self.plan, self.schema, self.registry
        card = self._cards[u][1]
        in_loop = plan.in_loop(u) and plan.in_loop(v)
        iterations = min(plan.loop_iterations(u), plan.loop_iterations(v))
        deltas: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}
        k = len(registry)
        for pi in range(k):
            for pj in range(k):
                if pi == pj:
                    continue
                steps = conversion_path(registry[pi], registry[pj], in_loop=in_loop)
                cols: List[int] = []
                vals: List[float] = []
                moved = card * iterations
                for step in steps:
                    p_idx = registry.index(step.platform)
                    cols.append(schema.conv_platform_cell(step.kind, p_idx))
                    vals.append(1.0)
                    cols.append(schema.conv_input_card_cell(step.kind))
                    vals.append(moved)
                    cols.append(schema.conv_output_card_cell(step.kind))
                    vals.append(moved)
                if cols:
                    deltas[(pi, pj)] = (
                        np.asarray(cols, dtype=np.int64),
                        np.asarray(vals, dtype=np.float64),
                    )
        return EdgeInfo(u, v, card, in_loop, iterations, deltas)

    def edge(self, u: int, v: int) -> EdgeInfo:
        try:
            return self._edges_by_pair[(u, v)]
        except KeyError:
            raise EnumerationError(f"({u}, {v}) is not a plan edge") from None

    def static_features(self, scope: FrozenSet[int]) -> np.ndarray:
        """Cached scope-static feature vector for a scope."""
        scope = frozenset(scope)
        hit = self._static_cache.get(scope)
        if hit is None:
            hit = self.schema.static_features(self.plan, scope)
            self._static_cache[scope] = hit
        return hit

    def crossing_edges(
        self, scope_a: FrozenSet[int], scope_b: FrozenSet[int]
    ) -> List[EdgeInfo]:
        """Plan edges with one endpoint in each scope (either direction).

        Walks the per-operator edge index of the smaller scope — crossing
        edges have exactly one endpoint there (scopes are disjoint during
        enumeration), so each qualifying edge is reported once.
        """
        if len(scope_b) < len(scope_a):
            scope_a, scope_b = scope_b, scope_a
        out = []
        for op_id in scope_a:
            for e in self._edges_by_op[op_id]:
                other = e.dst if e.src == op_id else e.src
                if other in scope_b:
                    out.append(e)
        return out


class PlanVectorEnumeration:
    """A set of plan vectors for one (sub)plan scope (Def. 1).

    Attributes
    ----------
    scope:
        Frozen set of logical operator ids covered.
    features:
        ``(n_vectors, n_features)`` float64 matrix — directly consumable by
        the ML model, no transformation required.
    assignments:
        ``(n_vectors, n_ops)`` int8 matrix of platform indices; ``-1``
        outside the scope.
    """

    __slots__ = ("ctx", "scope", "features", "assignments", "_boundary")

    def __init__(
        self,
        ctx: EnumerationContext,
        scope: FrozenSet[int],
        features: np.ndarray,
        assignments: np.ndarray,
    ):
        if features.ndim != 2 or assignments.ndim != 2:
            raise EnumerationError("features/assignments must be 2-D")
        if features.shape[0] != assignments.shape[0]:
            raise EnumerationError(
                f"row mismatch: {features.shape[0]} feature rows vs "
                f"{assignments.shape[0]} assignment rows"
            )
        if assignments.shape[1] != ctx.n_ops:
            raise EnumerationError(
                f"assignments must have one column per plan operator "
                f"({ctx.n_ops}), got {assignments.shape[1]}"
            )
        self.ctx = ctx
        self.scope = frozenset(scope)
        self.features = features
        self.assignments = assignments
        self._boundary: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @property
    def n_vectors(self) -> int:
        return self.features.shape[0]

    def __len__(self) -> int:
        return self.n_vectors

    @property
    def is_complete(self) -> bool:
        """Whether the scope covers the whole logical plan."""
        return len(self.scope) == self.ctx.n_ops

    def boundary_ids(self) -> np.ndarray:
        """Sorted ids of the scope's boundary operators (cached).

        A boundary operator is adjacent (via any plan edge) to an operator
        outside the scope (§IV-E).
        """
        if self._boundary is None:
            scope = self.scope
            boundary = set()
            for i in scope:
                neighbours = self.ctx.op_children[i] + self.ctx.op_parents[i]
                if any(n not in scope for n in neighbours):
                    boundary.add(i)
            self._boundary = np.array(sorted(boundary), dtype=np.int64)
        return self._boundary

    def select(self, row_indices: np.ndarray) -> "PlanVectorEnumeration":
        """A new enumeration keeping only the given vector rows.

        The result never aliases this enumeration's matrices: fancy
        (integer-array) indexing copies by construction, and slice/scalar
        indexing — which would return views — is copied explicitly.
        Callers may therefore mutate a selection (or cache it) without
        corrupting the source enumeration, and vice versa.
        """
        features = self.features[row_indices]
        assignments = self.assignments[row_indices]
        if features.base is not None:
            features = features.copy()
        if assignments.base is not None:
            assignments = assignments.copy()
        return PlanVectorEnumeration(
            self.ctx,
            self.scope,
            features,
            assignments,
        )

    def assignment_dict(self, row: int) -> Dict[int, str]:
        """Platform-name assignment of one vector (scope operators only)."""
        names = self.ctx.registry.names
        return {
            op_id: names[int(self.assignments[row, op_id])] for op_id in self.scope
        }

    def switch_counts(self) -> np.ndarray:
        """Per-vector number of platform switches on scope-internal edges."""
        counts = np.zeros(self.n_vectors, dtype=np.int64)
        for e in self.ctx.edges:
            if e.src in self.scope and e.dst in self.scope:
                counts += (
                    self.assignments[:, e.src] != self.assignments[:, e.dst]
                ).astype(np.int64)
        return counts

    def check_scope_disjoint(self, other: "PlanVectorEnumeration") -> None:
        overlap = self.scope & other.scope
        if overlap:
            raise ScopeError(
                f"enumeration scopes overlap on operators {sorted(overlap)}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PlanVectorEnumeration(scope={sorted(self.scope)}, "
            f"n_vectors={self.n_vectors})"
        )
