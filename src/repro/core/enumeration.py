"""Plan vector enumerations (Def. 1) and the shared enumeration context.

A :class:`PlanVectorEnumeration` ``V = (s, V)`` couples a *scope* ``s`` (the
set of logical operator ids it covers) with a set of plan vectors, stored as
one contiguous feature matrix — plus an *assignments* matrix that records,
for every vector, which platform each in-scope operator runs on. The
assignments matrix is what makes the whole pipeline vectorized: pruning
footprints, conversion deltas on merge, switch counting and ``unvectorize``
are all column slices of it.

The :class:`EnumerationContext` precomputes everything that is per-plan
rather than per-enumeration: feasible platforms per operator, edge metadata
(cardinality, loop membership, the pair-coded conversion delta table) and
the vectorized static-feature kernel. The expensive, plan-independent parts
— the conversion rule table — live one level higher, on the
:class:`~repro.core.features.FeatureSchema`, so a long-lived optimizer (the
serve layer keeps one per worker) pays for them exactly once.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from repro.exceptions import EnumerationError, ScopeError
from repro.core.features import FeatureSchema
from repro.rheem.conversion import conversion_path
from repro.rheem.execution_plan import feasible_platforms
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.platforms import PlatformRegistry


class EdgeInfo:
    """Precomputed metadata for one plan edge.

    ``conv_table`` is the dense pair-coded conversion delta table of shape
    ``((k+1)**2, n_conv_cols)``: row ``(pi+1)*(k+1)+(pj+1)`` is the feature
    delta (over the conversion-block columns) of running the producer on
    platform ``pi`` and the consumer on ``pj``. Same-platform rows are all
    zero, so ``merge`` applies one gather + one in-place add per crossing
    edge with no masking.

    ``deltas`` exposes the legacy sparse view — ``{(pi, pj): (columns,
    values)}`` over absolute feature columns — reconstructed lazily for
    introspection and differential tests; the hot path never touches it.
    """

    __slots__ = (
        "src",
        "dst",
        "cardinality",
        "in_loop",
        "iterations",
        "conv_table",
        "loses_head",
        "_schema",
        "_deltas",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        cardinality: float,
        in_loop: bool,
        iterations: int,
        conv_table: np.ndarray,
        schema: FeatureSchema,
    ):
        self.src = src
        self.dst = dst
        self.cardinality = cardinality
        self.in_loop = in_loop
        self.iterations = iterations
        self.conv_table = conv_table
        # Whether merging across this edge dissolves exactly one pipeline
        # head (chain child joining its sole eligible parent). Filled in
        # when the static kernel is built; see EnumerationContext._kernel.
        self.loses_head = False
        self._schema = schema
        self._deltas: Optional[Dict] = None

    @property
    def deltas(self) -> Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]]:
        if self._deltas is None:
            schema = self._schema
            registry = schema.registry
            k = len(registry)
            deltas: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}
            moved = self.cardinality * self.iterations
            for pi in range(k):
                for pj in range(k):
                    if pi == pj:
                        continue
                    steps = conversion_path(
                        registry[pi], registry[pj], in_loop=self.in_loop
                    )
                    cols: List[int] = []
                    vals: List[float] = []
                    for step in steps:
                        p_idx = registry.index(step.platform)
                        cols.append(schema.conv_platform_cell(step.kind, p_idx))
                        vals.append(1.0)
                        cols.append(schema.conv_input_card_cell(step.kind))
                        vals.append(moved)
                        cols.append(schema.conv_output_card_cell(step.kind))
                        vals.append(moved)
                    if cols:
                        deltas[(pi, pj)] = (
                            np.asarray(cols, dtype=np.int64),
                            np.asarray(vals, dtype=np.float64),
                        )
            self._deltas = deltas
        return self._deltas

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EdgeInfo({self.src} -> {self.dst}, card={self.cardinality})"


class _OpArrays:
    """Columnar per-operator metadata shared by the per-run kernels.

    Both the static kernel and the singleton-delta builder need the same
    handful of per-operator scalars; materializing them once per context
    (with per-kind memoization for the kind-derived ones) keeps the
    amortized setup of an optimization run to a single pass over the
    operators.
    """

    __slots__ = (
        "kind_base",
        "in_card",
        "out_card",
        "udf",
        "juncture",
        "amortized",
        "in_loop",
        "iterations",
    )

    def __init__(self, plan: LogicalPlan, schema: FeatureSchema, cards):
        n = plan.n_operators
        ops = plan.operators
        kind_base = np.empty(n, dtype=np.int64)
        udf = np.empty(n, dtype=np.float64)
        juncture = np.empty(n, dtype=bool)
        amortized = np.empty(n, dtype=bool)
        kind_cache: Dict[str, Tuple[int, bool, bool]] = {}
        for i in range(n):
            op = ops[i]
            kind_name = op.kind_name
            meta = kind_cache.get(kind_name)
            if meta is None:
                meta = (
                    schema.kind_offset(kind_name),
                    op.kind.arity_in >= 2,
                    kind_name in ("Sample", "ShufflePartitionSample"),
                )
                kind_cache[kind_name] = meta
            kind_base[i] = meta[0]
            juncture[i] = meta[1]
            amortized[i] = meta[2]
            udf[i] = float(int(op.udf_complexity))
        self.kind_base = kind_base
        self.udf = udf
        self.juncture = juncture
        self.amortized = amortized
        self.in_card = np.array([cards[i][0] for i in range(n)], dtype=np.float64)
        self.out_card = np.array([cards[i][1] for i in range(n)], dtype=np.float64)
        if plan.loops:
            self.in_loop = np.array(
                [plan.in_loop(i) for i in range(n)], dtype=bool
            )
            self.iterations = np.array(
                [float(plan.loop_iterations(i)) for i in range(n)]
            )
        else:
            self.in_loop = np.zeros(n, dtype=bool)
            self.iterations = np.ones(n, dtype=np.float64)


def compute_boundary(ctx: "EnumerationContext", scope: FrozenSet[int]) -> np.ndarray:
    """Sorted ids of the boundary operators of a scope (§IV-E, Def. 2).

    A boundary operator is adjacent (via any plan edge) to an operator
    outside the scope. This is the single implementation behind both
    :meth:`PlanVectorEnumeration.boundary_ids` and
    :func:`repro.core.pruning.boundary_operators`.
    """
    scope = frozenset(scope)
    neighbours = ctx.op_neighbours
    boundary = [
        i for i in scope if any(n not in scope for n in neighbours[i])
    ]
    boundary.sort()
    return np.array(boundary, dtype=np.int64)


class _StaticKernel:
    """Vectorized scope-static feature computation for one plan.

    Reproduces :meth:`FeatureSchema.static_features` bit-identically: each
    feature cell receives at most one contribution per operator, and the
    single fused ``np.bincount`` accumulates contributions in ascending
    operator-id order — exactly the summation order of the (sorted)
    reference loop. Everything scope-dependent reduces to one boolean mask
    and a handful of array reductions, which turns the per-merge static
    rewrite from ~O(scope) Python into a few microseconds of NumPy.
    """

    def __init__(
        self, plan: LogicalPlan, schema: FeatureSchema, ctx: "EnumerationContext"
    ):
        n = plan.n_operators
        k = schema.k
        self.n_features = schema.n_features
        self.tuple_size_cell = schema.tuple_size_cell
        self.loop_iterations_cell = schema.loop_iterations_cell

        meta = ctx._op_arrays()
        kind_base = meta.kind_base
        in_card = meta.in_card
        out_card = meta.out_card
        udf = meta.udf
        juncture = meta.juncture
        in_loop = meta.in_loop
        replicate = np.fromiter(
            (len(ctx.op_children[i]) >= 2 for i in range(n)), dtype=bool, count=n
        )
        self.juncture = juncture
        self.replicate = replicate
        # Chain membership is intrinsic to the operator (the in-scope
        # consumer bound is implied by the full-plan one), so pipeline
        # counting reduces to counting chain *heads* against a static
        # parent-eligibility flag.
        eligible = ~juncture & ~replicate
        self.eligible = eligible
        parent_idx = np.zeros(n, dtype=np.int64)
        parent_eligible = np.zeros(n, dtype=bool)
        exact = True
        for i in range(n):
            parents = ctx.op_parents[i]
            if len(parents) == 1:
                parent_idx[i] = parents[0]
                parent_eligible[i] = bool(eligible[parents[0]])
            elif len(parents) >= 2 and eligible[i]:
                # A chain-eligible operator with several parents makes the
                # head rule scope-dependent in a way this kernel does not
                # model (the reference counts *in-scope* parents). Plans
                # built through the normal arity-checked builders never hit
                # this; fall back to the reference implementation if one
                # does rather than risk a divergent static vector.
                exact = False
        self.parent_idx = parent_idx
        self.parent_eligible = parent_eligible
        self.exact = exact
        self._plan = plan
        self._schema = schema

        self.has_loops = bool(plan.loops)
        if plan.loops:
            self.loop_member = np.array(
                [[i in spec.body for i in range(n)] for spec in plan.loops],
                dtype=bool,
            ).reshape(len(plan.loops), n)
        else:
            self.loop_member = np.zeros((0, n), dtype=bool)
        self.loop_iterations = np.array(
            [float(spec.iterations) for spec in plan.loops], dtype=np.float64
        )

        primary = np.where(juncture, 1, np.where(replicate, 2, 0))
        dummy = self.n_features  # weight-0 sink cell, trimmed after bincount
        loop_col = np.where(in_loop, kind_base + 1 + k + 3, dummy)
        zeros = np.zeros(n, dtype=np.int64)
        self.contrib_cols = np.stack(
            [
                kind_base,  # op total
                kind_base + 1 + k + primary,  # primary topology membership
                loop_col,  # loop topology membership (dummy outside loops)
                kind_base + 5 + k,  # udf sum
                kind_base + 6 + k,  # input cardinality sum
                kind_base + 7 + k,  # output cardinality sum
                zeros,  # chain eligibility -> pipeline cell (heads fix-up)
                zeros + 1,  # juncture count
                zeros + 2,  # replicate count
            ],
            axis=1,
        )
        self.contrib_wts = np.stack(
            [
                np.ones(n),
                np.ones(n),
                in_loop.astype(np.float64),
                udf,
                in_card,
                out_card,
                eligible.astype(np.float64),
                juncture.astype(np.float64),
                replicate.astype(np.float64),
            ],
            axis=1,
        )
        # Non-head eligibles: chain-eligible with an eligible sole parent;
        # heads(S) = sum(eligible in S) - #those whose parent is also in S.
        self.chained = eligible & parent_eligible
        # When every chained operator's parent has a smaller id (true for
        # plans built in topological construction order), membership of the
        # parent in a contiguous scope [lo, hi] collapses to ``parent >=
        # lo``: one comparison against this precomputed vector (-1 for
        # non-chained operators, excluded since lo >= 0).
        chained_ids = np.flatnonzero(self.chained)
        self.chain_parents_below = bool(
            (parent_idx[chained_ids] < chained_ids).all()
        )
        self.chain_parent = np.where(self.chained, parent_idx, -1)
        # Order-sensitive accumulated cells: the per-kind udf/cardinality
        # sums are the only static cells whose float accumulation depends
        # on summation order (every other accumulated cell sums small
        # integers, which IEEE addition reproduces exactly in any order).
        # Keeping their contributing operators and values as plain Python
        # lists lets a merge refold just these cells sequentially —
        # ``sum()`` performs the identical left fold from the same +0.0
        # start as the bincount — instead of re-running the whole kernel.
        by_kind: Dict[int, List[int]] = {}
        for i in range(n):
            by_kind.setdefault(int(kind_base[i]), []).append(i)
        card_cells: List[int] = []
        card_kinds: List[Tuple[List[int], Tuple[List[float], ...]]] = []
        for kb in sorted(by_kind):
            ids = by_kind[kb]
            # counts[h] = how many of this kind's operators have id <= h:
            # O(1) range membership instead of a bisect per refold.
            indicator = np.zeros(n, dtype=np.int64)
            indicator[ids] = 1
            counts = np.cumsum(indicator).tolist()
            card_cells += [kb + 5 + k, kb + 6 + k, kb + 7 + k]
            card_kinds.append(
                (
                    counts,
                    tuple(col[ids].tolist() for col in (udf, in_card, out_card)),
                )
            )
        self.card_cells = np.asarray(card_cells, dtype=np.int64)
        self.card_kinds = card_kinds
        #: lo -> (hi, folds): the latest refold per range start, so a scope
        #: that grows upward extends the previous sequential fold instead
        #: of restarting it (same addition chain, so bit-identical).
        self._refold_cache: Dict[int, Tuple[int, List[float]]] = {}
        self.tuple_sizes = np.zeros(n, dtype=np.float64)
        for i, profile in plan.datasets.items():
            self.tuple_sizes[i] = profile.tuple_size
        self.n_ops = n
        self._singleton_statics: Optional[np.ndarray] = None

    def refold_cards(self, lo: int, hi: int) -> List[float]:
        """Exact sequential sums of the order-sensitive cells over [lo, hi].

        One value per entry of :attr:`card_cells`. The left fold over the
        ascending-id value slice performs the same addition chain (from the
        same ``+0.0`` start) as the kernel bincount, so each result is
        bit-identical to the corresponding cell of :meth:`static_vector`
        for the contiguous scope ``[lo, hi]``. A cached fold for the same
        ``lo`` and a smaller ``hi`` is extended in place of restarting —
        the continuation performs the identical remaining additions.
        """
        hit = self._refold_cache.get(lo)
        out: List[float] = []
        if hit is not None and hit[0] <= hi:
            hi0, base = hit
            idx = 0
            for counts, vals3 in self.card_kinds:
                j0 = counts[hi0]
                j = counts[hi]
                if j0 == j:
                    out += base[idx : idx + 3]
                else:
                    for off, vals in enumerate(vals3):
                        s = base[idx + off]
                        for x in vals[j0:j]:
                            s += x
                        out.append(s)
                idx += 3
        else:
            for counts, vals3 in self.card_kinds:
                i = counts[lo - 1] if lo else 0
                j = counts[hi]
                for vals in vals3:
                    out.append(sum(vals[i:j]) if i != j else 0.0)
        self._refold_cache[lo] = (hi, out)
        return out

    def singleton_statics(self) -> np.ndarray:
        """Static vectors of all singleton scopes, one row per operator.

        Row ``i`` is bit-identical to ``static_vector(frozenset({i}))``:
        every cell holds a single contribution (``0 + w``, the same float
        the per-scope bincount produces), and the topology cells reduce to
        per-operator flags — a singleton's pipeline count is its chain
        eligibility (it has no in-scope parent), valid even for plans where
        the merged-scope head rule falls back to the reference.
        """
        if self._singleton_statics is None:
            n = self.n_ops
            m = np.zeros((n, self.n_features + 1), dtype=np.float64)
            m[np.arange(n)[:, None], self.contrib_cols] += self.contrib_wts
            m = np.ascontiguousarray(m[:, : self.n_features])
            m[:, 0] = self.eligible
            m[:, 1] = self.juncture
            m[:, 2] = self.replicate
            if self.loop_member.shape[0]:
                m[:, 3] = self.loop_member.sum(axis=0)
                m[:, self.loop_iterations_cell] = (
                    self.loop_iterations @ self.loop_member
                )
            m[:, self.tuple_size_cell] = self.tuple_sizes
            self._singleton_statics = m
        return self._singleton_statics

    def static_vector(self, scope: FrozenSet[int], lohi=None) -> np.ndarray:
        if not self.exact:
            return self._schema.static_features(self._plan, scope)
        if not scope:
            return np.zeros(self.n_features, dtype=np.float64)
        # Contiguous id ranges (every scope of a chain-shaped plan) index
        # by slice: same ascending-id lane order as the sorted gather, so
        # the bincount sums the identical float sequence, without the
        # fromiter/sort and the two fancy row gathers. Callers that track
        # scope extrema pass them via ``lohi`` to skip the O(scope) min/max.
        lo, hi = lohi if lohi is not None else (min(scope), max(scope))
        if hi - lo + 1 == len(scope):
            sl = slice(lo, hi + 1)
            v = np.bincount(
                self.contrib_cols[sl].ravel(),
                weights=self.contrib_wts[sl].ravel(),
                minlength=self.n_features + 1,
            )[: self.n_features]
            # The bincount lanes already summed chain eligibility into the
            # pipeline cell; demote eligibles whose sole (eligible) parent
            # is also in scope — integer arithmetic, exact. Membership in a
            # contiguous scope is a range check on the parent id (one
            # comparison when parents precede children by construction).
            if self.chain_parents_below:
                lost = np.count_nonzero(self.chain_parent[sl] >= lo)
                if lost:
                    v[0] -= lost
            else:
                chained = self.chained[sl]
                if chained.any():
                    parents = self.parent_idx[sl]
                    v[0] -= np.count_nonzero(
                        chained & (parents >= lo) & (parents <= hi)
                    )
            ids = sl
        else:
            ids = np.fromiter(scope, dtype=np.int64, count=len(scope))
            ids.sort()
            v = np.bincount(
                self.contrib_cols[ids].ravel(),
                weights=self.contrib_wts[ids].ravel(),
                minlength=self.n_features + 1,
            )[: self.n_features]
            chained = self.chained[ids]
            if chained.any():
                mask = np.zeros(self.n_ops, dtype=bool)
                mask[ids] = True
                v[0] -= np.count_nonzero(chained & mask[self.parent_idx[ids]])
        if self.loop_member.shape[0]:
            present = self.loop_member[:, ids].any(axis=1)
            v[3] = np.count_nonzero(present)
            v[self.loop_iterations_cell] = self.loop_iterations[present].sum()
        v[self.tuple_size_cell] = self.tuple_sizes[ids].max(initial=0.0)
        return v


class EnumerationContext:
    """Per-plan state shared by all enumerations of one optimization run."""

    def __init__(
        self,
        plan: LogicalPlan,
        registry: PlatformRegistry,
        schema: Optional[FeatureSchema] = None,
    ):
        self.plan = plan
        self.registry = registry
        self.schema = schema if schema is not None else FeatureSchema(registry)
        if list(self.schema.registry.names) != list(registry.names):
            raise EnumerationError("schema registry does not match plan registry")
        self.n_ops = plan.n_operators
        #: feasible platform indices per operator id (shared per kind —
        #: feasibility depends only on the operator kind)
        kind_alts: Dict[str, np.ndarray] = {}
        self.alternatives: Dict[int, np.ndarray] = {}
        for op_id, op in plan.operators.items():
            alts = kind_alts.get(op.kind_name)
            if alts is None:
                alts = np.array(
                    [
                        registry.index(name)
                        for name in feasible_platforms(plan, registry, op_id)
                    ],
                    dtype=np.int8,
                )
                kind_alts[op.kind_name] = alts
            self.alternatives[op_id] = alts
        # Cardinalities are per-plan, not per-edge: estimate them once here
        # instead of re-deriving the full map inside every _edge_info call.
        self._cards = plan.cardinalities()
        self._op_meta: Optional[_OpArrays] = None
        #: [lo, hi) feature-column range of the conversion blocks
        self.conv_block = self.schema.conv_block_bounds()
        self._conv_tables = self.schema.conversion_tables()
        self.edges: List[EdgeInfo] = self._build_edges(plan.edges)
        self._edges_by_pair: Dict[Tuple[int, int], EdgeInfo] = {
            (e.src, e.dst): e for e in self.edges
        }
        # Per-operator edge index so crossing_edges can walk one scope's
        # incident edges instead of scanning every plan edge per merge.
        self._edges_by_op: Dict[int, List[EdgeInfo]] = {
            op_id: [] for op_id in plan.operators
        }
        for e in self.edges:
            self._edges_by_op[e.src].append(e)
            self._edges_by_op[e.dst].append(e)
        self._static_cache: Dict[FrozenSet[int], np.ndarray] = {}
        self._static_vals_cache: Dict[FrozenSet[int], np.ndarray] = {}
        self._loop_present_cache: Dict[FrozenSet[int], np.ndarray] = {}
        self._static_kernel: Optional[_StaticKernel] = None
        self._static_cols = np.flatnonzero(self.schema.static_mask)
        self._singleton_cols: Optional[np.ndarray] = None
        self._singleton_vals: Optional[np.ndarray] = None
        self._singleton_rows: Dict[int, Tuple[int, int]] = {}
        self._singleton_ops: Optional[np.ndarray] = None
        self._singleton_alts: Optional[np.ndarray] = None
        self._singleton_counts: Optional[np.ndarray] = None
        # Adjacency over operator ids (forward edges), used for boundaries.
        # Shared read-only maps memoized on the plan (one copy per plan,
        # not per optimization run).
        self.op_children, self.op_parents, self.op_neighbours = plan.adjacency()

    def _op_arrays(self) -> _OpArrays:
        """Cached columnar per-operator metadata (see :class:`_OpArrays`)."""
        if self._op_meta is None:
            self._op_meta = _OpArrays(self.plan, self.schema, self._cards)
        return self._op_meta

    def _kernel(self) -> _StaticKernel:
        """The per-plan static-feature kernel, built on first use."""
        if self._static_kernel is None:
            kernel = _StaticKernel(self.plan, self.schema, self)
            self._static_kernel = kernel
            if kernel.exact:
                # Stamp each edge with whether merging across it dissolves
                # a pipeline head, so the per-merge static fix-up is a
                # plain attribute read instead of three array lookups.
                eligible = kernel.eligible
                parent_eligible = kernel.parent_eligible
                parent_idx = kernel.parent_idx
                for e in self.edges:
                    c = e.dst
                    e.loses_head = bool(
                        eligible[c]
                        and parent_eligible[c]
                        and parent_idx[c] == e.src
                    )
        return self._static_kernel

    def _build_edges(self, plan_edges: List[Tuple[int, int]]) -> List[EdgeInfo]:
        """All :class:`EdgeInfo` objects, conversion tables built batched.

        The schema-level table is per platform pair; each edge only adds
        its data volume, so all same-``in_loop`` edges share one broadcast
        ``base + volume[:, None, None] * scale`` — elementwise the same
        scale-and-copy as the per-edge form (bit-identical), at one NumPy
        call per loop flag instead of two per edge.
        """
        if not plan_edges:
            return []
        cards = self._cards
        if not self.plan.loops:
            # Loop-free plans (the common case): every edge has in_loop
            # False and one iteration, so the per-edge metadata loop
            # collapses to a cardinality gather plus the shared broadcast.
            vols = [cards[u][1] for u, _ in plan_edges]
            base, scale = self._conv_tables[False]
            vol = np.array(vols, dtype=np.float64)
            batch = base[None] + vol[:, None, None] * scale[None]
            return [
                EdgeInfo(u, v, vols[i], False, 1, batch[i], self.schema)
                for i, (u, v) in enumerate(plan_edges)
            ]
        meta = self._op_arrays()
        volumes = []
        flags = []
        iters = []
        for u, v in plan_edges:
            in_loop = bool(meta.in_loop[u]) and bool(meta.in_loop[v])
            iterations = int(min(meta.iterations[u], meta.iterations[v]))
            volumes.append(cards[u][1] * iterations)
            flags.append(in_loop)
            iters.append(iterations)
        tables: List[Optional[np.ndarray]] = [None] * len(plan_edges)
        for flag in (False, True):
            idx = [i for i, f in enumerate(flags) if f is flag]
            if not idx:
                continue
            base, scale = self._conv_tables[flag]
            vol = np.array([volumes[i] for i in idx], dtype=np.float64)
            batch = base[None] + vol[:, None, None] * scale[None]
            for j, i in enumerate(idx):
                tables[i] = batch[j]
        return [
            EdgeInfo(
                u, v, cards[u][1], flags[i], iters[i], tables[i], self.schema
            )
            for i, (u, v) in enumerate(plan_edges)
        ]

    def edge(self, u: int, v: int) -> EdgeInfo:
        try:
            return self._edges_by_pair[(u, v)]
        except KeyError:
            raise EnumerationError(f"({u}, {v}) is not a plan edge") from None

    def static_features(self, scope: FrozenSet[int]) -> np.ndarray:
        """Cached scope-static feature vector for a scope."""
        scope = frozenset(scope)
        hit = self._static_cache.get(scope)
        if hit is None:
            kernel = self._kernel()
            if len(scope) == 1:
                (op_id,) = scope
                hit = kernel.singleton_statics()[op_id]
            else:
                hit = kernel.static_vector(scope)
            self._static_cache[scope] = hit
        return hit

    def static_rewrite_values(self, scope: FrozenSet[int]) -> np.ndarray:
        """The scope's static vector restricted to the static columns.

        ``merge`` rewrites exactly these cells on every concatenation, so
        the (scope-keyed) restriction is cached alongside the full vector.
        """
        scope = frozenset(scope)
        hit = self._static_vals_cache.get(scope)
        if hit is None:
            hit = self.static_features(scope)[self._static_cols]
            self._static_vals_cache[scope] = hit
        return hit

    @property
    def static_cols(self) -> np.ndarray:
        """Indices of the scope-static feature columns."""
        return self._static_cols

    def merged_static_values(
        self,
        left: "PlanVectorEnumeration",
        right: "PlanVectorEnumeration",
        scope: FrozenSet[int],
        crossing: List[EdgeInfo],
    ) -> np.ndarray:
        """Static rewrite values for a merge of two known enumerations.

        Same contract as :func:`static_rewrite_values`, but the caller
        hands over the two sides and their crossing edges, which unlocks an
        exact incremental path (see :meth:`_merged_static_info`) instead of
        the full per-scope kernel pass.
        """
        hit = self._static_vals_cache.get(scope)
        if hit is None:
            full = self._static_cache.get(scope)
            if full is None:
                self._kernel()
                full, _, _, _ = self._merged_static_info(
                    left, right, scope, crossing
                )
                self._static_cache[scope] = full
            hit = full[self._static_cols]
            self._static_vals_cache[scope] = hit
        return hit

    def apply_merged_statics(
        self,
        features: np.ndarray,
        left: "PlanVectorEnumeration",
        right: "PlanVectorEnumeration",
        scope: FrozenSet[int],
        crossing: List[EdgeInfo],
    ) -> np.ndarray:
        """Write the merged scope's exact static values into ``features``.

        Returns the full static vector of the union scope so the caller
        can attach it to the merged enumeration (see
        :attr:`PlanVectorEnumeration._static_full`).

        When the incremental path applies *and* both operands carry their
        own attached static vectors (so their feature rows are known to
        hold those exact values), the broadcast add already produced the
        bit-exact merged statics in every additive cell — only the handful
        of non-additive cells (pipeline heads, loop membership/iterations,
        tuple-size max) are patched, instead of rewriting all static
        columns.
        """
        kernel = self._static_kernel
        if kernel is None:
            kernel = self._kernel()
        full, additive, lost, card_vals = self._merged_static_info(
            left, right, scope, crossing
        )
        if additive:
            if lost:
                features[:, 0] -= lost
            if card_vals is not None:
                features[:, kernel.card_cells] = card_vals
            if kernel.has_loops:
                features[:, 3] = full[3]
                features[:, kernel.loop_iterations_cell] = full[
                    kernel.loop_iterations_cell
                ]
            features[:, kernel.tuple_size_cell] = full[kernel.tuple_size_cell]
        else:
            features[:, self._static_cols] = full[self._static_cols]
        return full

    def _merged_static_info(
        self,
        left: "PlanVectorEnumeration",
        right: "PlanVectorEnumeration",
        scope: FrozenSet[int],
        crossing: List[EdgeInfo],
    ) -> Tuple[np.ndarray, bool, int, Optional[np.ndarray]]:
        """``(union static vector, additive?, lost heads, card refolds)``.

        The vector is bit-identical to the kernel's. When both sides cover
        contiguous id ranges and the ranges are adjacent (every merge the
        priority enumerator performs on a chain-shaped plan), the union's
        canonical ascending-id fold decomposes as ``a + b`` plus targeted
        patches:

        * every count cell sums small non-negative integers, which IEEE
          addition reproduces exactly in *any* order — ``a + b`` is the
          canonical value bit-for-bit (cells one side does not touch see
          ``x + 0.0 == x``; accumulated cells are never ``-0.0``);
        * the order-sensitive per-kind udf/cardinality sums are refolded
          sequentially over the union range (``card_vals``, see
          :meth:`_StaticKernel.refold_cards`) — except when the upper side
          is a single operator, where ``a + b`` already *is* the ascending
          fold (lower side's fold, then one more addition);
        * pipeline heads: a head is lost exactly when a crossing edge
          connects an eligible chain child to its sole, eligible parent —
          integer arithmetic, exact;
        * loop membership/iterations are recomputed from the union's
          spec-presence mask, and the tuple-size maximum is order-free.

        Anything else — non-contiguous scopes, plans where the head rule
        is scope-dependent — falls through to the kernel.

        ``additive`` is True only when both operands carry attached static
        vectors — the guarantee that their feature rows hold exactly these
        statics, which is what lets a caller patch instead of rewrite.
        """
        kernel = self._static_kernel
        if kernel.exact:
            lmin, lmax = left.scope_min(), left.scope_max()
            rmin, rmax = right.scope_min(), right.scope_max()
            if (
                lmax - lmin + 1 == len(left.scope)
                and rmax - rmin + 1 == len(right.scope)
                and (lmax + 1 == rmin or rmax + 1 == lmin)
            ):
                a = left._static_full
                b = right._static_full
                additive = a is not None and b is not None
                if a is None:
                    a = self.static_features(left.scope)
                if b is None:
                    b = self.static_features(right.scope)
                v = a + b
                if lmin < rmin:
                    upper_single = rmin == rmax
                    lo, hi = lmin, rmax
                else:
                    upper_single = lmin == lmax
                    lo, hi = rmin, lmax
                card_vals = None
                if not upper_single:
                    card_vals = np.asarray(kernel.refold_cards(lo, hi))
                    v[kernel.card_cells] = card_vals
                lost = 0
                for e in crossing:
                    if e.loses_head:
                        lost += 1
                if lost:
                    v[0] = a[0] + b[0] - lost
                if kernel.has_loops:
                    present = self._loop_present(left.scope) | self._loop_present(
                        right.scope
                    )
                    self._loop_present_cache[scope] = present
                    v[3] = float(np.count_nonzero(present))
                    v[kernel.loop_iterations_cell] = kernel.loop_iterations[
                        present
                    ].sum()
                ts = kernel.tuple_size_cell
                v[ts] = a[ts] if a[ts] >= b[ts] else b[ts]
                return v, additive, lost, card_vals
        lmin, rmin = left.scope_min(), right.scope_min()
        lmax, rmax = left.scope_max(), right.scope_max()
        full = kernel.static_vector(
            scope,
            lohi=(
                lmin if lmin <= rmin else rmin,
                lmax if lmax >= rmax else rmax,
            ),
        )
        return full, False, 0, None

    def _loop_present(self, scope: FrozenSet[int]) -> np.ndarray:
        """Which loop specs have at least one body operator in the scope."""
        hit = self._loop_present_cache.get(scope)
        if hit is None:
            ids = np.fromiter(scope, dtype=np.int64, count=len(scope))
            hit = self._static_kernel.loop_member[:, ids].any(axis=1)
            self._loop_present_cache[scope] = hit
        return hit

    def singleton_delta(self, op_id: int) -> Tuple[np.ndarray, np.ndarray]:
        """Stacked assignment deltas of one operator across its alternatives.

        Returns ``(cols, vals)`` of shape ``(n_alternatives, 8)``: row ``r``
        holds the feature columns/values of placing the operator on its
        ``r``-th feasible platform (exactly
        :meth:`FeatureSchema.op_assignment_delta`, padded with weight-0
        entries pointing at column 0 for the loop cells of non-loop
        operators). One fancy scatter-add instantiates a whole singleton
        enumeration.
        """
        if self._singleton_cols is None:
            self._build_singleton_deltas()
        start, stop = self._singleton_rows[op_id]
        return self._singleton_cols[start:stop], self._singleton_vals[start:stop]

    def singleton_enumerations(self) -> List["PlanVectorEnumeration"]:
        """All singleton enumerations, built in one batched pass.

        Bit-identical to calling
        :func:`repro.core.operations.enumerate_singleton` per operator
        (same per-row static base, same scatter-added delta lanes), but the
        whole plan costs two matrix allocations and two fancy scatters
        instead of one tile + scatter + fill per operator. The returned
        enumerations view two shared backing matrices; ``select`` (and
        therefore ``prune``) copies on the way out, so the views are safe.
        """
        if self._singleton_cols is None:
            self._build_singleton_deltas()
        statics = self._kernel().singleton_statics()
        n = self.n_ops
        total = self._singleton_ops.shape[0]
        rows = np.arange(total, dtype=np.int64)
        features = np.repeat(statics, self._singleton_counts, axis=0)
        features[rows[:, None], self._singleton_cols] += self._singleton_vals
        assignments = np.full((total, n), -1, dtype=np.int8)
        assignments[rows, self._singleton_ops] = self._singleton_alts
        out: List[PlanVectorEnumeration] = []
        for i in range(n):
            start, stop = self._singleton_rows[i]
            enum = PlanVectorEnumeration._unchecked(
                self,
                frozenset((i,)),
                features[start:stop],
                assignments[start:stop],
            )
            enum._scope_max = i
            enum._scope_min = i
            enum._static_full = statics[i]
            # A singleton's boundary is itself whenever it has any plan
            # neighbour (which is then necessarily outside the scope).
            enum._blist = [i] if self.op_neighbours[i] else []
            out.append(enum)
        return out

    def _build_singleton_deltas(self) -> None:
        plan, schema = self.plan, self.schema
        k = schema.k
        n = self.n_ops
        alt_arrays = [self.alternatives[i] for i in range(n)]
        counts = np.array([a.size for a in alt_arrays], dtype=np.int64)
        stops = np.cumsum(counts)
        starts = stops - counts
        self._singleton_rows = {
            i: (int(starts[i]), int(stops[i])) for i in range(n)
        }
        op_rep = np.repeat(np.arange(n, dtype=np.int64), counts)
        alt_p = np.concatenate(alt_arrays).astype(np.int64) if n else np.zeros(0, np.int64)
        self._singleton_ops = op_rep
        self._singleton_alts = alt_p
        self._singleton_counts = counts

        meta = self._op_arrays()
        kind_base = meta.kind_base
        in_card = meta.in_card
        out_card = meta.out_card
        in_loop = meta.in_loop
        iters = meta.iterations
        tuple_size = plan.average_input_tuple_size() or 100.0
        # Same formulas as FeatureSchema.op_assignment_delta, elementwise.
        loop_work = np.where(
            meta.amortized,
            in_card + (iters - 1.0) * out_card,
            iters * in_card,
        )

        kb = kind_base[op_rep]
        inc = in_card[op_rep]
        outc = out_card[op_rep]
        agg = schema.platform_count_cell(0) + 6 * alt_p
        lanes_in_loop = in_loop[op_rep]
        cols = np.stack(
            [
                kb + 1 + alt_p,  # op-on-platform count
                kb + 8 + k + alt_p,  # per-platform input cardinality
                agg,  # platform operator count
                agg + 1,  # platform input cardinality
                agg + 2,  # platform output cardinality
                agg + 3,  # platform working-set bytes
                np.where(lanes_in_loop, agg + 4, 0),  # loop invocations
                np.where(lanes_in_loop, agg + 5, 0),  # loop work
            ],
            axis=1,
        )
        zeros = np.zeros(op_rep.size)
        vals = np.stack(
            [
                np.ones(op_rep.size),
                inc,
                np.ones(op_rep.size),
                inc,
                outc,
                np.maximum(inc, outc) * tuple_size,
                np.where(lanes_in_loop, iters[op_rep], zeros),
                np.where(lanes_in_loop, loop_work[op_rep], zeros),
            ],
            axis=1,
        )
        self._singleton_cols = cols
        self._singleton_vals = vals

    def crossing_edges(
        self, scope_a: FrozenSet[int], scope_b: FrozenSet[int]
    ) -> List[EdgeInfo]:
        """Plan edges with one endpoint in each scope (either direction).

        Walks the per-operator edge index of the smaller scope — crossing
        edges have exactly one endpoint there (scopes are disjoint during
        enumeration), so each qualifying edge is reported once.
        """
        if len(scope_b) < len(scope_a):
            scope_a, scope_b = scope_b, scope_a
        out = []
        for op_id in scope_a:
            for e in self._edges_by_op[op_id]:
                other = e.dst if e.src == op_id else e.src
                if other in scope_b:
                    out.append(e)
        return out


class PlanVectorEnumeration:
    """A set of plan vectors for one (sub)plan scope (Def. 1).

    Attributes
    ----------
    scope:
        Frozen set of logical operator ids covered.
    features:
        ``(n_vectors, n_features)`` float64 matrix — directly consumable by
        the ML model, no transformation required.
    assignments:
        ``(n_vectors, n_ops)`` int8 matrix of platform indices; ``-1``
        outside the scope.
    """

    __slots__ = (
        "ctx",
        "scope",
        "features",
        "assignments",
        "n_vectors",
        "_boundary",
        "_blist",
        "_costs",
        "_scope_max",
        "_scope_min",
        "_static_full",
    )

    def __init__(
        self,
        ctx: EnumerationContext,
        scope: FrozenSet[int],
        features: np.ndarray,
        assignments: np.ndarray,
    ):
        if features.ndim != 2 or assignments.ndim != 2:
            raise EnumerationError("features/assignments must be 2-D")
        if features.shape[0] != assignments.shape[0]:
            raise EnumerationError(
                f"row mismatch: {features.shape[0]} feature rows vs "
                f"{assignments.shape[0]} assignment rows"
            )
        if assignments.shape[1] != ctx.n_ops:
            raise EnumerationError(
                f"assignments must have one column per plan operator "
                f"({ctx.n_ops}), got {assignments.shape[1]}"
            )
        self.ctx = ctx
        self.scope = frozenset(scope)
        self.features = features
        self.assignments = assignments
        #: row count, fixed at construction (the matrices never resize)
        self.n_vectors = features.shape[0]
        self._boundary: Optional[np.ndarray] = None
        self._blist: Optional[List[int]] = None
        self._costs: Optional[np.ndarray] = None
        self._scope_max: Optional[int] = None
        self._scope_min: Optional[int] = None
        #: the scope's full static feature vector, when the producer knows
        #: the feature rows hold exactly these values (see
        #: ``EnumerationContext.apply_merged_statics``)
        self._static_full: Optional[np.ndarray] = None

    @classmethod
    def _unchecked(
        cls,
        ctx: EnumerationContext,
        scope: FrozenSet[int],
        features: np.ndarray,
        assignments: np.ndarray,
    ) -> "PlanVectorEnumeration":
        """Construct without shape validation (internal hot paths only).

        ``merge``/``select``/the singleton batch build their matrices with
        the correct shapes by construction; skipping the dimension checks
        and the ``frozenset`` re-wrap measurably matters at ~240
        constructions per optimization. ``scope`` must already be a
        frozenset.
        """
        self = object.__new__(cls)
        self.ctx = ctx
        self.scope = scope
        self.features = features
        self.assignments = assignments
        self.n_vectors = features.shape[0]
        self._boundary = None
        self._blist = None
        self._costs = None
        self._scope_max = None
        self._scope_min = None
        self._static_full = None
        return self

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.n_vectors

    @property
    def is_complete(self) -> bool:
        """Whether the scope covers the whole logical plan."""
        return len(self.scope) == self.ctx.n_ops

    def boundary_ids(self) -> np.ndarray:
        """Sorted ids of the scope's boundary operators (cached).

        A boundary operator is adjacent (via any plan edge) to an operator
        outside the scope (§IV-E). Merge products carry their boundary
        incrementally (only former boundary operators can stay on the
        boundary of a union); everything else computes it on first use.
        """
        if self._boundary is None:
            self._boundary = np.array(self.boundary_list(), dtype=np.int64)
        return self._boundary

    def boundary_list(self) -> List[int]:
        """The boundary operator ids as a sorted Python list (cached).

        The enumeration hot paths (prune grouping, the enumerator's
        partner discovery, merge's incremental boundary) all consume the
        boundary element-wise; keeping the list representation native
        avoids an ndarray round-trip per merge.
        """
        if self._blist is None:
            if self._boundary is not None:
                self._blist = self._boundary.tolist()
            else:
                scope = self.scope
                neighbours = self.ctx.op_neighbours
                blist = [
                    i
                    for i in scope
                    if any(n not in scope for n in neighbours[i])
                ]
                blist.sort()
                self._blist = blist
        return self._blist

    def scope_max(self) -> int:
        """Largest operator id in the scope (cached; merges derive it O(1))."""
        if self._scope_max is None:
            self._scope_max = max(self.scope)
        return self._scope_max

    def scope_min(self) -> int:
        """Smallest operator id in the scope (cached like ``scope_max``)."""
        if self._scope_min is None:
            self._scope_min = min(self.scope)
        return self._scope_min

    def cached_costs(self) -> Optional[np.ndarray]:
        """Per-vector oracle costs attached by ``prune`` (None if unset).

        ``prune`` already costs every row it sees; keeping the survivors'
        costs lets the enumerator's final plan selection reuse them instead
        of re-invoking the model on identical feature rows.
        """
        return self._costs

    def select(self, row_indices: np.ndarray) -> "PlanVectorEnumeration":
        """A new enumeration keeping only the given vector rows.

        The result never aliases this enumeration's matrices:
        ``take(axis=0)`` copies by construction (and is measurably faster
        than fancy row indexing for the small survivor batches pruning
        produces). Callers may therefore mutate a selection (or cache it)
        without corrupting the source enumeration, and vice versa.
        """
        features = self.features.take(row_indices, axis=0)
        assignments = self.assignments.take(row_indices, axis=0)
        selected = PlanVectorEnumeration._unchecked(
            self.ctx, self.scope, features, assignments
        )
        # Boundary and scope extrema are pure functions of the (unchanged)
        # scope — hand any cached values to the selection.
        selected._boundary = self._boundary
        selected._blist = self._blist
        selected._scope_max = self._scope_max
        selected._scope_min = self._scope_min
        selected._static_full = self._static_full
        return selected

    def assignment_dict(self, row: int) -> Dict[int, str]:
        """Platform-name assignment of one vector (scope operators only)."""
        names = self.ctx.registry.names
        return {
            op_id: names[int(self.assignments[row, op_id])] for op_id in self.scope
        }

    def switch_counts(self) -> np.ndarray:
        """Per-vector number of platform switches on scope-internal edges."""
        counts = np.zeros(self.n_vectors, dtype=np.int64)
        for e in self.ctx.edges:
            if e.src in self.scope and e.dst in self.scope:
                counts += (
                    self.assignments[:, e.src] != self.assignments[:, e.dst]
                ).astype(np.int64)
        return counts

    def check_scope_disjoint(self, other: "PlanVectorEnumeration") -> None:
        if not self.scope.isdisjoint(other.scope):
            overlap = self.scope & other.scope
            raise ScopeError(
                f"enumeration scopes overlap on operators {sorted(overlap)}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PlanVectorEnumeration(scope={sorted(self.scope)}, "
            f"n_vectors={self.n_vectors})"
        )
