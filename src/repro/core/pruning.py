"""Pruning operations: boundary pruning (§IV-E) and β-switch pruning (§VI-A).

The :func:`prune` operation receives a plan vector enumeration and a cost
oracle and keeps, among all plan vectors that share a *pruning footprint*
(the platform assignment of the scope's boundary operators), only the one
with the lowest cost. Definition 2 makes this lossless: non-boundary
operators of a subplan cannot affect the cost contribution of any future
concatenation, so the discarded vectors can never be part of the optimal
complete plan.

The cost oracle ``m`` is any callable from an enumeration to a cost array —
an ML model (:func:`ml_cost`), a cost model, or even the switch-count
heuristic that TDGEN uses (§VI-A).
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Tuple

import numpy as np

from repro.exceptions import EnumerationError
from repro.core.enumeration import EnumerationContext, PlanVectorEnumeration

#: A cost oracle: maps an enumeration to one cost per plan vector.
CostFn = Callable[[PlanVectorEnumeration], np.ndarray]


def ml_cost(model) -> CostFn:
    """Wrap an ML model (anything with ``predict(matrix)``) as a cost oracle.

    The enumeration's feature matrix is fed to the model *directly* — this
    is the paper's central point: no per-subplan transformation happens at
    prune time.
    """

    def cost(enumeration: PlanVectorEnumeration) -> np.ndarray:
        return np.asarray(model.predict(enumeration.features), dtype=np.float64)

    return cost


def switch_cost(enumeration: PlanVectorEnumeration) -> np.ndarray:
    """Cost oracle counting platform switches (TDGEN's pruning heuristic)."""
    return enumeration.switch_counts().astype(np.float64)


def boundary_operators(ctx: EnumerationContext, scope: FrozenSet[int]) -> np.ndarray:
    """Sorted ids of the boundary operators of a scope.

    A boundary operator is adjacent to at least one operator outside the
    scope. For the complete scope the result is empty.
    """
    scope = frozenset(scope)
    boundary = set()
    for i in scope:
        neighbours = ctx.op_children[i] + ctx.op_parents[i]
        if any(n not in scope for n in neighbours):
            boundary.add(i)
    return np.array(sorted(boundary), dtype=np.int64)


def pruning_footprint(enumeration: PlanVectorEnumeration) -> np.ndarray:
    """The pruning footprint matrix: boundary-operator platforms per vector.

    Shape ``(n_vectors, n_boundary_operators)``; two plan vectors may prune
    against each other iff their rows are identical ("pruning match").
    """
    ids = enumeration.boundary_ids()
    if ids.size == 0:
        return np.zeros((enumeration.n_vectors, 0), dtype=np.int8)
    return enumeration.assignments[:, ids]


def footprint_groups(enumeration: PlanVectorEnumeration) -> np.ndarray:
    """Group index per vector; equal indices mean equal pruning footprints."""
    fp = pruning_footprint(enumeration)
    if fp.shape[1] == 0:
        return np.zeros(enumeration.n_vectors, dtype=np.int64)
    _, inverse = np.unique(fp, axis=0, return_inverse=True)
    return inverse.astype(np.int64)


def prune(
    enumeration: PlanVectorEnumeration, cost_fn: CostFn
) -> Tuple[PlanVectorEnumeration, np.ndarray]:
    """Boundary pruning (§IV-E op. 7, Def. 2).

    Returns the pruned enumeration and the per-vector costs the oracle
    produced (callers reuse them for statistics). Keeps exactly one plan
    vector — the cheapest — per pruning footprint. Ties resolve to the
    earliest row, which keeps the operation deterministic.
    """
    n = enumeration.n_vectors
    if n == 0:
        raise EnumerationError("cannot prune an empty enumeration")
    costs = np.asarray(cost_fn(enumeration), dtype=np.float64)
    if costs.shape != (n,):
        raise EnumerationError(
            f"cost oracle returned shape {costs.shape}, expected ({n},)"
        )
    if n == 1:
        return enumeration, costs
    groups = footprint_groups(enumeration)
    # Sort by (group, cost, row) and keep the first row of each group.
    order = np.lexsort((np.arange(n), costs, groups))
    sorted_groups = groups[order]
    first_of_group = np.ones(n, dtype=bool)
    first_of_group[1:] = sorted_groups[1:] != sorted_groups[:-1]
    keep = np.sort(order[first_of_group])
    return enumeration.select(keep), costs


def prune_switches(
    enumeration: PlanVectorEnumeration, beta: int = 3
) -> PlanVectorEnumeration:
    """β-switch pruning (§VI-A): drop vectors with more than β switches.

    A plan with many platform switches is very unlikely to be optimal in
    practice; TDGEN uses this as its (cheap, model-free) pruning when it
    enumerates execution plans to turn into training jobs. If every vector
    exceeds β, the vectors with the minimum switch count survive, so the
    enumeration never empties.
    """
    if beta < 0:
        raise EnumerationError(f"beta must be non-negative, got {beta}")
    switches = enumeration.switch_counts()
    keep = switches <= beta
    if not keep.any():
        keep = switches == switches.min()
    return enumeration.select(np.flatnonzero(keep))
