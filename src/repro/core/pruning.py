"""Pruning operations: boundary pruning (§IV-E) and β-switch pruning (§VI-A).

The :func:`prune` operation receives a plan vector enumeration and a cost
oracle and keeps, among all plan vectors that share a *pruning footprint*
(the platform assignment of the scope's boundary operators), only the one
with the lowest cost. Definition 2 makes this lossless: non-boundary
operators of a subplan cannot affect the cost contribution of any future
concatenation, so the discarded vectors can never be part of the optimal
complete plan.

The cost oracle ``m`` is any callable from an enumeration to a cost array —
an ML model (:func:`ml_cost`), a cost model, or even the switch-count
heuristic that TDGEN uses (§VI-A).

Footprint grouping is *radix-packed*: platform indices are small
non-negative int8 values, so up to eight boundary columns pack into one
big-endian int64 word (wider boundaries chunk into several words). The
packed words order exactly like the raw footprint rows, which lets
:func:`prune` fold grouping into its single ``np.lexsort`` — one sort
replaces the ``np.unique(axis=0)`` (an internal void-view argsort) plus
lexsort of the previous implementation while producing the identical
partition, labels and survivors.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, List, Tuple

import numpy as np

from repro.exceptions import EnumerationError
from repro.core.enumeration import (
    EnumerationContext,
    PlanVectorEnumeration,
    compute_boundary,
)

#: A cost oracle: maps an enumeration to one cost per plan vector.
CostFn = Callable[[PlanVectorEnumeration], np.ndarray]

_ARANGE = np.arange(256, dtype=np.int64)


def _arange(n: int) -> np.ndarray:
    """A read-only-by-convention ``arange(n)`` served from a shared buffer.

    ``prune`` needs an index vector as the lexsort tie-breaker on every
    call; ``np.lexsort`` copies its keys, so handing out views of one
    growing buffer is safe and skips the per-call allocation.
    """
    global _ARANGE
    if _ARANGE.size < n:
        _ARANGE = np.arange(max(n, _ARANGE.size * 2), dtype=np.int64)
    return _ARANGE[:n]


def ml_cost(model) -> CostFn:
    """Wrap an ML model (anything with ``predict(matrix)``) as a cost oracle.

    The enumeration's feature matrix is fed to the model *directly* — this
    is the paper's central point: no per-subplan transformation happens at
    prune time.
    """

    fast = getattr(model, "predict_matrix", None)
    if fast is not None:
        # RuntimeModel offers a trusted-input entry point; enumeration
        # feature matrices are 2-D float64 by construction, so the
        # coercion/validation layer of ``predict`` is pure overhead here.
        def cost(enumeration: PlanVectorEnumeration) -> np.ndarray:
            return fast(enumeration.features)

    else:

        def cost(enumeration: PlanVectorEnumeration) -> np.ndarray:
            return np.asarray(
                model.predict(enumeration.features), dtype=np.float64
            )

    return cost


def switch_cost(enumeration: PlanVectorEnumeration) -> np.ndarray:
    """Cost oracle counting platform switches (TDGEN's pruning heuristic)."""
    return enumeration.switch_counts().astype(np.float64)


def boundary_operators(ctx: EnumerationContext, scope: FrozenSet[int]) -> np.ndarray:
    """Sorted ids of the boundary operators of a scope.

    A boundary operator is adjacent to at least one operator outside the
    scope. For the complete scope the result is empty. Delegates to
    :func:`repro.core.enumeration.compute_boundary` — the single
    implementation also behind
    :meth:`PlanVectorEnumeration.boundary_ids`.
    """
    return compute_boundary(ctx, scope)


def pruning_footprint(enumeration: PlanVectorEnumeration) -> np.ndarray:
    """The pruning footprint matrix: boundary-operator platforms per vector.

    Shape ``(n_vectors, n_boundary_operators)``; two plan vectors may prune
    against each other iff their rows are identical ("pruning match").
    """
    ids = enumeration.boundary_ids()
    if ids.size == 0:
        return np.zeros((enumeration.n_vectors, 0), dtype=np.int8)
    return enumeration.assignments[:, ids]


def _footprint_words(fp: np.ndarray) -> List[np.ndarray]:
    """Radix-pack footprint rows into big-endian int64 key words.

    Boundary operators are always inside the scope, so their platform
    indices are non-negative (``0..k-1`` with ``k <= 126``); shifted by one
    they occupy a single byte each, and eight columns pack into one int64.
    Wider boundaries produce one word per 8-column chunk. Because packing
    is big-endian and values are positive, comparing the word tuples
    lexicographically compares the original rows lexicographically — the
    exact row order ``np.unique(fp, axis=0)`` sorts by.
    """
    n, m = fp.shape
    u = fp.astype(np.int64)
    u += 1
    words: List[np.ndarray] = []
    for start in range(0, m, 8):
        chunk = u[:, start : start + 8]
        # ``u`` is a fresh copy, so the first column can accumulate the
        # word in place — later columns of the chunk are only ever read.
        word = chunk[:, 0]
        for c in range(1, chunk.shape[1]):
            word <<= 8
            word |= chunk[:, c]
        words.append(word)
    return words


def footprint_groups(enumeration: PlanVectorEnumeration) -> np.ndarray:
    """Group index per vector; equal indices mean equal pruning footprints.

    Labels are ranks in the lexicographic row order — identical to the
    ``return_inverse`` labels of ``np.unique(fp, axis=0)``, at the cost of
    one lexsort over the packed key words instead of a void-view argsort.
    """
    fp = pruning_footprint(enumeration)
    n = enumeration.n_vectors
    if fp.shape[1] == 0 or n == 0:
        return np.zeros(n, dtype=np.int64)
    words = _footprint_words(fp)
    order = np.lexsort(tuple(reversed(words)))
    changed = np.zeros(n, dtype=bool)
    changed[0] = True
    for word in words:
        sw = word[order]
        changed[1:] |= sw[1:] != sw[:-1]
    labels_sorted = np.cumsum(changed) - 1
    groups = np.empty(n, dtype=np.int64)
    groups[order] = labels_sorted
    return groups


def prune(
    enumeration: PlanVectorEnumeration, cost_fn: CostFn
) -> Tuple[PlanVectorEnumeration, np.ndarray]:
    """Boundary pruning (§IV-E op. 7, Def. 2).

    Returns the pruned enumeration and the per-vector costs the oracle
    produced (callers reuse them for statistics). Keeps exactly one plan
    vector — the cheapest — per pruning footprint. Ties resolve to the
    earliest row, which keeps the operation deterministic.

    Grouping and survivor selection fuse into one
    ``lexsort(row, cost, footprint-words)``: rows sort by footprint first,
    cost second, original row last, so the first row of every footprint
    run *is* the group survivor. The survivors' costs are attached to the
    pruned enumeration (see
    :meth:`PlanVectorEnumeration.cached_costs`) so the final plan
    selection can reuse them instead of re-invoking the oracle.
    """
    n = enumeration.n_vectors
    if n == 0:
        raise EnumerationError("cannot prune an empty enumeration")
    costs = np.asarray(cost_fn(enumeration), dtype=np.float64)
    if costs.shape != (n,):
        raise EnumerationError(
            f"cost oracle returned shape {costs.shape}, expected ({n},)"
        )
    if n == 1:
        enumeration._costs = costs
        return enumeration, costs
    ids = enumeration.boundary_list()
    m = len(ids)
    if m == 0:
        # One group: keep the cheapest row, earliest on ties.
        keep = np.array([int(np.argmin(costs))], dtype=np.int64)
    elif n <= 64:
        # Small batches — the pruning steady state, where survivor count is
        # bounded by k^|boundary| — group through a Python dict over the
        # footprint tuples: one O(n) pass replaces key packing, lexsort and
        # the group-edge scan, and at these sizes the per-call NumPy
        # dispatch dwarfs the work. Survivors are identical to the packed
        # path: cheapest row per footprint, earliest row on cost ties
        # (strict ``<`` keeps the first seen).
        a = enumeration.assignments
        keys = (
            a[:, ids[0]].tolist()
            if m == 1
            else zip(*(a[:, c].tolist() for c in ids))
        )
        best = {}
        for r, key, c in zip(range(n), keys, costs.tolist()):
            hit = best.get(key)
            if hit is None or c < hit[1]:
                best[key] = (r, c)
        keep = np.array(sorted(r for r, _ in best.values()), dtype=np.int64)
    else:
        if m <= 8:
            # One packed word, built from column views — no fancy-indexed
            # footprint copy. Values are non-negative (boundary operators
            # are in scope, so platform indices are 0..k-1), so packing
            # without the defensive +1 shift preserves lexicographic order.
            a = enumeration.assignments
            word = a[:, ids[0]].astype(np.int64)
            for c in ids[1:]:
                word <<= 8
                word |= a[:, c]
            words = [word]
        else:
            words = _footprint_words(enumeration.assignments[:, ids])
        order = np.lexsort((_arange(n), costs, *reversed(words)))
        first_of_group = np.zeros(n, dtype=bool)
        first_of_group[0] = True
        for word in words:
            sw = word[order]
            first_of_group[1:] |= sw[1:] != sw[:-1]
        keep = np.sort(order[first_of_group])
    pruned = enumeration.select(keep)
    pruned._costs = costs[keep]
    return pruned, costs


def prune_switches(
    enumeration: PlanVectorEnumeration, beta: int = 3
) -> PlanVectorEnumeration:
    """β-switch pruning (§VI-A): drop vectors with more than β switches.

    A plan with many platform switches is very unlikely to be optimal in
    practice; TDGEN uses this as its (cheap, model-free) pruning when it
    enumerates execution plans to turn into training jobs. If every vector
    exceeds β, the vectors with the minimum switch count survive, so the
    enumeration never empties.
    """
    if beta < 0:
        raise EnumerationError(f"beta must be non-negative, got {beta}")
    switches = enumeration.switch_counts()
    keep = switches <= beta
    if not keep.any():
        keep = switches == switches.min()
    return enumeration.select(np.flatnonzero(keep))
