"""The Robopt facade: logical plan in, execution plan out (§III-B).

:class:`Robopt` wires together the feature schema, the ML runtime model
and the priority-based vectorized enumeration. It is the object a
downstream user instantiates::

    model = RuntimeModel.train(dataset)           # or load a saved one
    robopt = Robopt(registry, model)
    result = robopt.optimize(plan)
    print(result.execution_plan.describe())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.api import OptimizationResult, RunStats
from repro.core.enumerator import (
    EnumerationResult,
    PriorityEnumerator,
)
from repro.core.features import FeatureSchema
from repro.core.operations import unvectorize
from repro.core.pruning import CostFn, ml_cost
from repro.exceptions import EnumerationError
from repro.resilience.budget import Budget
from repro.rheem.execution_plan import ExecutionPlan, single_platform_plan
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.platforms import PlatformRegistry

__all__ = ["Robopt", "OptimizationResult", "ExplainReport"]


@dataclass
class ExplainReport:
    """A human-oriented account of one optimization decision.

    Contains the chosen plan, the runner-up plans that survived pruning
    (distinct boundary footprints), and the model's prediction for every
    feasible single-platform execution — the "why not just one platform?"
    question an operator asks first.
    """

    chosen: ExecutionPlan
    predicted_runtime: float
    alternatives: List[Tuple[ExecutionPlan, float]]
    single_platform_predictions: Dict[str, float]
    stats: RunStats

    def render(self) -> str:
        lines = [
            f"Chosen plan ({'+'.join(self.chosen.platforms_used())}), "
            f"predicted {self.predicted_runtime:.2f}s:"
        ]
        for line in self.chosen.describe().splitlines()[1:]:
            lines.append(f"  {line}")
        if self.single_platform_predictions:
            lines.append("Single-platform predictions:")
            for name, value in self.single_platform_predictions.items():
                lines.append(f"  {name:>10}: {value:.2f}s")
        if self.alternatives:
            lines.append("Best surviving alternatives:")
            for xplan, predicted in self.alternatives:
                lines.append(
                    f"  {'+'.join(xplan.platforms_used()):<24} {predicted:.2f}s"
                )
        lines.append(
            f"Searched {self.stats.total_vectors} plan vectors in "
            f"{self.stats.latency_s * 1e3:.1f}ms "
            f"({self.stats.vectors_pruned} pruned)."
        )
        return "\n".join(lines)


class Robopt:
    """The ML-based, vector-enumerating cross-platform optimizer.

    Parameters
    ----------
    registry:
        Available platforms.
    model:
        A runtime model with ``predict(feature_matrix) -> runtimes``
        (typically :class:`repro.ml.model.RuntimeModel`).
    priority:
        Enumeration priority: ``"robopt"`` (default), ``"topdown"`` or
        ``"bottomup"`` (§V).
    pruning:
        Disable for the exhaustive vectorized enumeration baseline.
    schema:
        Optional pre-built feature schema; must match ``registry`` and the
        schema the model was trained with.
    singleton_memo:
        Optional shared singleton-feature memo (see
        :class:`PriorityEnumerator`); the batch service sets one per
        batch so plans with shared subplans vectorize them once.
    budget:
        Optional :class:`repro.resilience.budget.Budget` (deadline and/or
        vector cap) applied to every run; on expiry ``optimize`` returns
        an anytime plan with ``RunStats.degraded`` set instead of running
        the search to completion. A per-call budget passed to
        :meth:`optimize` overrides it.
    risk_aversion:
        The ``k`` in the risk-adjusted plan score ``mean + k·std``
        (Reqo-style robust plan choice). With the default ``0.0`` the
        optimizer is bit-identical to the pure expected-runtime ranking
        and never even asks the model for a distribution. Positive
        values re-rank the *final* surviving candidates (pruning is
        unchanged — intermediate pruning by mean keeps the search
        identical and cheap) preferring plans the model is confident
        about; requires a model with ``predict_dist``.
    """

    def __init__(
        self,
        registry: PlatformRegistry,
        model,
        priority: str = "robopt",
        pruning: bool = True,
        schema: Optional[FeatureSchema] = None,
        max_vectors: int = 4_000_000,
        singleton_memo: Optional[Dict] = None,
        budget: Optional["Budget"] = None,
        risk_aversion: float = 0.0,
    ):
        if risk_aversion < 0.0:
            raise EnumerationError(
                f"risk_aversion must be >= 0, got {risk_aversion}"
            )
        self.registry = registry
        self.model = model
        self.risk_aversion = float(risk_aversion)
        self.schema = schema if schema is not None else FeatureSchema(registry)
        self._enumerator = PriorityEnumerator(
            registry,
            cost_fn=ml_cost(model),
            priority=priority,
            pruning=pruning,
            schema=self.schema,
            max_vectors=max_vectors,
            singleton_memo=singleton_memo,
            budget=budget,
        )

    @property
    def singleton_memo(self) -> Optional[Dict]:
        """The shared singleton-feature memo (``None`` when disabled)."""
        return self._enumerator.singleton_memo

    @singleton_memo.setter
    def singleton_memo(self, memo: Optional[Dict]) -> None:
        self._enumerator.singleton_memo = memo

    @property
    def budget(self) -> Optional["Budget"]:
        """The standing optimization budget (``None`` = unbounded)."""
        return self._enumerator.budget

    @budget.setter
    def budget(self, budget: Optional["Budget"]) -> None:
        self._enumerator.budget = budget

    def optimize(
        self, plan: LogicalPlan, budget: Optional["Budget"] = None
    ) -> OptimizationResult:
        """Find the execution plan with the lowest predicted runtime.

        With ``risk_aversion > 0`` the final surviving candidates are
        re-ranked by ``mean + k·std`` (see :meth:`_risk_rerank`); the
        reported ``predicted_runtime`` stays the *expected* runtime of
        the chosen plan, not its risk score.
        """
        plan.validate()
        result: EnumerationResult = self._enumerator.enumerate_plan(plan, budget)
        out = OptimizationResult(
            execution_plan=result.execution_plan,
            predicted_runtime=result.predicted_cost,
            stats=result.stats,
            optimizer="robopt",
            final_enumeration=result.final_enumeration,
        )
        if self.risk_aversion > 0.0:
            out = self._risk_rerank(out)
        return out

    def _risk_rerank(self, out: OptimizationResult) -> OptimizationResult:
        """Re-choose among the final candidates by ``mean + k·std``.

        No-ops (keeping the mean-optimal plan) when the model offers no
        distribution, the enumeration carried no final matrix (budget-
        degraded anytime answers), or any candidate's std is non-finite
        — a fallback-served ``inf`` std would make *every* risk score
        infinite and the argmin meaningless, so the honest move is to
        fall back to the expected-runtime choice.
        """
        final = out.final_enumeration
        if final is None or not hasattr(self.model, "predict_dist"):
            return out
        mean, std = self.model.predict_dist(final.features)
        mean = np.asarray(mean, dtype=np.float64).reshape(-1)
        std = np.asarray(std, dtype=np.float64).reshape(-1)
        if mean.size == 0 or not np.all(np.isfinite(std)):
            return out
        score = mean + self.risk_aversion * std
        row = int(np.argmin(score))
        out.execution_plan = unvectorize(final, row)
        out.predicted_runtime = float(mean[row])
        out.stats.predicted_std = float(std[row])
        return out

    def set_model(self, model) -> None:
        """Swap in a new runtime model (a feedback-loop retrain).

        The enumerator's cost function closes over the model, so it is
        rebuilt; callers holding this ``Robopt`` see the new pricing on
        their next ``optimize`` call.
        """
        self.model = model
        self._enumerator.cost_fn = ml_cost(model)

    def _ranked(
        self, plan: LogicalPlan, k: int
    ) -> Tuple[List[Tuple[ExecutionPlan, float]], RunStats]:
        if k < 1:
            raise EnumerationError(f"k must be >= 1, got {k}")
        plan.validate()
        result = self._enumerator.enumerate_plan(plan)
        final = result.final_enumeration
        costs = np.asarray(self.model.predict(final.features), dtype=np.float64)
        order = np.argsort(costs, kind="stable")[:k]
        ranked = [(unvectorize(final, int(row)), float(costs[row])) for row in order]
        return ranked, result.stats

    def optimize_topk(
        self, plan: LogicalPlan, k: int = 3
    ) -> List[Tuple[ExecutionPlan, float]]:
        """The ``k`` cheapest complete plans that survived pruning.

        Boundary pruning keeps one plan per final footprint, so the
        survivors are structurally diverse alternatives; fewer than ``k``
        may exist for small plans.
        """
        ranked, _stats = self._ranked(plan, k)
        return ranked

    def explain(self, plan: LogicalPlan, k: int = 3) -> ExplainReport:
        """Optimize and report the decision (chosen plan, alternatives,
        single-platform predictions)."""
        ranked, stats = self._ranked(plan, max(k, 1))
        chosen, predicted = ranked[0]
        singles: Dict[str, float] = {}
        for platform in self.registry:
            try:
                xplan = single_platform_plan(plan, platform.name, self.registry)
            except Exception:
                continue  # platform cannot host the whole plan
            singles[platform.name] = float(
                self.model.predict(
                    self.schema.encode_execution_plan(xplan)[None, :]
                )[0]
            )
        return ExplainReport(
            chosen=chosen,
            predicted_runtime=predicted,
            alternatives=ranked[1:],
            single_platform_predictions=singles,
            stats=stats,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Robopt(platforms={self.registry.names}, "
            f"priority={self._enumerator.priority_name!r}, "
            f"pruning={self._enumerator.pruning})"
        )
