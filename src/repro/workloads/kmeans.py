"""K-means clustering (Table II, 7 operators, iterative).

The loop body assigns points to centroids, sums per centroid and computes
the new centroids. The paper's Fig. 12(a) sweeps the number of centroids:
Robopt discovers a Spark+Java plan that keeps the (tiny) centroid state on
Java and broadcasts it to the Spark workers each iteration, beating
RHEEMix's all-Spark plan by an increasing margin as the centroid count
grows — the per-iteration scheduling overhead of driving small operators
on Spark is the dominant hidden cost.
"""

from __future__ import annotations

from repro.exceptions import GenerationError
from repro.rheem.datasets import MB, paper_dataset
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.operators import UdfComplexity, operator

#: Number of logical operators (Table II).
N_OPERATORS = 7

#: Dataset sizes of Fig. 11(f), in bytes.
FIG11_SIZES = [36 * MB, 361 * MB, 3610 * MB, 1000 * 1024 * MB]

#: Centroid counts of Fig. 12(a).
FIG12_CENTROIDS = [10, 100, 1000]


def _assign_complexity(n_centroids: int) -> UdfComplexity:
    """The assignment UDF scans all centroids per point."""
    if n_centroids <= 10:
        return UdfComplexity.LINEAR
    if n_centroids <= 100:
        return UdfComplexity.QUADRATIC
    return UdfComplexity.SUPER_QUADRATIC


def plan(
    size_bytes: float = 36 * MB,
    n_centroids: int = 100,
    iterations: int = 20,
) -> LogicalPlan:
    """The K-means logical plan.

    Parameters
    ----------
    size_bytes:
        Input dataset size (USCensus1990 profile).
    n_centroids:
        Number of clusters; drives the assignment UDF complexity and the
        cardinality of the per-iteration centroid state.
    iterations:
        Lloyd iterations (the loop count).
    """
    if n_centroids < 1:
        raise GenerationError(f"n_centroids must be >= 1, got {n_centroids}")
    if iterations < 1:
        raise GenerationError(f"iterations must be >= 1, got {iterations}")
    dataset = paper_dataset("uscensus1990", size_bytes)
    p = LogicalPlan("kmeans")
    source = p.add(operator("TextFileSource", "TextFileSource(census)"), dataset=dataset)
    parse = p.add(operator("Map", "Map(parsePoint)"))
    assign = p.add(
        operator(
            "Map",
            "Map(assignNearestCentroid)",
            udf_complexity=_assign_complexity(n_centroids),
        )
    )
    sums = p.add(
        operator(
            "ReduceBy",
            "ReduceBy(sumPerCentroid)",
            fixed_output_cardinality=n_centroids,
        )
    )
    update = p.add(operator("Map", "Map(newCentroids)"))
    fmt = p.add(operator("Map", "Map(label)"))
    sink = p.add(operator("CollectionSink", "CollectionSink"))
    p.chain(source, parse, assign, sums, update, fmt, sink)
    p.add_loop([assign, sums, update], iterations=iterations)
    p.validate()
    return p
