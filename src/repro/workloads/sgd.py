"""Stochastic gradient descent (Table II, 6 operators, iterative).

The plan caches the parsed points, then iterates: sample a mini-batch,
compute the gradient and update the weights. The subtlety the paper
highlights (§VII-C2): a ``Cache`` directly feeding a
``ShufflePartitionSample`` *on the same platform* resets the sample
operator's first-time flag, forcing a full partition reshuffle on every
iteration. RHEEMix's linear per-operator cost model cannot express this
interaction; Robopt's ML model observes it in the execution logs and
steers the cache/sample placement apart, yielding the paper's ~2×
average win on SGD (Fig. 12(b)).
"""

from __future__ import annotations

from repro.exceptions import GenerationError
from repro.rheem.datasets import MB, paper_dataset
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.operators import UdfComplexity, operator

#: Number of logical operators (Table II).
N_OPERATORS = 6

#: Dataset sizes of Fig. 11(g), in bytes.
FIG11_SIZES = [
    0.74 * 1024 * MB,
    1.85 * 1024 * MB,
    3.7 * 1024 * MB,
    7.4 * 1024 * MB,
    14.8 * 1024 * MB,
    1000 * 1024 * MB,
]

#: Batch sizes of Fig. 12(b).
FIG12_BATCH_SIZES = [1, 100, 1000]


def plan(
    size_bytes: float = 7.4 * 1024 * MB,
    batch_size: int = 100,
    iterations: int = 400,
) -> LogicalPlan:
    """The SGD logical plan.

    Parameters
    ----------
    size_bytes:
        Input size (HIGGS profile).
    batch_size:
        Mini-batch cardinality sampled per iteration.
    iterations:
        Number of SGD steps (the loop count).
    """
    if batch_size < 1:
        raise GenerationError(f"batch_size must be >= 1, got {batch_size}")
    if iterations < 1:
        raise GenerationError(f"iterations must be >= 1, got {iterations}")
    dataset = paper_dataset("higgs", size_bytes)
    p = LogicalPlan("sgd")
    source = p.add(operator("TextFileSource", "TextFileSource(higgs)"), dataset=dataset)
    parse = p.add(operator("Map", "Map(parsePoint)"))
    cache = p.add(operator("Cache", "Cache(points)"))
    sample = p.add(
        operator(
            "ShufflePartitionSample",
            "ShufflePartitionSample(batch)",
            fixed_output_cardinality=batch_size,
        )
    )
    gradient = p.add(
        operator(
            "Map",
            "Map(gradient+update)",
            udf_complexity=UdfComplexity.QUADRATIC,
        )
    )
    sink = p.add(operator("CollectionSink", "CollectionSink(weights)"))
    p.chain(source, parse, cache, sample, gradient, sink)
    p.add_loop([sample, gradient], iterations=iterations)
    p.validate()
    return p
