"""WordCount: count distinct words (Table II, 6 operators).

The classic pipeline over Wikipedia text: split lines into words, map each
to a ``(word, 1)`` pair, reduce by key, format, sink. Fig. 11(a) sweeps the
input from 30 MB to 1 TB; Fig. 1 uses it as the 6-operator task.
"""

from __future__ import annotations

from repro.rheem.datasets import MB, paper_dataset
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.operators import UdfComplexity, operator

#: Number of logical operators (Table II).
N_OPERATORS = 6

#: Dataset sizes of Fig. 11(a), in bytes.
FIG11_SIZES = [
    30 * MB,
    300 * MB,
    1.5 * 1024 * MB,
    3 * 1024 * MB,
    6 * 1024 * MB,
    24 * 1024 * MB,
    1000 * 1024 * MB,
]


def plan(size_bytes: float = 30 * MB) -> LogicalPlan:
    """The WordCount logical plan over a Wikipedia sample of ``size_bytes``."""
    dataset = paper_dataset("wikipedia", size_bytes)
    p = LogicalPlan("wordcount")
    source = p.add(operator("TextFileSource", "TextFileSource(wiki)"), dataset=dataset)
    words = p.add(
        operator("FlatMap", "FlatMap(split-words)", selectivity=7.0)
    )
    pairs = p.add(operator("Map", "Map(word,1)"))
    counts = p.add(
        operator("ReduceBy", "ReduceBy(count)", selectivity=0.05)
    )
    fmt = p.add(
        operator(
            "Map", "Map(format)", udf_complexity=UdfComplexity.LOGARITHMIC
        )
    )
    sink = p.add(operator("CollectionSink", "CollectionSink"))
    p.chain(source, words, pairs, counts, fmt, sink)
    p.validate()
    return p
