"""TPC-H Q1 ("Aggregate") and Q3 ("Join") — Table II, 7 and 18 operators.

Q1 is a scan-filter-aggregate over ``lineitem``; Q3 joins ``customer``,
``orders`` and ``lineitem`` and aggregates revenue per order. Both come in
two flavours: data on HDFS-style files (``in_postgres=False``, the default
for Figs. 11(d)/(e)) or data stored in Postgres (``in_postgres=True``,
used by Fig. 13, where the profitable plan pushes the relational prefix
into Postgres and performs join/aggregation on Spark).
"""

from __future__ import annotations

from repro.rheem.datasets import GB, DatasetProfile, paper_dataset
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.operators import operator

#: Table II operator counts.
N_OPERATORS_Q1 = 7
N_OPERATORS_Q3 = 18

#: Dataset sizes of Figs. 11(d) and 11(e), in bytes.
FIG11_SIZES = [1 * GB, 10 * GB, 100 * GB, 200 * GB, 1000 * GB]

#: Dataset sizes of Fig. 13, in bytes.
FIG13_SIZES = [10 * GB, 100 * GB]


def _source_kind(in_postgres: bool) -> str:
    return "TableSource" if in_postgres else "TextFileSource"


def q1(size_bytes: float = 1 * GB, in_postgres: bool = False) -> LogicalPlan:
    """TPC-H Q1: pricing summary report (7 operators)."""
    lineitem = paper_dataset("tpch", size_bytes)
    p = LogicalPlan("tpch_q1")
    source = p.add(
        operator(_source_kind(in_postgres), "Source(lineitem)"), dataset=lineitem
    )
    shipped = p.add(operator("Filter", "Filter(shipdate)", selectivity=0.97))
    projected = p.add(operator("Project", "Project(flags,qty,price)"))
    grouped = p.add(
        operator(
            "ReduceBy",
            "ReduceBy(returnflag,linestatus)",
            fixed_output_cardinality=6,
        )
    )
    averaged = p.add(operator("Map", "Map(averages)"))
    ordered = p.add(operator("Sort", "Sort(returnflag,linestatus)"))
    sink = p.add(operator("CollectionSink", "CollectionSink"))
    p.chain(source, shipped, projected, grouped, averaged, ordered, sink)
    p.validate()
    return p


def q3(size_bytes: float = 1 * GB, in_postgres: bool = False) -> LogicalPlan:
    """TPC-H Q3: shipping priority (18 operators, two joins)."""
    # Scale the three relations with TPC-H's row proportions: per scale
    # factor, lineitem ~6M, orders ~1.5M, customer ~150K rows.
    lineitem = paper_dataset("tpch", size_bytes * 0.70)
    orders = DatasetProfile(
        "tpch_orders", cardinality=lineitem.cardinality / 4, tuple_size=110.0
    )
    customer = DatasetProfile(
        "tpch_customer", cardinality=lineitem.cardinality / 40, tuple_size=160.0
    )
    src_kind = _source_kind(in_postgres)

    p = LogicalPlan("tpch_q3")
    cust_src = p.add(operator(src_kind, "Source(customer)"), dataset=customer)
    cust_filter = p.add(operator("Filter", "Filter(mktsegment)", selectivity=0.2))
    cust_proj = p.add(operator("Project", "Project(custkey)"))
    ord_src = p.add(operator(src_kind, "Source(orders)"), dataset=orders)
    ord_filter = p.add(operator("Filter", "Filter(orderdate)", selectivity=0.48))
    ord_proj = p.add(operator("Project", "Project(okey,custkey,date,prio)"))
    li_src = p.add(operator(src_kind, "Source(lineitem)"), dataset=lineitem)
    li_filter = p.add(operator("Filter", "Filter(shipdate)", selectivity=0.54))
    li_proj = p.add(operator("Project", "Project(okey,price,discount)"))
    join_co = p.add(operator("Join", "Join(custkey)", selectivity=0.2))
    co_proj = p.add(operator("Project", "Project(okey,date,prio)"))
    join_col = p.add(operator("Join", "Join(orderkey)", selectivity=1.0))
    # Revenue is an arithmetic projection (SQL-expressible, so Postgres can
    # host it when the data lives there).
    revenue = p.add(operator("Project", "Project(revenue)"))
    grouped = p.add(
        operator("ReduceBy", "ReduceBy(okey,date,prio)", selectivity=0.25)
    )
    ordered = p.add(operator("Sort", "Sort(revenue desc)"))
    top = p.add(operator("Filter", "Filter(top10)", selectivity=1e-4))
    fmt = p.add(operator("Map", "Map(format)"))
    sink = p.add(operator("CollectionSink", "CollectionSink"))

    p.chain(cust_src, cust_filter, cust_proj, join_co)
    p.chain(ord_src, ord_filter, ord_proj, join_co)
    p.chain(join_co, co_proj, join_col)
    p.chain(li_src, li_filter, li_proj, join_col)
    p.chain(join_col, revenue, grouped, ordered, top, fmt, sink)
    p.validate()
    return p


def plan(size_bytes: float = 1 * GB, variant: str = "q3", in_postgres: bool = False):
    """Dispatch helper: ``variant`` is ``"q1"`` or ``"q3"``."""
    if variant == "q1":
        return q1(size_bytes, in_postgres=in_postgres)
    if variant == "q3":
        return q3(size_bytes, in_postgres=in_postgres)
    raise ValueError(f"unknown TPC-H variant {variant!r}; expected 'q1' or 'q3'")
