"""SimWords: clustering of similar words (Table II, 26 operators).

The paper's "simple query of finding similar words contains 26 operators"
(§VII-B): a text-mining prefix builds word co-occurrence vectors, a
k-means-style loop clusters them, and a join labels each word with its
cluster before post-processing. The plan mixes all four topologies —
pipelines, a juncture (the labelling join), a replicate (the cached
vectors feed both the loop and the join) and a loop.
"""

from __future__ import annotations

from repro.rheem.datasets import MB, DatasetProfile, paper_dataset
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.operators import UdfComplexity, operator

#: Number of logical operators (Table II).
N_OPERATORS = 26

#: Dataset sizes of Fig. 11(c), in bytes.
FIG11_SIZES = [3 * MB, 30 * MB, 60 * MB, 90 * MB, 150 * MB]


def plan(
    size_bytes: float = 30 * MB,
    n_clusters: int = 50,
    iterations: int = 10,
) -> LogicalPlan:
    """The SimWords logical plan over ``size_bytes`` of Wikipedia text."""
    dataset = paper_dataset("wikipedia", size_bytes)
    p = LogicalPlan("simwords")

    # --- text-mining prefix: word co-occurrence vectors (10 ops) ---
    source = p.add(operator("TextFileSource", "TextFileSource(wiki)"), dataset=dataset)
    words = p.add(operator("FlatMap", "FlatMap(words)", selectivity=7.0))
    stop = p.add(operator("Filter", "Filter(stopwords)", selectivity=0.6))
    cooc = p.add(
        operator(
            "FlatMap",
            "FlatMap(coocPairs)",
            selectivity=4.0,
            udf_complexity=UdfComplexity.QUADRATIC,
        )
    )
    counts = p.add(operator("ReduceBy", "ReduceBy(coocCounts)", selectivity=0.03))
    frequent = p.add(operator("Filter", "Filter(minCount)", selectivity=0.4))
    vectors = p.add(
        operator("Map", "Map(wordVector)", udf_complexity=UdfComplexity.QUADRATIC)
    )
    ids = p.add(operator("ZipWithId", "ZipWithId"))
    norm = p.add(operator("Map", "Map(normalize)"))
    cache = p.add(operator("Cache", "Cache(vectors)"))
    p.chain(source, words, stop, cooc, counts, frequent, vectors, ids, norm, cache)

    # --- initial centroids (2 ops) ---
    seeds = p.add(
        operator("CollectionSource", "CollectionSource(seeds)"),
        dataset=DatasetProfile("seed-centroids", n_clusters, 64.0),
    )
    init = p.add(operator("Map", "Map(initCentroids)"))
    p.connect(seeds, init)

    # --- clustering loop (5 ops) ---
    assign = p.add(
        operator(
            "Map",
            "Map(assignCluster)",
            udf_complexity=UdfComplexity.SUPER_QUADRATIC,
        )
    )
    merge_seed = p.add(operator("Union", "Union(seeded)"))
    sums = p.add(
        operator(
            "ReduceBy", "ReduceBy(sumPerCluster)", fixed_output_cardinality=n_clusters
        )
    )
    update = p.add(operator("Map", "Map(newCentroids)"))
    nonempty = p.add(operator("Filter", "Filter(nonEmpty)", selectivity=0.95))
    p.connect(cache, assign)
    p.connect(assign, merge_seed)
    p.connect(init, merge_seed)
    p.chain(merge_seed, sums, update, nonempty)
    p.add_loop([assign, merge_seed, sums, update, nonempty], iterations=iterations)

    # --- labelling join + post-processing (9 ops) ---
    label = p.add(operator("Join", "Join(wordByCentroid)", selectivity=1.0))
    p.connect(cache, label)
    p.connect(nonempty, label)
    grouped = p.add(operator("ReduceBy", "ReduceBy(cluster)", selectivity=0.02))
    fmt = p.add(operator("Map", "Map(format)"))
    ordered = p.add(operator("Sort", "Sort(clusterSize)"))
    top = p.add(operator("Map", "Map(top)"))
    dedup = p.add(operator("Distinct", "Distinct", selectivity=0.9))
    named = p.add(operator("Map", "Map(label)"))
    sizable = p.add(operator("Filter", "Filter(minClusterSize)", selectivity=0.7))
    sink = p.add(operator("CollectionSink", "CollectionSink"))
    p.chain(label, grouped, fmt, ordered, top, dedup, named, sizable, sink)

    p.validate()
    assert p.n_operators == N_OPERATORS, p.n_operators
    return p
