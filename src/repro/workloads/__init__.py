"""The paper's query workloads (Table II) and synthetic plan generators.

Each workload module builds the logical plan of one query from Table II,
with the operator count the paper reports:

==============  ====  =======================================  ==============
query           #ops  description                              dataset
==============  ====  =======================================  ==============
WordCount          6  count distinct words                     Wikipedia
Word2NVec         14  word neighborhood vectors                Wikipedia
SimWords          26  clustering of similar words              Wikipedia
TPC-H Q1           7  aggregate query ("Aggregate")            TPC-H
TPC-H Q3          18  join query ("Join")                      TPC-H
K-means            7  clustering                               USCensus1990
SGD                6  stochastic gradient descent              HIGGS
CrocoPR           22  cross-community pagerank                 DBpedia
==============  ====  =======================================  ==============

:mod:`repro.workloads.synthetic` provides the synthetic pipelines, join
plans and the 40-operator dataflow used by Figs. 1, 9 and 10 and Table I.
"""

from repro.workloads import (
    crocopr,
    kmeans,
    sgd,
    simwords,
    synthetic,
    tpch,
    word2nvec,
    wordcount,
)

#: Table II — name → (module, expected operator count, dataset name).
TABLE2 = {
    "WordCount": (wordcount, 6, "wikipedia"),
    "Word2NVec": (word2nvec, 14, "wikipedia"),
    "SimWords": (simwords, 26, "wikipedia"),
    "TPC-H Q1": (tpch, 7, "tpch"),
    "TPC-H Q3": (tpch, 18, "tpch"),
    "Kmeans": (kmeans, 7, "uscensus1990"),
    "SGD": (sgd, 6, "higgs"),
    "CrocoPR": (crocopr, 22, "dbpedia"),
}

__all__ = [
    "wordcount",
    "word2nvec",
    "simwords",
    "tpch",
    "kmeans",
    "sgd",
    "crocopr",
    "synthetic",
    "TABLE2",
]
