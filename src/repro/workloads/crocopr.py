"""CrocoPR: cross-community PageRank (Table II, 22 operators).

The DBpedia page-link graph is cleaned, its URIs dictionary-encoded to
integers (two joins against a ZipWithId dictionary — the "replicate"
topology), PageRank iterates over the compacted graph, and a final join
decodes the ranks back to URIs. The paper's finding (Fig. 12(c)/(d)):
preprocess on Flink, then run PageRank on Java — the encoded graph is
small, and Java iterates with far less per-iteration overhead than
Spark/Flink.

Two variants:

* ``in_postgres=False`` — links on HDFS-style files (CrocoPR-HDFS);
* ``in_postgres=True`` — links stored in Postgres and polluted with NULL
  rows that must be filtered out; Postgres cannot run PageRank, so
  cross-platform execution is mandatory (CrocoPR-PG).
"""

from __future__ import annotations

from repro.exceptions import GenerationError
from repro.rheem.datasets import GB, MB, paper_dataset
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.operators import operator

#: Number of logical operators (Table II).
N_OPERATORS = 22

#: Dataset sizes of Fig. 11(h), in bytes.
FIG11_SIZES = [200 * MB, 1 * GB, 5 * GB, 10 * GB, 20 * GB, 1000 * GB]

#: Iteration counts of Figs. 12(c)/(d).
FIG12_ITERATIONS = [1, 10, 100]


def plan(
    size_bytes: float = 200 * MB,
    iterations: int = 10,
    in_postgres: bool = False,
) -> LogicalPlan:
    """The CrocoPR logical plan.

    Parameters
    ----------
    size_bytes:
        DBpedia page-links size.
    iterations:
        PageRank iterations (the loop count).
    in_postgres:
        Store the links in Postgres (adds the NULL-cleaning filter in
        place of the raw-triple validity filter).
    """
    if iterations < 1:
        raise GenerationError(f"iterations must be >= 1, got {iterations}")
    dataset = paper_dataset("dbpedia", size_bytes)
    p = LogicalPlan("crocopr_pg" if in_postgres else "crocopr")

    # --- ingestion + cleaning (4 ops) ---
    if in_postgres:
        source = p.add(operator("TableSource", "TableSource(pagelinks)"), dataset=dataset)
        clean = p.add(operator("Filter", "Filter(notNull)", selectivity=0.9))
    else:
        source = p.add(
            operator("TextFileSource", "TextFileSource(pagelinks)"), dataset=dataset
        )
        clean = p.add(operator("Filter", "Filter(validTriple)", selectivity=0.9))
    parse = p.add(operator("Map", "Map(parseTriple)"))
    links = p.add(operator("FlatMap", "FlatMap(extractLink)", selectivity=1.0))
    p.chain(source, clean, parse, links)

    # --- dictionary encoding (8 ops; the dictionary is replicated) ---
    dedup = p.add(operator("Distinct", "Distinct(links)", selectivity=0.6))
    uris = p.add(operator("FlatMap", "FlatMap(bothEndpoints)", selectivity=2.0))
    # Dictionary encoding compresses aggressively: DBpedia URIs repeat
    # heavily across links, so distinct URIs are a small fraction.
    uniq = p.add(operator("Distinct", "Distinct(uris)", selectivity=0.04))
    dictionary = p.add(operator("ZipWithId", "ZipWithId(dictionary)"))
    enc_src = p.add(operator("Join", "Join(encodeSource)", selectivity=1.0))
    swap = p.add(operator("Map", "Map(swapKey)"))
    enc_dst = p.add(operator("Join", "Join(encodeTarget)", selectivity=1.0))
    adjacency = p.add(operator("ReduceBy", "ReduceBy(adjacency)", selectivity=0.08))
    p.chain(links, dedup)
    p.chain(dedup, uris, uniq, dictionary)
    p.connect(dedup, enc_src)
    p.connect(dictionary, enc_src)
    p.chain(enc_src, swap, enc_dst)
    p.connect(dictionary, enc_dst)
    p.chain(enc_dst, adjacency)

    # --- PageRank (2 ops, iterative) ---
    init = p.add(operator("Map", "Map(initRanks)"))
    pagerank = p.add(operator("PageRank", "PageRank"))
    p.chain(adjacency, init, pagerank)
    p.add_loop([pagerank], iterations=iterations)

    # --- decoding + post-processing (8 ops) ---
    pairs = p.add(operator("Map", "Map(rankPairs)"))
    decode = p.add(operator("Join", "Join(decodeURIs)", selectivity=1.0))
    to_uri = p.add(operator("Map", "Map(toURI)"))
    ordered = p.add(operator("Sort", "Sort(rank desc)"))
    top = p.add(operator("Filter", "Filter(topK)", selectivity=1e-3))
    fmt = p.add(operator("Map", "Map(format)"))
    community = p.add(operator("Map", "Map(communityTag)"))
    sink = p.add(operator("CollectionSink", "CollectionSink"))
    p.chain(pagerank, pairs, decode)
    p.connect(dictionary, decode)
    p.chain(decode, to_uri, ordered, top, fmt, community, sink)

    p.validate()
    assert p.n_operators == N_OPERATORS, p.n_operators
    return p
