"""Synthetic plans for the efficiency and scalability experiments.

* :func:`pipeline_plan` — an n-operator pipeline (Figs. 9(a)-(d), Table I;
  the paper notes that complex workflows easily reach 80+ operators);
* :func:`join_plan` — a plan with j joins (Fig. 10);
* :func:`dataflow_plan` — the 40-operator "synthetic pipeline dataflow"
  of Fig. 1 (a pipeline with a couple of junctures, mimicking a long ETL
  dataflow).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import GenerationError
from repro.rheem.datasets import DatasetProfile
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.operators import UdfComplexity, operator

#: Unary operator kinds cycled through synthetic pipelines. All of them are
#: supported by every platform of a synthetic registry.
_PIPELINE_KINDS = (
    "Map",
    "Filter",
    "FlatMap",
    "ReduceBy",
    "Sort",
    "Distinct",
    "MapPartitions",
    "ZipWithId",
)

_COMPLEXITIES = (
    UdfComplexity.LOGARITHMIC,
    UdfComplexity.LINEAR,
    UdfComplexity.QUADRATIC,
)


def _dataset(cardinality: float, name: str = "synthetic") -> DatasetProfile:
    return DatasetProfile(name, cardinality=cardinality, tuple_size=100.0)


def pipeline_plan(
    n_operators: int,
    cardinality: float = 1e6,
    seed: Optional[int] = None,
) -> LogicalPlan:
    """A pipeline with exactly ``n_operators`` operators.

    The interior operators cycle deterministically through common unary
    kinds (or are drawn with ``seed``), with varied UDF complexities, so
    consecutive plans are structurally diverse but reproducible.
    """
    if n_operators < 3:
        raise GenerationError(
            f"a pipeline needs >= 3 operators (source, op, sink), got {n_operators}"
        )
    rng = np.random.default_rng(seed) if seed is not None else None
    p = LogicalPlan(f"pipeline{n_operators}")
    ops = [p.add(operator("TextFileSource"), dataset=_dataset(cardinality))]
    for i in range(n_operators - 2):
        if rng is None:
            kind = _PIPELINE_KINDS[i % len(_PIPELINE_KINDS)]
            complexity = _COMPLEXITIES[i % len(_COMPLEXITIES)]
        else:
            kind = _PIPELINE_KINDS[int(rng.integers(len(_PIPELINE_KINDS)))]
            complexity = _COMPLEXITIES[int(rng.integers(len(_COMPLEXITIES)))]
        # Keep cardinalities roughly stable along the pipeline so very long
        # pipelines neither explode nor collapse to empty flows.
        selectivity = {"FlatMap": 1.5, "ReduceBy": 0.6, "Filter": 0.8}.get(kind, 1.0)
        ops.append(
            p.add(operator(kind, selectivity=selectivity, udf_complexity=complexity))
        )
    ops.append(p.add(operator("CollectionSink")))
    p.chain(*ops)
    p.validate()
    return p


def join_plan(
    n_joins: int,
    cardinality: float = 1e6,
) -> LogicalPlan:
    """A bushy-ish plan with ``n_joins`` join operators (Fig. 10).

    Each join merges one fresh source branch (source → filter → project)
    into the running spine, followed by an aggregate/sort/sink suffix —
    the classical multi-way relational query shape.
    """
    if n_joins < 1:
        raise GenerationError(f"need >= 1 joins, got {n_joins}")
    p = LogicalPlan(f"joins{n_joins}")

    def branch(index: int):
        src = p.add(
            operator("TextFileSource", f"Source(r{index})"),
            dataset=_dataset(cardinality / (index + 1), name=f"r{index}"),
        )
        flt = p.add(operator("Filter", selectivity=0.5))
        prj = p.add(operator("Project"))
        p.chain(src, flt, prj)
        return prj

    spine = branch(0)
    for j in range(n_joins):
        other = branch(j + 1)
        join = p.add(operator("Join", f"Join{j}", selectivity=0.8))
        p.connect(spine, join)
        p.connect(other, join)
        spine = join
    reduced = p.add(operator("ReduceBy", selectivity=0.1))
    ordered = p.add(operator("Sort"))
    sink = p.add(operator("CollectionSink"))
    p.chain(spine, reduced, ordered, sink)
    p.validate()
    return p


def dataflow_plan(
    n_operators: int = 40,
    cardinality: float = 1e6,
) -> LogicalPlan:
    """The Fig. 1 "synthetic (40 op.)" dataflow.

    Two source pipelines meet in a join, followed by one long processing
    pipeline — a shape representative of large ETL dataflows.
    """
    if n_operators < 10:
        raise GenerationError(f"dataflow needs >= 10 operators, got {n_operators}")
    p = LogicalPlan(f"dataflow{n_operators}")
    head = n_operators // 5

    def source_pipeline(index: int, length: int):
        ops = [
            p.add(
                operator("TextFileSource", f"Source(s{index})"),
                dataset=_dataset(cardinality / (index + 1), name=f"s{index}"),
            )
        ]
        for i in range(length - 1):
            kind = _PIPELINE_KINDS[(i + index) % len(_PIPELINE_KINDS)]
            selectivity = {"FlatMap": 1.5, "ReduceBy": 0.6, "Filter": 0.8}.get(
                kind, 1.0
            )
            ops.append(p.add(operator(kind, selectivity=selectivity)))
        p.chain(*ops)
        return ops[-1]

    left = source_pipeline(0, head)
    right = source_pipeline(1, head)
    join = p.add(operator("Join", selectivity=0.8))
    p.connect(left, join)
    p.connect(right, join)

    remaining = n_operators - 2 * head - 2  # join and sink are accounted for
    tail = [join]
    for i in range(remaining):
        kind = _PIPELINE_KINDS[i % len(_PIPELINE_KINDS)]
        selectivity = {"FlatMap": 1.5, "ReduceBy": 0.6, "Filter": 0.8}.get(kind, 1.0)
        tail.append(p.add(operator(kind, selectivity=selectivity)))
    tail.append(p.add(operator("CollectionSink")))
    p.chain(*tail)
    p.validate()
    assert p.n_operators == n_operators, p.n_operators
    return p
