"""Word2NVec: word neighborhood vectors (Table II, 14 operators).

A compute-heavy text-mining pipeline over Wikipedia: extract words and
their neighbourhoods, aggregate co-occurrences per word, build and
normalize neighbourhood vectors. The vector-building UDF is quadratic in
the neighbourhood width, which is what makes single-node execution
unattractive beyond tiny inputs (Fig. 11(b), 3–150 MB).
"""

from __future__ import annotations

from repro.rheem.datasets import MB, paper_dataset
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.operators import UdfComplexity, operator

#: Number of logical operators (Table II).
N_OPERATORS = 14

#: Dataset sizes of Fig. 11(b), in bytes.
FIG11_SIZES = [3 * MB, 30 * MB, 60 * MB, 90 * MB, 150 * MB]


def plan(size_bytes: float = 30 * MB) -> LogicalPlan:
    """The Word2NVec logical plan over ``size_bytes`` of Wikipedia text."""
    dataset = paper_dataset("wikipedia", size_bytes)
    p = LogicalPlan("word2nvec")
    source = p.add(operator("TextFileSource", "TextFileSource(wiki)"), dataset=dataset)
    sentences = p.add(operator("FlatMap", "FlatMap(sentences)", selectivity=1.5))
    clean = p.add(operator("Map", "Map(clean)"))
    neighbors = p.add(
        operator(
            "FlatMap",
            "FlatMap(neighborhoods)",
            selectivity=6.0,
            udf_complexity=UdfComplexity.SUPER_QUADRATIC,
        )
    )
    pairs = p.add(operator("Map", "Map(word,neighborhood)"))
    combine = p.add(operator("ReduceBy", "ReduceBy(combine)", selectivity=0.04))
    support = p.add(operator("Filter", "Filter(minSupport)", selectivity=0.5))
    vector = p.add(
        operator(
            "Map",
            "Map(buildVector)",
            udf_complexity=UdfComplexity.SUPER_QUADRATIC,
        )
    )
    ids = p.add(operator("ZipWithId", "ZipWithId"))
    norm = p.add(operator("Map", "Map(normalize)"))
    dedup = p.add(operator("Distinct", "Distinct", selectivity=0.9))
    ordered = p.add(operator("Sort", "Sort(byWord)"))
    fmt = p.add(operator("Map", "Map(format)"))
    sink = p.add(operator("CollectionSink", "CollectionSink"))
    p.chain(
        source, sentences, clean, neighbors, pairs, combine, support,
        vector, ids, norm, dedup, ordered, fmt, sink,
    )
    p.validate()
    return p
