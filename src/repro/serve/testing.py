"""Picklable test doubles for the batch service.

Process-pool workers rebuild their optimizer from a pickled factory, so
the differential/concurrency suites need *picklable* cost models and
optimizer wrappers — closures and test-local classes do not qualify.
These doubles are deterministic (seeded) and cheap, and double as the
reference oracles of the differential suite: a linear model is
merge-decomposable, so boundary pruning is provably lossless against it
(Def. 2) and the exhaustive baseline must agree with Robopt exactly.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.api import Optimizer, OptimizationResult
from repro.rheem.logical_plan import LogicalPlan

__all__ = [
    "LinearRuntimeModel",
    "FlakyOptimizer",
    "CrashingOptimizer",
    "SleepyOptimizer",
    "TransientOptimizer",
    "CountingOptimizer",
    "linear_robopt_factory",
    "flaky_robopt_factory",
    "crashing_robopt_factory",
    "sleepy_robopt_factory",
    "transient_robopt_factory",
    "slow_init_robopt_factory",
    "counting_robopt_factory",
    "count_markers",
    "DaemonHarness",
    "run_daemon",
]


class LinearRuntimeModel:
    """A deterministic linear "runtime model": ``predict = X @ w``.

    Weights are drawn uniformly from [0, 1) with a seeded generator —
    the same construction as the test suite's ``make_linear_cost`` — so
    costs are non-negative on non-negative features and decompose over
    merges.
    """

    def __init__(self, n_features: int, seed: int = 0):
        self.n_features = n_features
        self.seed = seed
        rng = np.random.default_rng(seed)
        self.weights = rng.uniform(0.0, 1.0, n_features)

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        return X @ self.weights


class FlakyOptimizer:
    """Delegates to an inner optimizer; raises for marked plans.

    Any plan whose name contains ``trigger`` (default ``"poison"``)
    raises ``RuntimeError`` — the fault-injection hook of the
    worker-failure tests.
    """

    def __init__(self, inner: Optimizer, trigger: str = "poison"):
        self.inner = inner
        self.trigger = trigger

    @property
    def registry(self):
        return self.inner.registry

    def optimize(self, plan: LogicalPlan) -> OptimizationResult:
        if self.trigger in plan.name:
            raise RuntimeError(f"injected failure for plan {plan.name!r}")
        return self.inner.optimize(plan)


class CrashingOptimizer:
    """Delegates to an inner optimizer; kills the *process* for marked plans.

    Plans whose name contains ``trigger`` (default ``"crash"``) terminate
    the worker with ``os._exit`` — the hook of the broken-pool tests (a
    dead worker, unlike a raised exception, breaks the whole pool).
    """

    def __init__(self, inner: Optimizer, trigger: str = "crash"):
        self.inner = inner
        self.trigger = trigger

    @property
    def registry(self):
        return self.inner.registry

    def optimize(self, plan: LogicalPlan) -> OptimizationResult:
        if self.trigger in plan.name:
            import os

            os._exit(13)
        return self.inner.optimize(plan)


class SleepyOptimizer:
    """Delegates to an inner optimizer; sleeps first for marked plans.

    Plans whose name contains ``trigger`` (default ``"sleep"``) block for
    ``sleep_s`` seconds before optimizing — the hook of the per-job
    timeout tests.
    """

    def __init__(
        self, inner: Optimizer, sleep_s: float = 5.0, trigger: str = "sleep"
    ):
        self.inner = inner
        self.sleep_s = sleep_s
        self.trigger = trigger

    @property
    def registry(self):
        return self.inner.registry

    def optimize(self, plan: LogicalPlan) -> OptimizationResult:
        if self.trigger in plan.name:
            time.sleep(self.sleep_s)
        return self.inner.optimize(plan)


class TransientOptimizer:
    """Delegates to an inner optimizer; fails each marked plan N times.

    Plans whose name contains ``trigger`` (default ``"transient"``) raise
    ``RuntimeError`` on their first ``fail_times`` attempts, then succeed
    — the hook of the retry-with-backoff tests. Attempt counts are kept
    as marker files under ``state_dir`` so they survive worker restarts
    and are shared across pool processes.
    """

    def __init__(
        self,
        inner: Optimizer,
        state_dir: str,
        fail_times: int = 1,
        trigger: str = "transient",
    ):
        self.inner = inner
        self.state_dir = state_dir
        self.fail_times = fail_times
        self.trigger = trigger

    @property
    def registry(self):
        return self.inner.registry

    def optimize(self, plan: LogicalPlan) -> OptimizationResult:
        if self.trigger in plan.name:
            import os

            os.makedirs(self.state_dir, exist_ok=True)
            safe = "".join(c if c.isalnum() else "_" for c in plan.name)
            attempts = len(
                [f for f in os.listdir(self.state_dir) if f.startswith(safe + ".")]
            )
            if attempts < self.fail_times:
                with open(
                    os.path.join(self.state_dir, f"{safe}.{attempts}"), "w"
                ):
                    pass
                raise RuntimeError(
                    f"transient failure {attempts + 1}/{self.fail_times} "
                    f"for plan {plan.name!r}"
                )
        return self.inner.optimize(plan)


def _touch_marker(state_dir: str, prefix: str) -> None:
    """Drop one uniquely-named marker file under ``state_dir``."""
    import os
    import tempfile

    os.makedirs(state_dir, exist_ok=True)
    fd, _ = tempfile.mkstemp(prefix=f"{prefix}.", dir=state_dir)
    os.close(fd)


def count_markers(state_dir: str, prefix: str) -> int:
    """How many ``prefix``-markers the counting probes dropped so far."""
    import os

    if not os.path.isdir(state_dir):
        return 0
    return len(
        [f for f in os.listdir(state_dir) if f.startswith(prefix + ".")]
    )


class CountingOptimizer:
    """Delegates to an inner optimizer; counts events via marker files.

    The warm-worker probe: construction drops an ``init`` marker (done by
    the builder, so it counts pool worker initializations) and every
    ``optimize`` call drops an ``opt`` marker, optionally after sleeping
    ``sleep_s`` — long enough for a sibling thread to find the job still
    in flight. Markers live under ``state_dir`` (use
    :func:`count_markers` to read them), so counts are shared across
    pool processes and survive worker recycling.
    """

    def __init__(self, inner: Optimizer, state_dir: str, sleep_s: float = 0.0):
        self.inner = inner
        self.state_dir = state_dir
        self.sleep_s = sleep_s

    @property
    def registry(self):
        return self.inner.registry

    def optimize(self, plan: LogicalPlan) -> OptimizationResult:
        if self.sleep_s > 0:
            time.sleep(self.sleep_s)
        _touch_marker(self.state_dir, "opt")
        return self.inner.optimize(plan)


# ---------------------------------------------------------------------------
# Picklable factories (functools.partial over these module-level builders
# pickles by reference; the pool rebuilds the stack inside each worker).
# ---------------------------------------------------------------------------


def _build_linear_robopt(platforms, seed: int, priority: str):
    from repro.core.features import FeatureSchema
    from repro.core.optimizer import Robopt
    from repro.rheem.platforms import default_registry, synthetic_registry

    if isinstance(platforms, int):
        registry = synthetic_registry(platforms)
    else:
        registry = default_registry(tuple(platforms))
    schema = FeatureSchema(registry)
    model = LinearRuntimeModel(schema.n_features, seed=seed)
    return Robopt(registry, model, priority=priority, schema=schema)


def linear_robopt_factory(platforms=("java", "spark", "flink"), seed: int = 0, priority: str = "robopt"):
    """Factory for a Robopt over a deterministic linear model.

    ``platforms`` is either a name tuple (default registry) or an int
    (synthetic registry of that many platforms).
    """
    import functools

    return functools.partial(_build_linear_robopt, platforms, seed, priority)


def _build_flaky(platforms, seed: int, trigger: str):
    return FlakyOptimizer(_build_linear_robopt(platforms, seed, "robopt"), trigger)


def flaky_robopt_factory(platforms=("java", "spark", "flink"), seed: int = 0, trigger: str = "poison"):
    """Factory for a fault-injecting linear Robopt (see FlakyOptimizer)."""
    import functools

    return functools.partial(_build_flaky, platforms, seed, trigger)


def _build_crashing(platforms, seed: int, trigger: str):
    return CrashingOptimizer(_build_linear_robopt(platforms, seed, "robopt"), trigger)


def crashing_robopt_factory(platforms=("java", "spark", "flink"), seed: int = 0, trigger: str = "crash"):
    """Factory for a worker-killing linear Robopt (see CrashingOptimizer)."""
    import functools

    return functools.partial(_build_crashing, platforms, seed, trigger)


def _build_sleepy(platforms, seed: int, sleep_s: float, trigger: str):
    return SleepyOptimizer(
        _build_linear_robopt(platforms, seed, "robopt"), sleep_s, trigger
    )


def sleepy_robopt_factory(
    platforms=("java", "spark", "flink"),
    seed: int = 0,
    sleep_s: float = 5.0,
    trigger: str = "sleep",
):
    """Factory for a delay-injecting linear Robopt (see SleepyOptimizer)."""
    import functools

    return functools.partial(_build_sleepy, platforms, seed, sleep_s, trigger)


def _build_transient(platforms, seed: int, state_dir: str, fail_times: int, trigger: str):
    return TransientOptimizer(
        _build_linear_robopt(platforms, seed, "robopt"), state_dir, fail_times, trigger
    )


def transient_robopt_factory(
    platforms=("java", "spark", "flink"),
    seed: int = 0,
    state_dir: str = ".",
    fail_times: int = 1,
    trigger: str = "transient",
):
    """Factory for a transiently-failing linear Robopt (see TransientOptimizer)."""
    import functools

    return functools.partial(
        _build_transient, platforms, seed, state_dir, fail_times, trigger
    )


def _build_counting(platforms, seed: int, state_dir: str, sleep_s: float):
    _touch_marker(state_dir, "init")
    return CountingOptimizer(
        _build_linear_robopt(platforms, seed, "robopt"), state_dir, sleep_s
    )


def counting_robopt_factory(
    platforms=("java", "spark", "flink"),
    seed: int = 0,
    state_dir: str = ".",
    sleep_s: float = 0.0,
):
    """Factory for an event-counting linear Robopt (see CountingOptimizer).

    Construction drops an ``init`` marker in ``state_dir``; each
    optimization drops an ``opt`` marker. Read them back with
    :func:`count_markers`.
    """
    import functools

    return functools.partial(_build_counting, platforms, seed, state_dir, sleep_s)


def _build_slow_init(platforms, seed: int, init_sleep_s: float):
    time.sleep(init_sleep_s)
    return _build_linear_robopt(platforms, seed, "robopt")


def slow_init_robopt_factory(
    platforms=("java", "spark", "flink"), seed: int = 0, init_sleep_s: float = 5.0
):
    """Factory whose *construction* blocks for ``init_sleep_s`` seconds.

    The hook of the timeout-covers-construction tests: worker
    initialization runs the factory, so a per-job timeout must start
    ticking before the pool (and this sleep) exists.
    """
    import functools

    return functools.partial(_build_slow_init, platforms, seed, init_sleep_s)


# ---------------------------------------------------------------------------
# The daemon harness (tests + benchmarks host the event loop off-thread)
# ---------------------------------------------------------------------------


class DaemonHarness:
    """One :class:`~repro.serve.daemon.OptimizationDaemon` event loop in a
    background thread, driven by synchronous clients outside it.

    ``asyncio.run(daemon.run(...))`` happens off the main thread, so the
    daemon's signal hooks are skipped (it tolerates that) and drain is
    driven by the ``shutdown`` frame or :meth:`stop`. The harness owns a
    fresh :class:`~repro.obs.Tracer` (``harness.tracer``) unless one is
    passed in.
    """

    def __init__(self, service, tracer=None, **config_kwargs):
        from repro.obs import Tracer
        from repro.serve.daemon import DaemonConfig, OptimizationDaemon

        config_kwargs.setdefault("drain_grace_s", 20.0)
        self.tracer = tracer if tracer is not None else Tracer()
        self.daemon = OptimizationDaemon(
            service, DaemonConfig(**config_kwargs), tracer=self.tracer
        )
        self.exit_code = None
        self.addresses = []
        self.loop = None
        self._ready = None
        self._thread = None

    def _run(self):
        import asyncio

        async def main():
            def ready(addresses):
                self.addresses = addresses
                self.loop = asyncio.get_running_loop()
                self._ready.set()

            return await self.daemon.run(ready=ready)

        try:
            self.exit_code = asyncio.run(main())
        finally:
            self._ready.set()  # unblock start() even on a failed boot

    def start(self) -> "DaemonHarness":
        import threading

        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30.0) or not self.addresses:
            raise RuntimeError("daemon failed to start")
        return self

    @property
    def address(self) -> str:
        """The first bound listen address (``unix:...`` / ``host:port``)."""
        return self.addresses[0]

    def stop(self, timeout: float = 30.0):
        """Request drain (idempotent), join the loop thread, return the
        daemon's exit code (0 = clean drain)."""
        import contextlib

        if self.loop is not None and self._thread is not None and self._thread.is_alive():
            with contextlib.suppress(RuntimeError):
                self.loop.call_soon_threadsafe(self.daemon.request_shutdown)
        if self._thread is not None:
            self._thread.join(timeout)
            if self._thread.is_alive():
                raise RuntimeError("daemon loop failed to exit")
        return self.exit_code


def run_daemon(service, tracer=None, **config_kwargs):
    """Context manager: a running :class:`DaemonHarness`, drained on exit."""
    import contextlib

    @contextlib.contextmanager
    def _ctx():
        harness = DaemonHarness(service, tracer=tracer, **config_kwargs).start()
        try:
            yield harness
        finally:
            harness.stop()

    return _ctx()
