"""The serving-side feedback controller: execute, observe, retrain, swap.

This is the glue between three pieces that already exist in isolation:
:class:`repro.ml.feedback.FeedbackLoop` (accumulate labelled
observations, refit), :class:`repro.ml.drift.DriftMonitor` (windowed
q-error over predicted-vs-observed), and the serving stack's model swap
hooks (:meth:`repro.serve.batch.BatchOptimizationService.install_model`).
:class:`FeedbackController` closes the loop the paper gestures at in
§VII-A ("observing patterns in the execution logs"):

1. every optimized plan the service publishes is executed on the
   (simulated) cluster and the measured runtime is fed to both the
   feedback log and the drift monitor — degraded plans and failed
   executions are rejected, they are not labels;
2. when either ``retrain_after`` fresh observations accumulate or the
   drift monitor reports ``DRIFTED``, a refit runs *off the critical
   path* (optionally on a background thread) on the base dataset plus
   everything observed;
3. the refitted model is handed to ``install`` — a single atomic swap on
   the serving side — the drift window resets, and ``model_generation``
   increments so stats frames and bench records can tell model eras
   apart.

The controller never raises into the serving hot path: execution
failures, refit errors and install errors are counted
(``serve.feedback.*``) and recorded in :attr:`last_error`.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Optional

import numpy as np

from repro.api import OptimizationResult
from repro.exceptions import ReproError
from repro.ml.drift import DriftMonitor, DriftStatus
from repro.ml.feedback import FeedbackLoop
from repro.obs import current_tracer

__all__ = ["FeedbackController"]


class FeedbackController:
    """Executes optimized plans and retrains the model when they disagree.

    Parameters
    ----------
    loop:
        The :class:`FeedbackLoop` holding the observation log and the
        retraining recipe (algorithm, weighting, base dataset).
    executor:
        Anything with ``execute(xplan) -> report`` carrying ``ok`` and
        ``runtime_s`` (a :class:`repro.simulator.executor.SimulatedExecutor`
        here; a real cluster driver in a deployment).
    drift:
        The :class:`DriftMonitor`; a default one is built when omitted.
    retrain_after:
        Observation-count trigger: a refit is due after this many
        accepted observations even if drift never fires. ``0`` disables
        the count trigger (drift-only retraining).
    min_observations:
        Refits are deferred until the loop holds at least this many
        observations — retraining a forest on three points swaps real
        coverage for noise.
    install:
        Called with each freshly trained model; the callee is
        responsible for the atomic swap (see
        ``BatchOptimizationService.install_model``).
    background:
        When true, refits run on a daemon thread so the serving path
        never blocks on a fit; tests leave this off for determinism.
    timeout_s:
        Execution timeout passed to the executor.
    """

    def __init__(
        self,
        loop: FeedbackLoop,
        executor,
        drift: Optional[DriftMonitor] = None,
        retrain_after: int = 50,
        min_observations: int = 8,
        install: Optional[Callable] = None,
        background: bool = False,
        timeout_s: float = 3600.0,
    ):
        if retrain_after < 0:
            raise ReproError(
                f"retrain_after must be >= 0, got {retrain_after}"
            )
        if min_observations < 1:
            raise ReproError(
                f"min_observations must be >= 1, got {min_observations}"
            )
        self.loop = loop
        self.executor = executor
        self.drift = drift if drift is not None else DriftMonitor()
        self.retrain_after = int(retrain_after)
        self.min_observations = int(min_observations)
        self.install = install
        self.background = bool(background)
        self.timeout_s = float(timeout_s)
        self.model_generation = 0
        self.executions = 0
        self.execution_failures = 0
        self.last_error: Optional[str] = None
        self._lock = threading.Lock()
        self._retraining = False
        self._threads = []

    # ------------------------------------------------------------------
    def observe(self, result: OptimizationResult) -> bool:
        """Execute one optimized plan and learn from the outcome.

        Returns ``True`` when the observation entered the feedback log.
        Failed executions (OOM/timeout) and degraded plans are rejected;
        the drift monitor only sees accepted pairs, so a burst of
        fallback-served plans cannot masquerade as model drift.
        """
        tracer = current_tracer()
        try:
            report = self.executor.execute(
                result.execution_plan, timeout_s=self.timeout_s
            )
        except Exception as exc:
            self.execution_failures += 1
            self.last_error = f"{type(exc).__name__}: {exc}"
            tracer.count("serve.feedback.execution_failed")
            return False
        self.executions += 1
        if not report.ok:
            self.execution_failures += 1
            self.last_error = f"execution {report.status}: {report.detail}"
            tracer.count("serve.feedback.execution_failed")
            return False
        with self._lock:
            accepted = self.loop.observe(
                result.execution_plan, report.runtime_s, stats=result.stats
            )
        if not accepted:
            return False
        predicted = float(result.predicted_runtime)
        if np.isfinite(predicted):
            self.drift.observe(predicted, float(report.runtime_s))
        tracer.count("serve.feedback.observed")
        return True

    # ------------------------------------------------------------------
    def retrain_due(self) -> bool:
        """Is a refit warranted right now?"""
        if self._retraining:
            return False
        if self.loop.n_observations < self.min_observations:
            return False
        if (
            self.retrain_after
            and self.loop.observations_since_retrain >= self.retrain_after
        ):
            return True
        return self.drift.status() is DriftStatus.DRIFTED

    def maybe_retrain(self) -> bool:
        """Kick off a refit when one is due; returns whether one started.

        With ``background=True`` the fit runs on a daemon thread and
        this returns immediately; otherwise the fit completes inline
        (still off the per-job critical path — the batch service calls
        this once per published batch, not per plan).
        """
        with self._lock:
            if not self.retrain_due():
                return False
            self._retraining = True
        if self.background:
            thread = threading.Thread(
                target=self._retrain, name="repro-feedback-retrain", daemon=True
            )
            self._threads.append(thread)
            thread.start()
        else:
            self._retrain()
        return True

    def _retrain(self) -> None:
        tracer = current_tracer()
        try:
            # Snapshot under the lock (observe appends rows/labels as a
            # non-atomic pair), fit outside it so serving never blocks.
            with self._lock:
                dataset = self.loop.training_dataset()
            model = self.loop.retrain(dataset)
        except Exception as exc:
            self.last_error = f"{type(exc).__name__}: {exc}"
            tracer.count("serve.feedback.retrain_failed")
            with self._lock:
                self._retraining = False
            return
        try:
            if self.install is not None:
                self.install(model)
        except Exception as exc:
            self.last_error = f"{type(exc).__name__}: {exc}"
            tracer.count("serve.feedback.install_failed")
            with self._lock:
                self._retraining = False
            return
        self.drift.reset()
        with self._lock:
            self.model_generation += 1
            self._retraining = False
        tracer.count("serve.feedback.retrains")

    def join(self, timeout_s: float = 30.0) -> None:
        """Wait for any in-flight background refit (tests, shutdown)."""
        for thread in self._threads:
            thread.join(timeout=timeout_s)
        self._threads = [t for t in self._threads if t.is_alive()]

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Stats-frame payload: drift health plus retrain bookkeeping."""
        out = dict(self.drift.snapshot())
        q = out.get("q_error")
        if isinstance(q, float) and not np.isfinite(q):
            out["q_error"] = None  # JSON-safe
        out.update(
            {
                "observations_total": self.loop.n_observations,
                "observations_since_retrain": self.loop.observations_since_retrain,
                "rejected": self.loop.rejected,
                "executions": self.executions,
                "execution_failures": self.execution_failures,
                "retrains": self.loop.n_retrains,
                "model_generation": self.model_generation,
            }
        )
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FeedbackController(observations={self.loop.n_observations}, "
            f"retrains={self.loop.n_retrains}, "
            f"generation={self.model_generation}, "
            f"drift={self.drift.status().value})"
        )
