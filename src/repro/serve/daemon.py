"""``repro serve``: the persistent asyncio front door.

The batch CLI optimizes one JSONL file and exits; a millions-of-users
service needs a *process* that outlives any one client. The
:class:`OptimizationDaemon` owns a single long-lived
:class:`~repro.serve.batch.BatchOptimizationService` (warm worker pool,
plan cache, resilience armor) and serves concurrent network clients over
newline-delimited JSON frames (:mod:`repro.serve.protocol`) on a unix
socket and/or TCP:

* **Admission control** — accepted-but-unanswered requests are bounded
  by ``max_pending``; past the bound, new work is *refused* with a
  structured ``overloaded`` error carrying ``retry_after_ms`` (estimated
  from the live latency window) instead of queueing unboundedly. An
  overload sheds load in microseconds; an unbounded queue converts it
  into timeouts for everyone.
* **Micro-batching** — one dispatcher task drains whatever requests are
  queued *right now* (up to ``max_batch``) and drives them through the
  service as one batch in a worker thread: concurrent clients get the
  batch layer's dedupe, singleton memoization and warm-pool parallelism
  for free, and the service is only ever entered single-file.
* **Cross-client coalescing** — a fingerprint-keyed in-flight table at
  the daemon level (the asyncio twin of the service's ``_inflight``):
  while a fingerprint is being optimized for one client, identical
  requests from *any other connection* await that same computation
  instead of re-enumerating (``serve.jobs_coalesced``). Kepler's
  observation is that real traffic is dominated by repeated parametric
  templates — this is where that observation pays.
* **Per-request deadlines** — an ``optimize`` frame's ``deadline_ms``
  becomes a :class:`repro.resilience.budget.Budget` on its job, so the
  existing anytime machinery answers with the best complete plan found
  in time (``degraded`` set) rather than missing the deadline.
* **Graceful drain** — SIGTERM/SIGINT or a ``shutdown`` frame flips the
  daemon into draining: new optimize frames get ``shutting_down``
  errors, every accepted job is answered, then the process exits 0. A
  drain that cannot finish within ``drain_grace_s`` force-stops and
  exits 1 — visible, not hung.
* **Introspection** — a ``stats`` frame returns the tracer's counters
  plus live p50/p95/p99 over the recent answered-request window. When
  the owned service carries a :class:`~repro.serve.template.TemplateCache`
  (``repro serve --template-cache``), its ``serve.template.*`` counters
  (hits, misses, guardrail_rejects, low_confidence, ...) appear here
  too — batches run under the daemon's tracer, so the second cache
  tier is observable without any protocol change.

A malformed or version-mismatched frame yields an ``error`` response on
that connection; no client input can raise past the serve loop.
"""

from __future__ import annotations

import asyncio
import collections
import signal
import time
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.exceptions import ReproError
from repro.obs import Tracer, use_tracer
from repro.serve.batch import BatchJob, BatchOptimizationService, JobOutcome, _percentile
from repro.serve.fingerprint import plan_fingerprint
from repro.serve.protocol import (
    ErrorResponse,
    OptimizeRequest,
    OptimizeResponse,
    ProtocolError,
    ShutdownRequest,
    ShutdownResponse,
    StatsRequest,
    StatsResponse,
    parse_request,
    request_to_plan,
)

__all__ = ["DaemonConfig", "OptimizationDaemon"]

#: Longest accepted frame (bytes). Plan documents are small (a few KB);
#: 16 MiB leaves room for pathological-but-legitimate plans while
#: bounding what one client can make the daemon buffer.
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Fallback per-job latency estimate before the window has data.
_DEFAULT_LATENCY_S = 0.1


@dataclass
class DaemonConfig:
    """Tuning knobs of one :class:`OptimizationDaemon`.

    ``unix_path`` and/or ``host``+``port`` select the listening
    transports (at least one required). ``max_pending`` is the admission
    bound; ``max_batch`` caps one dispatcher micro-batch;
    ``default_deadline_ms`` applies to optimize frames that carry none;
    ``drain_grace_s`` bounds how long a drain may wait for in-flight
    work; ``coalesce`` gates the cross-client in-flight table;
    ``latency_window`` sizes the ring the stats tails are computed over.
    """

    unix_path: Optional[str] = None
    host: Optional[str] = None
    port: int = 0
    max_pending: int = 64
    max_batch: int = 32
    default_deadline_ms: Optional[float] = None
    drain_grace_s: float = 30.0
    coalesce: bool = True
    latency_window: int = 1024

    def __post_init__(self):
        if self.unix_path is None and self.host is None:
            raise ReproError("the daemon needs a unix_path and/or a host to listen on")
        if self.max_pending < 1:
            raise ReproError(f"max_pending must be >= 1, got {self.max_pending}")
        if self.max_batch < 1:
            raise ReproError(f"max_batch must be >= 1, got {self.max_batch}")


@dataclass
class _Accepted:
    """One admitted optimize request riding through the dispatcher."""

    request: OptimizeRequest
    job: BatchJob
    key: Tuple[str, Optional[float]]
    future: "asyncio.Future[JobOutcome]"
    accepted_at: float


class OptimizationDaemon:
    """One long-lived service, many network clients (see module docs).

    The daemon does not own the service's lifetime semantics beyond
    :meth:`~repro.serve.batch.BatchOptimizationService.close` on stop —
    construct the service with whatever cache/armor/worker configuration
    the deployment needs and hand it over.
    """

    def __init__(
        self,
        service: BatchOptimizationService,
        config: DaemonConfig,
        tracer: Optional[Tracer] = None,
    ):
        self.service = service
        self.config = config
        self.tracer = tracer if tracer is not None else Tracer()
        self._queue: "asyncio.Queue[Optional[_Accepted]]" = None  # type: ignore[assignment]
        self._inflight: Dict[Tuple[str, Optional[float]], "asyncio.Future[JobOutcome]"] = {}
        self._latencies: Deque[float] = collections.deque(
            maxlen=config.latency_window
        )
        self._pending = 0
        self._answered = 0
        self._draining = False
        self._drained: Optional[asyncio.Event] = None
        self._shutdown_requested: Optional[asyncio.Event] = None
        self._servers: List[asyncio.AbstractServer] = []
        self._dispatcher: Optional[asyncio.Task] = None
        self._started_at = time.monotonic()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def pending(self) -> int:
        """Accepted optimize requests not yet answered."""
        return self._pending

    @property
    def addresses(self) -> List[str]:
        """The bound listen addresses (``unix:...`` / ``host:port``)."""
        out = []
        for server in self._servers:
            for sock in server.sockets or []:
                name = sock.getsockname()
                if isinstance(name, str):
                    out.append(f"unix:{name}")
                else:
                    out.append(f"{name[0]}:{name[1]}")
        return out

    async def start(self) -> None:
        """Bind the transports and start the dispatcher."""
        self._queue = asyncio.Queue()
        self._drained = asyncio.Event()
        self._drained.set()
        self._shutdown_requested = asyncio.Event()
        self._started_at = time.monotonic()
        if self.config.unix_path is not None:
            # A stale socket file from a previous (crashed) daemon would
            # fail the bind; an *active* one is a real conflict and still
            # fails with EADDRINUSE on connect-test platforms, so only a
            # plain leftover socket inode is removed.
            import os
            import stat

            try:
                if stat.S_ISSOCK(os.stat(self.config.unix_path).st_mode):
                    os.unlink(self.config.unix_path)
            except OSError:
                pass
            self._servers.append(
                await asyncio.start_unix_server(
                    self._handle_connection,
                    path=self.config.unix_path,
                    limit=MAX_FRAME_BYTES,
                )
            )
        if self.config.host is not None:
            self._servers.append(
                await asyncio.start_server(
                    self._handle_connection,
                    host=self.config.host,
                    port=self.config.port,
                    limit=MAX_FRAME_BYTES,
                )
            )
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        if self.tracer.enabled:
            self.tracer.event("serve.daemon.start", addresses=self.addresses)

    async def stop(self) -> None:
        """Close the transports and the dispatcher; idempotent."""
        servers, self._servers = self._servers, []
        for server in servers:
            server.close()
        for server in servers:
            try:
                await server.wait_closed()
            except Exception:  # pragma: no cover - transport teardown races
                pass
        if self._dispatcher is not None:
            self._queue.put_nowait(None)
            try:
                await asyncio.wait_for(self._dispatcher, timeout=self.config.drain_grace_s)
            except asyncio.TimeoutError:  # pragma: no cover - hung worker
                self._dispatcher.cancel()
            self._dispatcher = None
        self.service.close()

    def request_shutdown(self) -> None:
        """Flip into draining (signal handlers and shutdown frames)."""
        if not self._draining:
            self._draining = True
            if self.tracer.enabled:
                self.tracer.count("serve.daemon.drains")
        if self._shutdown_requested is not None:
            self._shutdown_requested.set()

    async def run(self, ready=None) -> int:
        """Serve until SIGTERM/SIGINT or a ``shutdown`` frame, drain, exit.

        ``ready``, when given, is called with the bound address list once
        the transports are listening (the CLI prints it; tests wait on
        it). Returns the process exit code: 0 when every accepted job
        was answered before the transports closed, 1 when the drain
        grace expired with work still in flight.
        """
        await self.start()
        if ready is not None:
            ready(self.addresses)
        loop = asyncio.get_running_loop()
        hooked = []
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
                hooked.append(signum)
            except (NotImplementedError, ValueError, RuntimeError):
                # Not the main thread (tests) or unsupported platform:
                # the shutdown frame remains the drain path.
                pass
        try:
            await self._shutdown_requested.wait()
            self._draining = True
            drained = True
            if self._pending > 0:
                self._drained.clear()
                try:
                    await asyncio.wait_for(
                        self._drained.wait(), timeout=self.config.drain_grace_s
                    )
                except asyncio.TimeoutError:
                    drained = False
            return 0 if drained else 1
        finally:
            for signum in hooked:
                loop.remove_signal_handler(signum)
            await self.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        if self.tracer.enabled:
            self.tracer.count("serve.daemon.connections")
        write_lock = asyncio.Lock()
        tasks: set = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                ):  # frame longer than MAX_FRAME_BYTES
                    await self._send(
                        writer,
                        write_lock,
                        ErrorResponse(
                            error=f"frame exceeds {MAX_FRAME_BYTES} bytes",
                            code="bad_request",
                        ),
                    )
                    break
                except (ConnectionError, OSError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                # Frames are handled concurrently per connection so one
                # slow optimization does not serialize its siblings; the
                # write lock keeps response lines whole.
                task = asyncio.create_task(
                    self._serve_frame(line, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            # The client is gone. In-flight optimizations keep running —
            # coalesced siblings on other connections may be waiting on
            # them — but their answers will hit a closed pipe, which
            # _send absorbs.
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _send(self, writer, write_lock, response) -> None:
        """Write one response frame; a dead connection is not an error."""
        payload = (response.to_json() + "\n").encode()
        try:
            async with write_lock:
                writer.write(payload)
                await writer.drain()
        except (ConnectionError, OSError):
            if self.tracer.enabled:
                self.tracer.count("serve.daemon.dropped_replies")

    async def _serve_frame(self, line: bytes, writer, write_lock) -> None:
        """Parse and answer one frame; errors become error frames."""
        try:
            frame = parse_request(line.decode("utf-8", errors="replace"))
        except ProtocolError as exc:
            if self.tracer.enabled:
                self.tracer.count("serve.daemon.bad_frames")
            await self._send(writer, write_lock, exc.to_response())
            return
        try:
            if isinstance(frame, OptimizeRequest):
                response = await self._serve_optimize(frame)
            elif isinstance(frame, StatsRequest):
                response = self._stats_response(frame)
            elif isinstance(frame, ShutdownRequest):
                response = ShutdownResponse(
                    request_id=frame.request_id, pending=self._pending
                )
                self.request_shutdown()
            else:  # pragma: no cover - parse_request table is closed
                response = ErrorResponse(
                    error=f"unhandled frame {type(frame).__name__}", code="internal"
                )
        except ProtocolError as exc:
            response = exc.to_response()
        except Exception as exc:
            # The contract: nothing a client sends can raise past the
            # serve loop. Anything unexpected becomes a structured error.
            if self.tracer.enabled:
                self.tracer.count("serve.daemon.internal_errors")
            response = ErrorResponse(
                request_id=getattr(frame, "request_id", ""),
                error=f"{type(exc).__name__}: {exc}",
                code="internal",
            )
        await self._send(writer, write_lock, response)

    # ------------------------------------------------------------------
    # The optimize path
    # ------------------------------------------------------------------

    async def _serve_optimize(self, request: OptimizeRequest):
        accepted_at = time.monotonic()
        if self.tracer.enabled:
            self.tracer.count("serve.daemon.requests")
        if self._draining:
            if self.tracer.enabled:
                self.tracer.count("serve.daemon.refused_draining")
            return ErrorResponse(
                request_id=request.request_id,
                error="daemon is draining; resubmit elsewhere",
                code="shutting_down",
            )
        # Resolve + fingerprint on the event loop: cheap (sha256 over the
        # plan structure) and it gates both coalescing and admission.
        plan = request_to_plan(request)
        if request.size_bytes is not None:
            plan = plan.clone()
            plan.scale_datasets_to_bytes(request.size_bytes)
        deadline_ms = (
            request.deadline_ms
            if request.deadline_ms is not None
            else self.config.default_deadline_ms
        )
        key = (plan_fingerprint(plan, self.service.registry), deadline_ms)

        # Cross-client coalescing: same fingerprint (and deadline class)
        # already in flight → ride it, free of admission accounting.
        if self.config.coalesce:
            sibling = self._inflight.get(key)
            if sibling is not None:
                if self.tracer.enabled:
                    self.tracer.count("serve.jobs_coalesced")
                try:
                    outcome = await asyncio.shield(sibling)
                except Exception as exc:
                    return ErrorResponse(
                        request_id=request.request_id,
                        error=f"{type(exc).__name__}: {exc}",
                        code="internal",
                    )
                return self._outcome_response(
                    request, outcome, accepted_at, coalesced=True
                )

        # Admission control: bounded pending set, structured refusal.
        if self._pending >= self.config.max_pending:
            if self.tracer.enabled:
                self.tracer.count("serve.daemon.overloaded")
            return ErrorResponse(
                request_id=request.request_id,
                error=(
                    f"daemon at capacity ({self._pending} pending, "
                    f"bound {self.config.max_pending})"
                ),
                code="overloaded",
                retry_after_ms=self._retry_after_ms(),
            )

    # Admitted: account it, register the in-flight future, enqueue.
        job = BatchJob(
            request.request_id or plan.name or "job",
            plan,
            tags=request.tags,
            deadline_ms=deadline_ms,
        )
        future: "asyncio.Future[JobOutcome]" = asyncio.get_running_loop().create_future()
        item = _Accepted(request, job, key, future, accepted_at)
        self._pending += 1
        if self._drained is not None:
            self._drained.clear()
        if self.config.coalesce:
            self._inflight[key] = future
            future.add_done_callback(
                lambda _f, key=key: self._inflight.pop(key, None)
            )
        self._queue.put_nowait(item)
        try:
            outcome = await asyncio.shield(future)
            return self._outcome_response(request, outcome, accepted_at)
        except Exception as exc:
            return ErrorResponse(
                request_id=request.request_id,
                error=f"{type(exc).__name__}: {exc}",
                code="internal",
            )
        finally:
            self._pending -= 1
            self._answered += 1
            self._latencies.append(time.monotonic() - accepted_at)
            if self._pending == 0 and self._drained is not None:
                self._drained.set()

    def _outcome_response(
        self,
        request: OptimizeRequest,
        outcome: JobOutcome,
        accepted_at: float,
        coalesced: bool = False,
    ):
        duration_ms = (time.monotonic() - accepted_at) * 1000.0
        if not outcome.ok or outcome.result is None:
            code = "optimization_failed"
            if outcome.timed_out:
                code = "timeout"
            elif outcome.quarantined:
                code = "quarantined"
            return ErrorResponse(
                request_id=request.request_id,
                error=outcome.error or "optimization failed",
                code=code,
            )
        result = outcome.result
        return OptimizeResponse(
            request_id=request.request_id,
            predicted_runtime=float(result.predicted_runtime),
            platforms=sorted(result.execution_plan.platforms_used()),
            assignment={
                str(k): str(v)
                for k, v in sorted(result.execution_plan.assignment.items())
            },
            stats=result.stats.as_dict(),
            optimizer=result.optimizer,
            degraded=result.stats.degradation if result.stats.degraded else "",
            cached=outcome.cached,
            coalesced=coalesced or outcome.coalesced,
            duration_ms=duration_ms,
        )

    def _retry_after_ms(self) -> float:
        """How long an overloaded client should back off: the pending
        backlog's expected drain time under the live p50 latency."""
        p50 = (
            _percentile(list(self._latencies), 50.0)
            if self._latencies
            else _DEFAULT_LATENCY_S
        )
        workers = max(self.service.workers, 1)
        estimate = p50 * (self._pending / workers) * 1000.0
        return max(50.0, min(estimate, 10_000.0))

    def _stats_response(self, frame: StatsRequest) -> StatsResponse:
        window = list(self._latencies)
        return StatsResponse(
            request_id=frame.request_id,
            counters=dict(self.tracer.counters),
            latency_ms={
                "p50": _percentile(window, 50.0) * 1000.0,
                "p95": _percentile(window, 95.0) * 1000.0,
                "p99": _percentile(window, 99.0) * 1000.0,
            },
            pending=self._pending,
            draining=self._draining,
            uptime_s=time.monotonic() - self._started_at,
            feedback=self.service.feedback_stats(),
        )

    # ------------------------------------------------------------------
    # The dispatcher: micro-batches through the batch service
    # ------------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        """Drain the queue into micro-batches, one service call at a time."""
        stop = False
        while not stop:
            item = await self._queue.get()
            if item is None:
                break
            batch = [item]
            while len(batch) < self.config.max_batch:
                try:
                    nxt = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt is None:
                    stop = True
                    break
                batch.append(nxt)
            if self.tracer.enabled:
                self.tracer.count("serve.daemon.batches")
                self.tracer.count("serve.daemon.batched_jobs", len(batch))
            try:
                outcomes = await asyncio.to_thread(
                    self._run_batch, [entry.job for entry in batch]
                )
            except Exception as exc:  # the service itself failed
                for entry in batch:
                    if not entry.future.done():
                        entry.future.set_exception(exc)
                continue
            for entry, outcome in zip(batch, outcomes):
                if not entry.future.done():
                    entry.future.set_result(outcome)
        # Drain leftovers on shutdown: anything still queued is refused.
        while True:
            try:
                leftover = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if leftover is not None and not leftover.future.done():
                leftover.future.set_result(
                    JobOutcome(
                        leftover.job.job_id,
                        ok=False,
                        error="daemon stopped before the job was dispatched",
                    )
                )

    def _run_batch(self, jobs: List[BatchJob]) -> List[JobOutcome]:
        """One service call, under the daemon's tracer (worker thread)."""
        with use_tracer(self.tracer):
            report = self.service.optimize_batch(jobs)
        return report.outcomes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OptimizationDaemon(pending={self._pending}, "
            f"draining={self._draining}, addresses={self.addresses})"
        )
