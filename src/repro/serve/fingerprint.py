"""Structural plan fingerprints: the plan-cache key (Kepler-style reuse).

A fingerprint identifies *what the optimizer would decide on*: the plan
topology (edges, loops), the operator kinds and their parameters, the
platform alphabet, and the input cardinalities **quantized into buckets**.
Two plans with the same structure whose inputs differ only within one
cardinality bucket — the typical parametric-query situation — share a
fingerprint, so a cached optimization decision is reused instead of
re-enumerating (cf. Kepler, Doshi et al., VLDB 2023: caching decisions
keyed on query structure amortizes optimizer cost across repeated
queries).

The bucket is logarithmic (one bucket per factor of ``bucket_base`` in
cardinality, default 2) because runtimes — and therefore platform
choices — respond to orders of magnitude, not to a few extra tuples.
Everything that changes the *shape* of the optimization problem
(operator kinds, UDF complexities, selectivities, edges, loop
iterations, feasible platforms) enters the hash exactly.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Optional

from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.platforms import PlatformRegistry

__all__ = ["cardinality_bucket", "plan_fingerprint", "FINGERPRINT_VERSION"]

#: Bump when the canonical document below changes shape — persisted caches
#: keyed under an older version then miss instead of returning stale plans.
FINGERPRINT_VERSION = 1


def cardinality_bucket(cardinality: float, base: float = 2.0) -> int:
    """The quantized cardinality bucket: ``round(log_base(cardinality))``.

    Non-positive and non-finite cardinalities map to ``-1`` (they carry no
    scale information).
    """
    if base <= 1.0:
        raise ValueError(f"bucket base must be > 1, got {base}")
    if not math.isfinite(cardinality) or cardinality <= 0.0:
        return -1
    return int(round(math.log(cardinality, base)))


def _canonical_document(
    plan: LogicalPlan,
    registry: Optional[PlatformRegistry],
    bucket_base: float,
) -> dict:
    """The JSON-stable document the fingerprint hashes.

    Operator ids are dense insertion-order integers (see
    :meth:`LogicalPlan.add`), so including them keeps the encoding
    positional without admitting spurious differences.
    """
    operators = []
    for op_id, op in sorted(plan.operators.items()):
        operators.append(
            [
                op_id,
                op.kind_name,
                int(op.udf_complexity),
                # Selectivity and fixed output cardinality change the
                # cardinality *profile* downstream; encode them exactly
                # (rounded only to kill float-repr noise).
                None if op.selectivity is None else round(float(op.selectivity), 9),
                None
                if op.fixed_output_cardinality is None
                else cardinality_bucket(float(op.fixed_output_cardinality), bucket_base),
            ]
        )
    datasets = {
        str(op_id): [
            cardinality_bucket(profile.cardinality, bucket_base),
            cardinality_bucket(profile.tuple_size, bucket_base),
        ]
        for op_id, profile in sorted(plan.datasets.items())
    }
    doc = {
        "v": FINGERPRINT_VERSION,
        "base": bucket_base,
        "operators": operators,
        "edges": sorted(plan.edges),
        "loops": sorted(
            (sorted(spec.body), spec.iterations) for spec in plan.loops
        ),
        "datasets": datasets,
    }
    if registry is not None:
        doc["platforms"] = list(registry.names)
    return doc


def plan_fingerprint(
    plan: LogicalPlan,
    registry: Optional[PlatformRegistry] = None,
    bucket_base: float = 2.0,
) -> str:
    """The cache key of a logical plan: a hex digest of its structure.

    Parameters
    ----------
    plan:
        The logical plan to fingerprint.
    registry:
        The platform registry the optimization runs against. Include it
        whenever the fingerprint keys optimization *results* — the same
        plan optimized over ``(java, spark)`` and ``(java, spark, flink)``
        has different answers.
    bucket_base:
        Quantization granularity: cardinalities within one factor of
        ``bucket_base`` of each other (around a bucket center) coincide.
    """
    doc = _canonical_document(plan, registry, bucket_base)
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
