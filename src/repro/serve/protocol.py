"""The versioned wire schema of the serving layer.

One schema, three consumers: the :mod:`repro.serve.daemon` asyncio
server, the :mod:`repro.serve.client` sync client, and the
``optimize-batch`` CLI's JSONL job files all speak exactly these frames —
the daemon is just a transport around them.

**Framing.** A frame is one JSON object on one line (newline-delimited
JSON). Every frame carries two envelope fields: ``"v"`` — the protocol
version this module implements (:data:`PROTOCOL_VERSION`) — and
``"type"`` — the frame kind. Parsing is *strict about meaning and
tolerant about extras*: a missing or different ``"v"`` is a structured
``version_mismatch`` error, a wrong field type is a ``bad_request``, and
unknown fields are ignored (a newer peer may add fields; an older server
must not choke on them).

Request frames (client → server):

* ``optimize`` — :class:`OptimizeRequest`: a plan document (the exact
  JSON of :mod:`repro.rheem.serialization`) or a named built-in
  workload, optional size rescale, optional per-request deadline;
* ``stats`` — :class:`StatsRequest`: counters + live latency tails;
* ``shutdown`` — :class:`ShutdownRequest`: begin a graceful drain.

Response frames (server → client):

* ``result`` — :class:`OptimizeResponse`: the chosen platforms and
  assignment, predicted runtime, run stats, cache/coalesce provenance;
* ``error`` — :class:`ErrorResponse`: a structured refusal or failure
  (``code`` taxonomy below, ``retry_after_ms`` for backpressure);
* ``stats`` — :class:`StatsResponse`; ``shutdown`` —
  :class:`ShutdownResponse`.

Error codes: ``bad_request`` (malformed frame or plan),
``version_mismatch``, ``overloaded`` (admission control refused; honor
``retry_after_ms``), ``shutting_down`` (drain in progress),
``timeout`` (per-job budget spent), ``quarantined``,
``optimization_failed`` (the optimizer raised), ``internal``.

This module also owns the JSONL job-row vocabulary the batch CLI
historically parsed ad hoc: :func:`job_row_to_request` /
:func:`load_jobs_jsonl` turn job rows into :class:`OptimizeRequest`
objects, and :func:`request_to_job` resolves a request into a runnable
:class:`~repro.serve.batch.BatchJob` — so a JSONL file, a network
client, and the daemon all describe work identically.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import ReproError

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "OptimizeRequest",
    "OptimizeResponse",
    "ErrorResponse",
    "StatsRequest",
    "StatsResponse",
    "ShutdownRequest",
    "ShutdownResponse",
    "parse_frame",
    "parse_request",
    "parse_response",
    "parse_size",
    "resolve_workload",
    "job_row_to_request",
    "request_to_job",
    "load_jobs_jsonl",
]

#: The wire-schema version this module implements. Bump on any change
#: that an old peer could misread; peers reject mismatches with a
#: structured ``version_mismatch`` error instead of guessing.
PROTOCOL_VERSION = 1

_SUFFIXES = {"KB": 2 ** 10, "MB": 2 ** 20, "GB": 2 ** 30, "TB": 2 ** 40}


def parse_size(text: str) -> float:
    """Parse ``"6GB"``-style sizes into bytes."""
    cleaned = text.strip().upper().replace(" ", "")
    for suffix, factor in _SUFFIXES.items():
        if cleaned.endswith(suffix):
            return float(cleaned[: -len(suffix)]) * factor
    return float(cleaned)


class ProtocolError(ReproError):
    """A frame this endpoint refuses — carries the structured error code.

    Raised by the parsing/validation helpers; the daemon turns it into an
    :class:`ErrorResponse` (never lets it escape the serve loop), the
    client raises it to the caller.
    """

    def __init__(self, message: str, code: str = "bad_request", request_id: str = ""):
        super().__init__(message)
        self.code = code
        self.request_id = request_id

    def to_response(self) -> "ErrorResponse":
        return ErrorResponse(
            request_id=self.request_id, error=str(self), code=self.code
        )


# ---------------------------------------------------------------------------
# Typed field extraction (strict about types, silent about extras)
# ---------------------------------------------------------------------------


def _bad(detail: str, request_id: str = "") -> ProtocolError:
    return ProtocolError(detail, code="bad_request", request_id=request_id)


def _get_str(doc: Dict[str, Any], key: str, default: str = "", rid: str = "") -> str:
    value = doc.get(key, default)
    if not isinstance(value, str):
        raise _bad(f"field {key!r} must be a string, got {type(value).__name__}", rid)
    return value


def _get_opt_number(doc: Dict[str, Any], key: str, rid: str = "") -> Optional[float]:
    value = doc.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _bad(f"field {key!r} must be a number, got {type(value).__name__}", rid)
    return float(value)


def _get_number(doc: Dict[str, Any], key: str, default: float, rid: str = "") -> float:
    value = _get_opt_number(doc, key, rid)
    return default if value is None else value


def _get_bool(doc: Dict[str, Any], key: str, default: bool, rid: str = "") -> bool:
    value = doc.get(key, default)
    if not isinstance(value, bool):
        raise _bad(f"field {key!r} must be a boolean, got {type(value).__name__}", rid)
    return value


def _get_dict(
    doc: Dict[str, Any], key: str, rid: str = "", optional: bool = False
) -> Optional[Dict[str, Any]]:
    value = doc.get(key)
    if value is None:
        return None if optional else {}
    if not isinstance(value, dict):
        raise _bad(f"field {key!r} must be an object, got {type(value).__name__}", rid)
    return value


def _check_version(doc: Dict[str, Any], rid: str = "") -> None:
    version = doc.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: peer sent v={version!r}, "
            f"this endpoint speaks v={PROTOCOL_VERSION}",
            code="version_mismatch",
            request_id=rid,
        )


# ---------------------------------------------------------------------------
# Frames
# ---------------------------------------------------------------------------


class _Frame:
    """Shared to_json/from_json plumbing; subclasses define TYPE + fields."""

    TYPE = ""

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {"v": PROTOCOL_VERSION, "type": self.TYPE}
        for key, value in asdict(self).items():
            if value is not None:
                doc[key] = value
        return doc

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), separators=(",", ":"), allow_nan=False)

    @classmethod
    def from_json(cls, text: str):
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise _bad(f"invalid JSON frame ({exc})") from exc
        if not isinstance(doc, dict):
            raise _bad(f"a frame must be a JSON object, got {type(doc).__name__}")
        _check_version(doc)
        kind = doc.get("type")
        if kind != cls.TYPE:
            raise _bad(f"expected a {cls.TYPE!r} frame, got {kind!r}")
        return cls.from_dict(doc)

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]):  # pragma: no cover - overridden
        raise NotImplementedError


@dataclass
class OptimizeRequest(_Frame):
    """One optimization request: a plan (or workload) plus knobs.

    Exactly one of ``plan`` (a serialized plan document) and ``workload``
    (a built-in workload name) must be set. ``size_bytes`` rescales the
    plan's input datasets before optimizing; ``deadline_ms`` is this
    request's anytime budget, threaded into
    :mod:`repro.resilience.budget`; ``tags`` travel untouched into the
    response's provenance.
    """

    TYPE = "optimize"

    request_id: str = ""
    plan: Optional[Dict[str, Any]] = None
    workload: Optional[str] = None
    size_bytes: Optional[float] = None
    deadline_ms: Optional[float] = None
    tags: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "OptimizeRequest":
        rid = _get_str(doc, "request_id")
        request = cls(
            request_id=rid,
            plan=_get_dict(doc, "plan", rid, optional=True),
            workload=(
                _get_str(doc, "workload", rid=rid) if doc.get("workload") is not None else None
            ),
            size_bytes=_get_opt_number(doc, "size_bytes", rid),
            deadline_ms=_get_opt_number(doc, "deadline_ms", rid),
            tags=_get_dict(doc, "tags", rid) or {},
        )
        request.validate()
        return request

    def validate(self) -> None:
        if (self.plan is None) == (self.workload is None):
            raise _bad(
                "an optimize request needs exactly one of 'plan' and 'workload'",
                self.request_id,
            )
        if self.size_bytes is not None and self.size_bytes <= 0:
            raise _bad(
                f"size_bytes must be positive, got {self.size_bytes}",
                self.request_id,
            )
        if self.deadline_ms is not None and self.deadline_ms < 0:
            raise _bad(
                f"deadline_ms must be >= 0, got {self.deadline_ms}",
                self.request_id,
            )


@dataclass
class OptimizeResponse(_Frame):
    """The daemon's answer to one :class:`OptimizeRequest`.

    ``stats`` is the run's :meth:`repro.api.RunStats.as_dict`;
    ``degraded`` names the degradation cause (empty = ran to
    completion); ``cached``/``coalesced`` record whether the answer came
    from the plan cache or from a sibling's in-flight computation;
    ``duration_ms`` is accept-to-answer as the daemon measured it.
    """

    TYPE = "result"

    request_id: str = ""
    predicted_runtime: float = 0.0
    platforms: List[str] = field(default_factory=list)
    assignment: Dict[str, str] = field(default_factory=dict)
    stats: Dict[str, Any] = field(default_factory=dict)
    optimizer: str = ""
    degraded: str = ""
    cached: bool = False
    coalesced: bool = False
    duration_ms: float = 0.0

    #: Result frames always satisfy ``ok`` — the error/result dichotomy
    #: clients branch on without isinstance checks.
    ok = True

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "OptimizeResponse":
        rid = _get_str(doc, "request_id")
        platforms = doc.get("platforms", [])
        if not isinstance(platforms, list) or not all(
            isinstance(p, str) for p in platforms
        ):
            raise _bad("field 'platforms' must be a list of strings", rid)
        assignment = _get_dict(doc, "assignment", rid) or {}
        if not all(
            isinstance(k, str) and isinstance(v, str) for k, v in assignment.items()
        ):
            raise _bad("field 'assignment' must map strings to strings", rid)
        return cls(
            request_id=rid,
            predicted_runtime=_get_number(doc, "predicted_runtime", 0.0, rid),
            platforms=list(platforms),
            assignment=dict(assignment),
            stats=_get_dict(doc, "stats", rid) or {},
            optimizer=_get_str(doc, "optimizer", rid=rid),
            degraded=_get_str(doc, "degraded", rid=rid),
            cached=_get_bool(doc, "cached", False, rid),
            coalesced=_get_bool(doc, "coalesced", False, rid),
            duration_ms=_get_number(doc, "duration_ms", 0.0, rid),
        )


@dataclass
class ErrorResponse(_Frame):
    """A structured refusal or failure for one request.

    ``code`` is the machine-readable taxonomy (module docstring);
    ``retry_after_ms`` accompanies ``overloaded`` so clients back off a
    sensible amount instead of hammering.
    """

    TYPE = "error"

    request_id: str = ""
    error: str = ""
    code: str = "internal"
    retry_after_ms: Optional[float] = None

    ok = False

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ErrorResponse":
        rid = _get_str(doc, "request_id")
        return cls(
            request_id=rid,
            error=_get_str(doc, "error", rid=rid),
            code=_get_str(doc, "code", "internal", rid) or "internal",
            retry_after_ms=_get_opt_number(doc, "retry_after_ms", rid),
        )


@dataclass
class StatsRequest(_Frame):
    TYPE = "stats"

    request_id: str = ""

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "StatsRequest":
        return cls(request_id=_get_str(doc, "request_id"))


@dataclass
class StatsResponse(_Frame):
    """A live snapshot of the daemon: counters + latency tails.

    ``counters`` are the daemon tracer's ``serve.*`` (and optimizer)
    counters; ``latency_ms`` carries ``p50``/``p95``/``p99`` over the
    recent answered-request window; ``pending`` counts accepted requests
    not yet answered. ``feedback`` is the feedback/drift payload (drift
    q-error and status, observation/retrain counts, model generation) —
    empty when the daemon runs without ``--feedback``, and absent from
    frames of older daemons, so clients must treat it as optional.
    """

    TYPE = "stats"

    request_id: str = ""
    counters: Dict[str, float] = field(default_factory=dict)
    latency_ms: Dict[str, float] = field(default_factory=dict)
    pending: int = 0
    draining: bool = False
    uptime_s: float = 0.0
    feedback: Dict[str, Any] = field(default_factory=dict)

    ok = True

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "StatsResponse":
        rid = _get_str(doc, "request_id")
        return cls(
            request_id=rid,
            counters=_get_dict(doc, "counters", rid) or {},
            latency_ms=_get_dict(doc, "latency_ms", rid) or {},
            pending=int(_get_number(doc, "pending", 0, rid)),
            draining=_get_bool(doc, "draining", False, rid),
            uptime_s=_get_number(doc, "uptime_s", 0.0, rid),
            feedback=_get_dict(doc, "feedback", rid) or {},
        )


@dataclass
class ShutdownRequest(_Frame):
    TYPE = "shutdown"

    request_id: str = ""

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ShutdownRequest":
        return cls(request_id=_get_str(doc, "request_id"))


@dataclass
class ShutdownResponse(_Frame):
    """Acknowledges a drain: the daemon stops admitting and will exit."""

    TYPE = "shutdown"

    request_id: str = ""
    draining: bool = True
    pending: int = 0

    ok = True

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ShutdownResponse":
        rid = _get_str(doc, "request_id")
        return cls(
            request_id=rid,
            draining=_get_bool(doc, "draining", True, rid),
            pending=int(_get_number(doc, "pending", 0, rid)),
        )


_REQUEST_TYPES = {
    OptimizeRequest.TYPE: OptimizeRequest,
    StatsRequest.TYPE: StatsRequest,
    ShutdownRequest.TYPE: ShutdownRequest,
}
_RESPONSE_TYPES = {
    OptimizeResponse.TYPE: OptimizeResponse,
    ErrorResponse.TYPE: ErrorResponse,
    StatsResponse.TYPE: StatsResponse,
    ShutdownResponse.TYPE: ShutdownResponse,
}


def _parse(text: str, table: Dict[str, type], side: str):
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise _bad(f"invalid JSON frame ({exc})") from exc
    if not isinstance(doc, dict):
        raise _bad(f"a frame must be a JSON object, got {type(doc).__name__}")
    rid = doc.get("request_id")
    rid = rid if isinstance(rid, str) else ""
    _check_version(doc, rid)
    kind = doc.get("type")
    cls = table.get(kind) if isinstance(kind, str) else None
    if cls is None:
        raise _bad(f"unknown {side} frame type {kind!r}", rid)
    return cls.from_dict(doc)


def parse_request(text: str):
    """Parse one client→server line into a request frame (daemon side)."""
    return _parse(text, _REQUEST_TYPES, "request")


def parse_response(text: str):
    """Parse one server→client line into a response frame (client side)."""
    return _parse(text, _RESPONSE_TYPES, "response")


#: Daemon-side alias — the server parses *frames* off the wire.
parse_frame = parse_request


# ---------------------------------------------------------------------------
# Job rows: the JSONL vocabulary of `repro optimize-batch --jobs`
# ---------------------------------------------------------------------------


def resolve_workload(name: str, size_bytes: Optional[float] = None):
    """A built-in Table II workload by (normalization-tolerant) name."""
    from repro.workloads import TABLE2

    key = {k.lower().replace(" ", "").replace("-", ""): k for k in TABLE2}
    normalized = name.lower().replace(" ", "").replace("-", "")
    if normalized not in key:
        raise ReproError(
            f"unknown workload {name!r}; known: {', '.join(sorted(TABLE2))}"
        )
    full = key[normalized]
    module, _, _ = TABLE2[full]
    kwargs = {}
    if size_bytes is not None:
        kwargs["size_bytes"] = size_bytes
    if full == "TPC-H Q1":
        return module.q1(**kwargs)
    if full == "TPC-H Q3":
        return module.q3(**kwargs)
    return module.plan(**kwargs)


def job_row_to_request(doc: Any, default_id: str = "") -> OptimizeRequest:
    """One JSONL job row → an :class:`OptimizeRequest`.

    A row is a JSON object: ``{"id", "plan": <plan doc>}``, ``{"id",
    "workload": <name>, "size": "6GB"}``, or a bare plan document (an
    object with an ``"operators"`` key). Malformed rows raise
    :class:`ProtocolError` with a human-readable detail.
    """
    if not isinstance(doc, dict):
        raise _bad(f"expected a JSON object, got {type(doc).__name__}", default_id)
    size = None
    if doc.get("size"):
        try:
            raw = doc["size"]
            size = parse_size(raw) if isinstance(raw, str) else float(raw)
        except (TypeError, ValueError) as exc:
            raise _bad(f"invalid size {doc.get('size')!r} ({exc})", default_id) from exc
    tags = doc.get("tags", {})
    if not isinstance(tags, dict):
        raise _bad(f"tags must be an object, got {type(tags).__name__}", default_id)
    deadline_ms = _get_opt_number(doc, "deadline_ms", default_id)
    plan_doc: Optional[Dict[str, Any]] = None
    workload: Optional[str] = None
    if "plan" in doc:
        plan_doc = _get_dict(doc, "plan", default_id)
    elif "workload" in doc:
        workload = _get_str(doc, "workload", rid=default_id)
    elif "operators" in doc:
        plan_doc = doc
    else:
        raise _bad(
            "a job needs a 'plan', 'workload' or bare plan document", default_id
        )
    job_id = str(doc.get("id") or "") or default_id
    if plan_doc is not None and not job_id:
        job_id = str(plan_doc.get("name") or "") or default_id
    return OptimizeRequest(
        request_id=job_id,
        plan=plan_doc,
        workload=workload,
        size_bytes=size,
        deadline_ms=deadline_ms,
        tags=tags,
    )


def request_to_plan(request: OptimizeRequest):
    """Resolve a request's plan document or workload into a validated
    :class:`~repro.rheem.logical_plan.LogicalPlan` (unscaled —
    ``size_bytes`` is applied by the job/service layer)."""
    from repro.rheem.serialization import plan_from_dict

    try:
        if request.plan is not None:
            plan = plan_from_dict(request.plan)
        elif request.workload is not None:
            plan = resolve_workload(request.workload)
        else:
            raise _bad("request has neither plan nor workload", request.request_id)
        plan.validate()
    except ProtocolError:
        raise
    except ReproError as exc:
        raise _bad(f"invalid job ({exc})", request.request_id) from exc
    except Exception as exc:
        raise _bad(
            f"invalid plan document ({type(exc).__name__}: {exc})",
            request.request_id,
        ) from exc
    return plan


def request_to_job(request: OptimizeRequest):
    """An :class:`OptimizeRequest` → a runnable BatchJob (plan resolved
    and validated; raises :class:`ProtocolError` for malformed ones)."""
    from repro.serve.batch import BatchJob

    plan = request_to_plan(request)
    job_id = request.request_id or plan.name or "job"
    return BatchJob(
        job_id,
        plan,
        size_bytes=request.size_bytes,
        tags=request.tags,
        deadline_ms=request.deadline_ms,
    )


def load_jobs_jsonl(path: str) -> Tuple[List[OptimizeRequest], List[Dict[str, Any]]]:
    """Parse a JSONL job file into requests plus per-row error entries.

    Every malformed line — invalid JSON, a non-object, a bad size or
    tags type — becomes an error row (``{"id", "ok": False, "error"}``)
    instead of failing the whole file; plan-document *content* is
    validated later by :func:`request_to_job` (locally) or the daemon
    (remotely). Only an unreadable file or a file with zero rows raises.
    """
    requests: List[OptimizeRequest] = []
    error_rows: List[Dict[str, Any]] = []
    try:
        f = open(path)
    except OSError as exc:
        raise ReproError(f"cannot read jobs from {path}: {exc}") from exc

    with f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            default_id = f"line{lineno}"
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                error_rows.append(
                    {
                        "id": default_id,
                        "ok": False,
                        "error": f"{path}:{lineno}: invalid JSON ({exc})",
                    }
                )
                continue
            try:
                requests.append(job_row_to_request(doc, default_id))
            except ProtocolError as exc:
                error_rows.append(
                    {
                        "id": default_id,
                        "ok": False,
                        "error": f"{path}:{lineno}: {exc}",
                    }
                )
    if not requests and not error_rows:
        raise ReproError(f"{path} contains no jobs")
    return requests, error_rows
