"""The synchronous client of the ``repro serve`` daemon.

:class:`ServeClient` speaks the newline-delimited JSON frames of
:mod:`repro.serve.protocol` over a unix socket (``unix:/path``) or TCP
(``host:port``). It is deliberately boring: blocking socket I/O, one
connection, no thread magic — the concurrency lives in the daemon. The
one serving-minded feature is :meth:`ServeClient.optimize_many`, which
*pipelines*: every request goes out before the first response is read,
so the daemon sees the whole burst at once (micro-batching and
cross-client coalescing get a fair shot) and the client still returns
responses in request order, matched by ``request_id``.

Protocol-level refusals (``error`` frames) are returned, not raised —
an ``overloaded`` rejection with ``retry_after_ms`` is an answer, and
callers branch on ``response.ok``. Transport failures (connection
refused, mid-frame disconnect) raise :class:`~repro.exceptions.ReproError`.
"""

from __future__ import annotations

import socket
from typing import List, Optional, Sequence, Tuple, Union

from repro.exceptions import ReproError
from repro.serve.protocol import (
    OptimizeRequest,
    ShutdownRequest,
    StatsRequest,
    parse_response,
)

__all__ = ["ServeClient", "parse_address"]

#: Longest accepted response line — mirrors the daemon's frame bound.
_MAX_LINE = 16 * 1024 * 1024


def parse_address(address: str) -> Tuple[str, Union[str, Tuple[str, int]]]:
    """Parse ``unix:/path`` or ``host:port`` into a transport spec.

    Returns ``("unix", path)`` or ``("tcp", (host, port))``.
    """
    text = address.strip()
    if text.startswith("unix:"):
        path = text[len("unix:"):]
        if not path:
            raise ReproError(f"empty unix socket path in address {address!r}")
        return ("unix", path)
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ReproError(
            f"cannot parse server address {address!r}; "
            "expected 'unix:/path' or 'host:port'"
        )
    try:
        return ("tcp", (host, int(port)))
    except ValueError as exc:
        raise ReproError(f"invalid port in address {address!r}") from exc


class ServeClient:
    """One connection to an optimization daemon.

    Usable as a context manager; :meth:`connect` is lazy (the first
    request opens the socket). ``timeout_s`` bounds every blocking
    socket operation — a daemon that stops answering raises instead of
    hanging the caller forever.
    """

    def __init__(self, address: str, timeout_s: Optional[float] = 60.0):
        self.address = address
        self.timeout_s = timeout_s
        self._spec = parse_address(address)
        self._sock: Optional[socket.socket] = None
        self._reader = None
        self._next_id = 0

    # ------------------------------------------------------------------
    def connect(self) -> "ServeClient":
        if self._sock is not None:
            return self
        kind, target = self._spec
        try:
            if kind == "unix":
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self.timeout_s)
                sock.connect(target)
            else:
                sock = socket.create_connection(target, timeout=self.timeout_s)
        except OSError as exc:
            raise ReproError(f"cannot connect to {self.address}: {exc}") from exc
        self._sock = sock
        self._reader = sock.makefile("rb")
        return self

    def close(self) -> None:
        reader, self._reader = self._reader, None
        sock, self._sock = self._sock, None
        for closable in (reader, sock):
            if closable is not None:
                try:
                    closable.close()
                except OSError:  # pragma: no cover - teardown race
                    pass

    def __enter__(self) -> "ServeClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _send_line(self, text: str) -> None:
        self.connect()
        try:
            self._sock.sendall(text.encode() + b"\n")
        except OSError as exc:
            self.close()
            raise ReproError(f"lost connection to {self.address}: {exc}") from exc

    def _read_frame(self):
        self.connect()
        try:
            line = self._reader.readline(_MAX_LINE)
        except OSError as exc:
            self.close()
            raise ReproError(f"lost connection to {self.address}: {exc}") from exc
        if not line:
            self.close()
            raise ReproError(
                f"connection to {self.address} closed before a response arrived"
            )
        return parse_response(line.decode("utf-8", errors="replace"))

    def request(self, frame):
        """Send one request frame, return the daemon's response frame."""
        self._send_line(frame.to_json())
        return self._read_frame()

    def _fresh_id(self) -> str:
        self._next_id += 1
        return f"c{self._next_id}"

    # ------------------------------------------------------------------
    def optimize(self, request: OptimizeRequest):
        """One optimization round trip.

        Returns the response frame — an
        :class:`~repro.serve.protocol.OptimizeResponse` or an
        :class:`~repro.serve.protocol.ErrorResponse`; branch on ``.ok``.
        """
        if not request.request_id:
            request.request_id = self._fresh_id()
        request.validate()
        return self.request(request)

    def optimize_many(self, requests: Sequence[OptimizeRequest]) -> List:
        """Pipeline a burst of requests; responses in request order.

        All frames are written before any response is read, so the
        daemon can micro-batch and coalesce across the burst; responses
        may come back in any order and are re-matched by ``request_id``
        (missing ids are assigned, clashing ids are an error — the match
        would be ambiguous).
        """
        requests = list(requests)
        ids: List[str] = []
        seen = set()
        for request in requests:
            if not request.request_id:
                request.request_id = self._fresh_id()
            if request.request_id in seen:
                raise ReproError(
                    f"duplicate request_id {request.request_id!r} in a "
                    "pipelined burst; responses would be ambiguous"
                )
            seen.add(request.request_id)
            ids.append(request.request_id)
            request.validate()
        for request in requests:
            self._send_line(request.to_json())
        by_id = {}
        for _ in requests:
            response = self._read_frame()
            by_id[response.request_id] = response
        missing = [rid for rid in ids if rid not in by_id]
        if missing:
            raise ReproError(
                f"daemon answered {len(by_id)} of {len(ids)} pipelined "
                f"requests; missing {missing[:5]}"
            )
        return [by_id[rid] for rid in ids]

    def stats(self):
        """The daemon's live counters and latency tails."""
        return self.request(StatsRequest(request_id=self._fresh_id()))

    def shutdown(self):
        """Ask the daemon to drain and exit; returns the acknowledgement."""
        return self.request(ShutdownRequest(request_id=self._fresh_id()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "connected" if self._sock is not None else "idle"
        return f"ServeClient({self.address!r}, {state})"
