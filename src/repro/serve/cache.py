"""The fingerprint-keyed plan cache: LRU, observable, persistable.

Caches :class:`~repro.api.OptimizationResult` objects under plan
fingerprints (:func:`repro.serve.fingerprint.plan_fingerprint`). A hit
returns a **defensive copy** — the cached execution plan, assignment and
stats are cloned so one caller mutating its result can never corrupt
what the next caller receives (the cache equivalent of
:meth:`PlanVectorEnumeration.select` never aliasing its source rows).

Hit/miss/eviction counts are kept on the cache *and* mirrored into the
ambient tracer (``serve.cache.*`` counters), so a traced batch run shows
its cache behaviour next to its enumeration spans.

Persistence is plain JSON: execution plans serialize through
:mod:`repro.rheem.serialization`, so a cache written by one process is
readable by any other with a compatible platform registry. Cached stats
are *not* persisted — a reloaded hit reports zeroed RunStats, since the
enumeration work it saved happened in another process.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

from repro.api import OptimizationResult, RunStats
from repro.exceptions import ReproError
from repro.obs import current_tracer
from repro.rheem.platforms import PlatformRegistry
from repro.serve.fingerprint import FINGERPRINT_VERSION

__all__ = ["PlanCache", "CacheStats", "copy_result"]

#: Version of the JSON persistence format.
CACHE_FORMAT_VERSION = 1


def copy_result(result: OptimizationResult) -> OptimizationResult:
    """An independent copy of an optimization result.

    Alias of :meth:`repro.api.OptimizationResult.copy`: the logical plan
    is deep-cloned, the assignment rebuilt, and ``final_enumeration`` —
    which aliases enumeration matrices — dropped.
    """
    return result.copy()


@dataclass
class CacheStats:
    """Monotonic counters of one cache's lifetime."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before the first lookup)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


class PlanCache:
    """An LRU mapping from plan fingerprint to optimization result.

    Parameters
    ----------
    max_entries:
        The LRU bound; inserting beyond it evicts the least recently
        *used* entry (both ``get`` hits and ``put`` refresh recency).
    copy_results:
        Return/store defensive copies (the default). Disable only when
        every caller treats results as immutable — e.g. a read-only
        benchmark loop that wants hits at zero copy cost.
    """

    def __init__(self, max_entries: int = 256, copy_results: bool = True):
        if max_entries < 1:
            raise ReproError(f"cache needs max_entries >= 1, got {max_entries}")
        self.max_entries = max_entries
        self.copy_results = copy_results
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, OptimizationResult]" = OrderedDict()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def fingerprints(self):
        """The cached fingerprints, least recently used first."""
        return list(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> Optional[OptimizationResult]:
        """The cached result for a fingerprint (``None`` on miss)."""
        tracer = current_tracer()
        hit = self._entries.get(fingerprint)
        if hit is None:
            self.stats.misses += 1
            if tracer.enabled:
                tracer.count("serve.cache.misses")
            return None
        self._entries.move_to_end(fingerprint)
        self.stats.hits += 1
        if tracer.enabled:
            tracer.count("serve.cache.hits")
        return copy_result(hit) if self.copy_results else hit

    def put(self, fingerprint: str, result: OptimizationResult) -> None:
        """Insert (or refresh) a result under its fingerprint."""
        stored = copy_result(result) if self.copy_results else result
        self._entries[fingerprint] = stored
        self._entries.move_to_end(fingerprint)
        self.stats.puts += 1
        tracer = current_tracer()
        if tracer.enabled:
            tracer.count("serve.cache.puts")
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            if tracer.enabled:
                tracer.count("serve.cache.evictions")

    # ------------------------------------------------------------------
    # JSON persistence
    # ------------------------------------------------------------------
    def save(self, path) -> Path:
        """Write the cache as one JSON document (LRU order preserved)."""
        from repro.rheem.serialization import execution_plan_to_dict

        doc = {
            "version": CACHE_FORMAT_VERSION,
            "fingerprint_version": FINGERPRINT_VERSION,
            "max_entries": self.max_entries,
            "entries": [
                {
                    "fingerprint": fingerprint,
                    "predicted_runtime": result.predicted_runtime,
                    "optimizer": result.optimizer,
                    "execution_plan": execution_plan_to_dict(
                        result.execution_plan
                    ),
                }
                for fingerprint, result in self._entries.items()
            ],
        }
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(doc, indent=2) + "\n")
        tmp.replace(path)
        return path

    @classmethod
    def load(
        cls,
        path,
        registry: PlatformRegistry,
        max_entries: Optional[int] = None,
        copy_results: bool = True,
    ) -> "PlanCache":
        """Rebuild a cache from :meth:`save` output.

        Entries persisted under a different fingerprint scheme version are
        dropped (they would never match a freshly computed key anyway).

        A cache file is an *optimization*, never a point of failure: an
        unreadable, truncated or otherwise corrupt document (the classic
        crash-during-write artifact) yields an **empty** cache and bumps
        the ``serve.cache.load_corrupt`` counter; individually malformed
        entries are skipped the same way while the rest load. Only an
        explicit, well-formed version field we do not support still
        raises — silently discarding a future format would hide a real
        deployment error.
        """
        from repro.rheem.serialization import execution_plan_from_dict

        tracer = current_tracer()

        def corrupt(detail: str) -> "PlanCache":
            if tracer.enabled:
                tracer.count("serve.cache.load_corrupt")
                tracer.event("serve.cache.corrupt", path=str(path), detail=detail)
            return cls(
                max_entries=max_entries if max_entries is not None else 256,
                copy_results=copy_results,
            )

        try:
            doc = json.loads(Path(path).read_text())
        except (OSError, ValueError) as exc:
            return corrupt(f"{type(exc).__name__}: {exc}")
        if not isinstance(doc, dict):
            return corrupt(f"expected a JSON object, got {type(doc).__name__}")
        if "version" in doc and doc["version"] != CACHE_FORMAT_VERSION:
            raise ReproError(
                f"unsupported cache format version {doc.get('version')!r} "
                f"(expected {CACHE_FORMAT_VERSION})"
            )
        if "version" not in doc:
            return corrupt("missing version field")
        try:
            declared_max = int(doc.get("max_entries", 256))
        except (TypeError, ValueError):
            declared_max = 256
        cache = cls(
            max_entries=max_entries if max_entries is not None else declared_max,
            copy_results=copy_results,
        )
        if doc.get("fingerprint_version") != FINGERPRINT_VERSION:
            return cache
        entries = doc.get("entries", [])
        if not isinstance(entries, list):
            return corrupt(f"entries is {type(entries).__name__}, not a list")
        for entry in entries:
            try:
                fingerprint = entry["fingerprint"]
                result = OptimizationResult(
                    execution_plan=execution_plan_from_dict(
                        entry["execution_plan"], registry
                    ),
                    predicted_runtime=float(entry["predicted_runtime"]),
                    stats=RunStats(),
                    optimizer=entry.get("optimizer", ""),
                )
            except Exception as exc:
                if tracer.enabled:
                    tracer.count("serve.cache.load_corrupt")
                    tracer.event(
                        "serve.cache.corrupt",
                        path=str(path),
                        detail=f"entry: {type(exc).__name__}: {exc}",
                    )
                continue
            # Bypass put(): loading must not inflate the put/eviction
            # stats of the new cache's lifetime.
            cache._entries[fingerprint] = result
            while len(cache._entries) > cache.max_entries:
                cache._entries.popitem(last=False)
        return cache

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PlanCache(entries={len(self)}/{self.max_entries}, "
            f"hits={self.stats.hits}, misses={self.stats.misses})"
        )
