"""The batch optimization engine: many queries through one optimizer.

:class:`BatchOptimizationService` accepts a list of jobs (logical plans,
optionally with a per-job input-size override — the "stats" of a job)
and drives them through any :class:`repro.api.Optimizer`:

* **Parallelism** — a :class:`concurrent.futures.ProcessPoolExecutor`
  with a configurable worker count. Jobs ship to workers as the exact
  JSON plan documents of :mod:`repro.rheem.serialization` and results
  return the same way, so batch-mode answers are bit-identical to serial
  ones (the differential suite asserts this). Per-job timeouts produce a
  per-job error entry; a worker raising mid-job fails only its job; a
  broken pool or an unpicklable optimizer factory degrades gracefully to
  serial execution.
* **Plan cache** — an optional fingerprint-keyed
  :class:`~repro.serve.cache.PlanCache`. Within a batch, jobs sharing a
  fingerprint are optimized once; across batches (and, via JSON
  persistence, across processes) repeated/parametric queries reuse the
  cached decision.
* **Singleton memoization** — within a batch the serial path (and each
  pool worker) shares one singleton-enumeration memo, so identical
  subplans are vectorized once (see
  :func:`repro.core.operations.enumerate_singleton`).

Every stage emits tracer spans/counters (``serve.*``), and
:meth:`BatchReport.metrics` is shaped for
:func:`repro.bench.trajectory.record`.

The pool needs a *picklable factory* rather than an optimizer instance
(cost oracles close over models, and closures do not pickle):
:func:`robopt_factory` builds one for the standard Robopt stack.
"""

from __future__ import annotations

import functools
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.api import Optimizer, OptimizationResult, RunStats
from repro.exceptions import ModelError, ReproError
from repro.obs import current_tracer
from repro.resilience.retry import Quarantine, RetryPolicy
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.platforms import PlatformRegistry
from repro.serve.cache import PlanCache, copy_result
from repro.serve.fingerprint import plan_fingerprint

__all__ = [
    "BatchJob",
    "JobOutcome",
    "BatchReport",
    "BatchOptimizationService",
    "robopt_factory",
    "resilient_robopt_factory",
]


@dataclass
class BatchJob:
    """One optimization request: a plan plus per-job statistics.

    ``size_bytes`` rescales the plan's input datasets before optimizing
    (the parametric-query knob); ``tags`` travel untouched into the
    outcome for the caller's bookkeeping.
    """

    job_id: str
    plan: LogicalPlan
    size_bytes: Optional[float] = None
    tags: Dict[str, Any] = field(default_factory=dict)

    def prepared_plan(self) -> LogicalPlan:
        """The plan to optimize (cloned + rescaled if sized)."""
        if self.size_bytes is None:
            return self.plan
        plan = self.plan.clone()
        plan.scale_datasets_to_bytes(self.size_bytes)
        return plan


@dataclass
class JobOutcome:
    """What happened to one job of a batch."""

    job_id: str
    ok: bool
    result: Optional[OptimizationResult] = None
    error: Optional[str] = None
    cached: bool = False
    duration_s: float = 0.0
    tags: Dict[str, Any] = field(default_factory=dict)
    #: Dispatch attempts consumed (1 = no retry was needed).
    attempts: int = 1
    #: The job timed out; its budget is spent, so it is never retried.
    timed_out: bool = False
    #: The job was in flight when the process pool broke.
    worker_died: bool = False
    #: The job was refused dispatch (its fingerprint is quarantined).
    quarantined: bool = False


@dataclass
class BatchReport:
    """The aggregate outcome of one batch run."""

    outcomes: List[JobOutcome]
    wall_s: float
    mode: str  # "serial" or "pool"
    workers: int
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def n_jobs(self) -> int:
        return len(self.outcomes)

    @property
    def n_ok(self) -> int:
        return sum(1 for o in self.outcomes if o.ok)

    @property
    def n_failed(self) -> int:
        return self.n_jobs - self.n_ok

    @property
    def plans_per_sec(self) -> float:
        """Completed jobs per wall-clock second."""
        return self.n_ok / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def n_degraded(self) -> int:
        """Jobs answered with a budget-degraded (anytime) plan."""
        return sum(
            1
            for o in self.outcomes
            if o.result is not None and o.result.stats.degraded
        )

    @property
    def n_retried(self) -> int:
        """Jobs that needed more than one dispatch attempt."""
        return sum(1 for o in self.outcomes if o.attempts > 1)

    @property
    def n_quarantined(self) -> int:
        return sum(1 for o in self.outcomes if o.quarantined)

    def aggregate_stats(self) -> RunStats:
        """Summed RunStats over the successful, non-cached jobs.

        Numeric fields sum, booleans OR (``degraded`` means "any job
        degraded"), string diagnostics like ``degradation`` stay empty.
        """
        total = RunStats()
        for outcome in self.outcomes:
            if outcome.result is None or outcome.cached:
                continue
            for key, value in outcome.result.stats.as_dict().items():
                current = getattr(total, key)
                if isinstance(value, bool):
                    setattr(total, key, current or value)
                elif isinstance(value, (int, float)):
                    setattr(total, key, current + value)
        return total

    def metrics(self) -> Dict[str, float]:
        """Flat metric dict for :func:`repro.bench.trajectory.record`."""
        return {
            "n_jobs": self.n_jobs,
            "n_ok": self.n_ok,
            "n_failed": self.n_failed,
            "wall_s": self.wall_s,
            "plans_per_sec": self.plans_per_sec,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "workers": self.workers,
            "n_degraded": self.n_degraded,
            "n_retried": self.n_retried,
            "n_quarantined": self.n_quarantined,
        }


# ---------------------------------------------------------------------------
# Worker side: one optimizer per process, plans shipped as JSON documents.
# ---------------------------------------------------------------------------

_WORKER_OPTIMIZER: Optional[Optimizer] = None


def _worker_init(factory: Callable[[], Optimizer], memoize: bool) -> None:
    global _WORKER_OPTIMIZER
    _WORKER_OPTIMIZER = factory()
    if memoize:
        _enable_singleton_memo(_WORKER_OPTIMIZER, {})


def _worker_run(job_id: str, plan_json: str) -> Dict[str, Any]:
    """Optimize one shipped plan; returns a JSON-safe result document."""
    from repro.rheem.serialization import execution_plan_to_dict, plan_from_json

    assert _WORKER_OPTIMIZER is not None, "worker pool not initialized"
    plan = plan_from_json(plan_json)
    result = _WORKER_OPTIMIZER.optimize(plan)
    return {
        "job_id": job_id,
        "execution_plan": execution_plan_to_dict(result.execution_plan),
        "predicted_runtime": result.predicted_runtime,
        "optimizer": result.optimizer,
        "stats": result.stats.as_dict(),
    }


def _build_robopt(
    platforms: Sequence[str],
    model: Any,
    model_path: Optional[str],
    priority: str,
    pruning: bool,
):
    from repro.core.optimizer import Robopt
    from repro.ml.model import RuntimeModel
    from repro.rheem.platforms import default_registry

    if model is None:
        if model_path is None:
            raise ReproError("robopt_factory needs a model or a model_path")
        model = RuntimeModel.load(model_path)
    registry = default_registry(tuple(platforms))
    return Robopt(registry, model, priority=priority, pruning=pruning)


def robopt_factory(
    platforms: Sequence[str] = ("java", "spark", "flink"),
    model: Any = None,
    model_path: Optional[str] = None,
    priority: str = "robopt",
    pruning: bool = True,
) -> Callable[[], Optimizer]:
    """A picklable zero-argument factory building a standard Robopt.

    Pass either a (picklable) ``model`` object or a ``model_path`` that
    each worker loads on initialization — the latter avoids shipping a
    large forest through the pipe once per pool.
    """
    return functools.partial(
        _build_robopt, tuple(platforms), model, model_path, priority, pruning
    )


def _no_primary_model():
    raise ModelError(
        "no runtime model configured; the fallback chain serves the "
        "calibrated cost model instead"
    )


def _build_resilient_robopt(
    platforms: Sequence[str],
    model: Any,
    model_path: Optional[str],
    priority: str,
    pruning: bool,
    deadline_s: Optional[float],
    budget_vectors: Optional[int],
    breaker_threshold: int,
    breaker_cooldown_s: float,
    chaos: Any,
):
    from repro.core.features import FeatureSchema
    from repro.core.optimizer import Robopt
    from repro.ml.model import RuntimeModel
    from repro.resilience import (
        Budget,
        ChaoticModel,
        ChaoticOptimizer,
        CircuitBreaker,
        FallbackRuntimeModel,
        FaultInjector,
    )
    from repro.rheem.platforms import default_registry

    if isinstance(platforms, int):
        from repro.rheem.platforms import synthetic_registry

        registry = synthetic_registry(platforms)
    else:
        registry = default_registry(tuple(platforms))
    schema = FeatureSchema(registry)
    if model is not None:
        primary = model
    elif model_path is not None:
        # Lazy: a missing/corrupt model file degrades at first predict
        # instead of killing worker initialization.
        primary = RuntimeModel.loader(model_path)
    else:
        primary = _no_primary_model
    injector = None
    if chaos is not None and not chaos.inert:
        injector = FaultInjector(chaos)
        if hasattr(primary, "predict"):
            primary = ChaoticModel(primary, injector)
        else:
            loader = primary  # runs worker-side; the closure never pickles
            primary = lambda: ChaoticModel(loader(), injector)  # noqa: E731
    fallback = FallbackRuntimeModel.for_schema(
        primary,
        schema,
        breaker=CircuitBreaker(breaker_threshold, breaker_cooldown_s),
    )
    budget = None
    if deadline_s is not None or budget_vectors is not None:
        budget = Budget(deadline_s=deadline_s, max_vectors=budget_vectors)
    optimizer: Optimizer = Robopt(
        registry,
        fallback,
        priority=priority,
        pruning=pruning,
        schema=schema,
        budget=budget,
    )
    if injector is not None:
        optimizer = ChaoticOptimizer(optimizer, injector)
    return optimizer


def resilient_robopt_factory(
    platforms=("java", "spark", "flink"),
    model: Any = None,
    model_path: Optional[str] = None,
    priority: str = "robopt",
    pruning: bool = True,
    deadline_s: Optional[float] = None,
    budget_vectors: Optional[int] = None,
    breaker_threshold: int = 3,
    breaker_cooldown_s: float = 30.0,
    chaos: Any = None,
) -> Callable[[], Optimizer]:
    """A picklable factory for the fully-armored Robopt stack.

    ``platforms`` is either a name tuple (default registry) or an int
    (synthetic registry of that many platforms, as in the test
    factories). Like :func:`robopt_factory`, plus the resilience
    subsystem:

    * the model sits behind a :class:`FallbackRuntimeModel` (circuit
      breaker → calibrated cost model → cardinality heuristic), so model
      outages degrade plan *quality*, never availability; with neither
      ``model`` nor ``model_path`` the chain simply starts at the cost
      model;
    * ``deadline_s`` / ``budget_vectors`` become a per-run
      :class:`~repro.resilience.budget.Budget` (anytime optimization);
    * ``chaos`` (a :class:`~repro.resilience.chaos.ChaosProfile`) wraps
      the stack in the deterministic fault injector — test/drill only.
    """
    return functools.partial(
        _build_resilient_robopt,
        platforms if isinstance(platforms, int) else tuple(platforms),
        model,
        model_path,
        priority,
        pruning,
        deadline_s,
        budget_vectors,
        breaker_threshold,
        breaker_cooldown_s,
        chaos,
    )


def _enable_singleton_memo(optimizer: Optimizer, memo: dict) -> bool:
    """Share a singleton-enumeration memo with an optimizer, if it can.

    Works for any optimizer exposing a ``singleton_memo`` attribute
    (directly or on its ``_enumerator``); silently does nothing for
    optimizers without one — memoization is an optimization, not a
    contract.
    """
    for holder in (optimizer, getattr(optimizer, "_enumerator", None)):
        if holder is not None and hasattr(holder, "singleton_memo"):
            holder.singleton_memo = memo
            return True
    return False


# ---------------------------------------------------------------------------
# The service
# ---------------------------------------------------------------------------


class BatchOptimizationService:
    """Drives batches of optimization jobs through one optimizer.

    Parameters
    ----------
    optimizer_factory:
        Zero-argument callable returning an :class:`~repro.api.Optimizer`.
        Must be picklable for pool mode (:func:`robopt_factory` is); an
        unpicklable factory degrades to serial execution.
    registry:
        The platform registry results are rebuilt against (and the
        fingerprint context). Defaults to the factory-built optimizer's
        ``registry`` attribute.
    workers:
        Process count; ``0`` or ``1`` means serial in-process execution.
    timeout_s:
        Per-job wall-clock budget, measured from the start of result
        collection (pool mode only — a serial job cannot be preempted).
        An overrun produces an error outcome for that job; the batch
        continues.
    cache:
        An optional :class:`PlanCache` shared across batches.
    memoize_singletons:
        Share one singleton-enumeration memo per batch (serial) or per
        worker (pool) so identical subplans vectorize once.
    retry:
        An optional :class:`~repro.resilience.retry.RetryPolicy`. Failed
        jobs (exceptions and pool breakage — not timeouts, whose budget
        is already spent) are re-dispatched up to ``max_retries`` times
        with jittered exponential backoff. ``None`` disables retries.
    quarantine_after:
        Worker deaths a plan fingerprint survives before it is
        quarantined (failed immediately, never dispatched again by this
        service instance). The tally persists across batches and clears
        on a successful run — see
        :class:`~repro.resilience.retry.Quarantine`.
    """

    def __init__(
        self,
        optimizer_factory: Callable[[], Optimizer],
        registry: Optional[PlatformRegistry] = None,
        *,
        workers: int = 0,
        timeout_s: Optional[float] = None,
        cache: Optional[PlanCache] = None,
        memoize_singletons: bool = True,
        retry: Optional[RetryPolicy] = None,
        quarantine_after: int = 2,
    ):
        if workers < 0:
            raise ReproError(f"workers must be >= 0, got {workers}")
        if timeout_s is not None and timeout_s <= 0:
            raise ReproError(f"timeout_s must be positive, got {timeout_s}")
        self._factory = optimizer_factory
        self.workers = workers
        self.timeout_s = timeout_s
        self.cache = cache
        self.memoize_singletons = memoize_singletons
        self.retry = retry
        self.quarantine = Quarantine(threshold=quarantine_after)
        self._optimizer: Optional[Optimizer] = None
        self.registry = registry if registry is not None else self._serial_optimizer().registry

    # ------------------------------------------------------------------
    def _serial_optimizer(self) -> Optimizer:
        if self._optimizer is None:
            self._optimizer = self._factory()
        return self._optimizer

    @staticmethod
    def as_jobs(
        jobs: Sequence[Union[BatchJob, LogicalPlan]]
    ) -> List[BatchJob]:
        """Normalize a mixed plan/job sequence into jobs with unique ids."""
        out: List[BatchJob] = []
        seen: Dict[str, int] = {}
        for index, item in enumerate(jobs):
            if isinstance(item, BatchJob):
                job = item
            else:
                job = BatchJob(job_id=item.name or f"job{index}", plan=item)
            if job.job_id in seen or not job.job_id:
                job = BatchJob(
                    f"{job.job_id or 'job'}#{index}", job.plan, job.size_bytes, job.tags
                )
            seen[job.job_id] = index
            out.append(job)
        return out

    # ------------------------------------------------------------------
    def optimize_batch(
        self, jobs: Sequence[Union[BatchJob, LogicalPlan]]
    ) -> BatchReport:
        """Run every job; never raises for a single job's failure."""
        jobs = self.as_jobs(jobs)
        tracer = current_tracer()
        started = time.perf_counter()
        with tracer.span("serve.batch", n_jobs=len(jobs), workers=self.workers):
            outcomes, hits, misses, mode = self._run(jobs, tracer)
        wall = time.perf_counter() - started
        report = BatchReport(
            outcomes=outcomes,
            wall_s=wall,
            mode=mode,
            workers=self.workers,
            cache_hits=hits,
            cache_misses=misses,
        )
        if tracer.enabled:
            tracer.count("serve.jobs", report.n_jobs)
            tracer.count("serve.jobs_ok", report.n_ok)
            tracer.count("serve.jobs_failed", report.n_failed)
        return report

    # ------------------------------------------------------------------
    def _run(self, jobs: List[BatchJob], tracer):
        """Plan the batch: cache lookups, then dispatch the misses."""
        outcomes: Dict[str, JobOutcome] = {}
        hits = 0
        misses = 0
        # Fingerprint every job; serve cache hits immediately and collapse
        # within-batch duplicates onto one representative optimization.
        prepared: Dict[str, LogicalPlan] = {}
        fingerprints: Dict[str, str] = {}
        representatives: Dict[str, BatchJob] = {}
        followers: Dict[str, List[BatchJob]] = {}
        with tracer.span("serve.cache.lookup", n_jobs=len(jobs)):
            for job in jobs:
                plan = job.prepared_plan()
                prepared[job.job_id] = plan
                fp = plan_fingerprint(plan, self.registry)
                fingerprints[job.job_id] = fp
                if self.cache is not None:
                    cached = self.cache.get(fp)
                    if cached is not None:
                        hits += 1
                        outcomes[job.job_id] = JobOutcome(
                            job.job_id,
                            ok=True,
                            result=cached,
                            cached=True,
                            tags=job.tags,
                        )
                        continue
                # Collapsing same-fingerprint jobs onto one optimization is
                # the cache's equivalence semantics; without a cache every
                # job is optimized individually.
                key = fp if self.cache is not None else f"job:{job.job_id}"
                if key in representatives:
                    followers.setdefault(key, []).append(job)
                else:
                    representatives[key] = job

        # Each job counts exactly once: a cache hit, a batch-local hit
        # (follower of a representative), or a miss (actually optimized).
        if self.cache is not None:
            misses = len(representatives)
        todo = list(representatives.values())

        # Quarantined fingerprints (plans that repeatedly broke the pool)
        # fail up front instead of being handed another worker to kill.
        pending: List[BatchJob] = []
        for job in todo:
            fp = fingerprints[job.job_id]
            if self.quarantine.is_quarantined(fp):
                outcomes[job.job_id] = JobOutcome(
                    job.job_id,
                    ok=False,
                    error=(
                        f"quarantined: implicated in "
                        f"{self.quarantine.deaths(fp)} worker deaths"
                    ),
                    quarantined=True,
                    tags=job.tags,
                )
                if tracer.enabled:
                    tracer.count("serve.jobs_quarantined")
            else:
                pending.append(job)

        mode = "serial"
        attempt = 0
        while pending:
            # Jobs already implicated in a worker death are dispatched in
            # isolation (their own pool) so a repeat offender only breaks
            # itself: innocents that merely shared the broken pool get a
            # clean round, succeed, and clear their tally instead of
            # riding every crash to the quarantine threshold.
            suspect_ids = {
                job.job_id
                for job in pending
                if self.quarantine.deaths(fingerprints[job.job_id]) > 0
            }
            clean = [job for job in pending if job.job_id not in suspect_ids]
            groups = ([clean] if clean else []) + [
                [job] for job in pending if job.job_id in suspect_ids
            ]
            dispatched: Dict[str, JobOutcome] = {}
            for group in groups:
                got, used_mode = self._dispatch(group, prepared, tracer)
                dispatched.update(got)
                if used_mode == "pool":
                    mode = "pool"
            for job in pending:
                outcome = dispatched[job.job_id]
                outcome.attempts = attempt + 1
                outcomes[job.job_id] = outcome
                fp = fingerprints[job.job_id]
                if outcome.worker_died:
                    self.quarantine.record_worker_death(fp)
                    if tracer.enabled:
                        tracer.count("serve.worker_deaths")
                elif outcome.ok:
                    self.quarantine.record_success(fp)
            if self.retry is None or attempt >= self.retry.max_retries:
                break
            retryable: List[BatchJob] = []
            for job in pending:
                outcome = outcomes[job.job_id]
                if outcome.ok or outcome.timed_out:
                    continue  # a timeout already consumed the job's budget
                if self.quarantine.is_quarantined(fingerprints[job.job_id]):
                    outcome.quarantined = True
                    outcome.error = f"{outcome.error}; quarantined"
                    if tracer.enabled:
                        tracer.count("serve.jobs_quarantined")
                    continue
                retryable.append(job)
            if not retryable:
                break
            attempt += 1
            if tracer.enabled:
                tracer.count("serve.jobs_retried", len(retryable))
            delay = self.retry.delay_s(attempt)
            if delay > 0:
                time.sleep(delay)
            pending = retryable

        # Fill followers from their representative (a batch-local hit) and
        # publish fresh results to the cache.
        for key, job in representatives.items():
            rep = outcomes[job.job_id]
            if rep.ok and rep.result is not None and self.cache is not None:
                self.cache.put(fingerprints[job.job_id], rep.result)
            for follower in followers.get(key, []):
                if rep.ok and rep.result is not None:
                    hits += 1
                    outcomes[follower.job_id] = JobOutcome(
                        follower.job_id,
                        ok=True,
                        result=copy_result(rep.result),
                        cached=True,
                        tags=follower.tags,
                    )
                else:
                    outcomes[follower.job_id] = JobOutcome(
                        follower.job_id,
                        ok=False,
                        error=rep.error,
                        tags=follower.tags,
                    )
        ordered = [outcomes[job.job_id] for job in jobs]
        return ordered, hits, misses, mode

    # ------------------------------------------------------------------
    def _dispatch(
        self, todo: List[BatchJob], prepared: Dict[str, LogicalPlan], tracer
    ):
        """One dispatch round: the pool when configured, serial otherwise."""
        if self.workers > 1 and todo:
            pool_outcomes = self._run_pool(todo, prepared, tracer)
            if pool_outcomes is not None:
                return pool_outcomes, "pool"
        return self._run_serial(todo, prepared, tracer), "serial"

    # ------------------------------------------------------------------
    def _run_serial(
        self, todo: List[BatchJob], prepared: Dict[str, LogicalPlan], tracer
    ) -> Dict[str, JobOutcome]:
        optimizer = self._serial_optimizer()
        if self.memoize_singletons:
            _enable_singleton_memo(optimizer, {})
        outcomes: Dict[str, JobOutcome] = {}
        for job in todo:
            t0 = time.perf_counter()
            try:
                with tracer.span("serve.job", job=job.job_id, mode="serial"):
                    result = optimizer.optimize(prepared[job.job_id])
                outcomes[job.job_id] = JobOutcome(
                    job.job_id,
                    ok=True,
                    result=result,
                    duration_s=time.perf_counter() - t0,
                    tags=job.tags,
                )
            except Exception as exc:  # one job's failure is one error row
                outcomes[job.job_id] = JobOutcome(
                    job.job_id,
                    ok=False,
                    error=f"{type(exc).__name__}: {exc}",
                    duration_s=time.perf_counter() - t0,
                    tags=job.tags,
                )
                if tracer.enabled:
                    tracer.count("serve.jobs_errored")
        return outcomes

    # ------------------------------------------------------------------
    def _run_pool(
        self, todo: List[BatchJob], prepared: Dict[str, LogicalPlan], tracer
    ) -> Optional[Dict[str, JobOutcome]]:
        """Run jobs on a process pool; ``None`` means "fall back to serial".

        The fallback triggers only for infrastructure failures (an
        unpicklable factory, a pool that cannot start). A *broken* pool
        mid-run fails the unfinished jobs' outcomes with
        ``worker_died=True`` — the service's retry/quarantine layer
        decides whether they get a fresh pool.
        """
        from repro.rheem.serialization import plan_to_json

        try:
            pickle.dumps(self._factory)
        except Exception as exc:
            if tracer.enabled:
                tracer.event("serve.pool.fallback", reason=f"unpicklable factory: {exc}")
            return None
        outcomes: Dict[str, JobOutcome] = {}
        # The per-job budget starts *here*, before the executor exists:
        # pool spawn and worker initialization (the optimizer factory,
        # which may load a model from disk) count against the timeout, so
        # a hanging construction cannot stall the batch unboundedly.
        submitted = time.perf_counter()
        try:
            executor = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_worker_init,
                initargs=(self._factory, self.memoize_singletons),
            )
        except Exception as exc:  # pool cannot start (e.g. no sem support)
            if tracer.enabled:
                tracer.event("serve.pool.fallback", reason=str(exc))
            return None
        broken: Optional[str] = None
        with tracer.span("serve.pool", workers=self.workers, n_jobs=len(todo)):
            try:
                futures = []
                for job in todo:
                    payload = plan_to_json(prepared[job.job_id], indent=0)
                    futures.append((job, executor.submit(_worker_run, job.job_id, payload)))
                for job, future in futures:
                    t0 = time.perf_counter()
                    if broken is not None:
                        # In flight when the pool broke: implicated in the
                        # worker death (the quarantine sorts out who is
                        # actually poisonous across retries).
                        outcomes[job.job_id] = JobOutcome(
                            job.job_id,
                            ok=False,
                            error=broken,
                            worker_died=True,
                            tags=job.tags,
                        )
                        continue
                    try:
                        # The per-job budget is measured from batch dispatch:
                        # jobs run concurrently, so each job's deadline is
                        # submission + timeout, not collection + timeout.
                        remaining = None
                        if self.timeout_s is not None:
                            remaining = max(
                                0.05,
                                self.timeout_s - (time.perf_counter() - submitted),
                            )
                        doc = future.result(timeout=remaining)
                        outcomes[job.job_id] = self._outcome_from_doc(
                            job, doc, time.perf_counter() - t0
                        )
                    except FutureTimeout:
                        future.cancel()
                        outcomes[job.job_id] = JobOutcome(
                            job.job_id,
                            ok=False,
                            error=f"timeout after {self.timeout_s}s",
                            duration_s=time.perf_counter() - t0,
                            timed_out=True,
                            tags=job.tags,
                        )
                        if tracer.enabled:
                            tracer.count("serve.jobs_timed_out")
                    except BrokenProcessPool as exc:
                        broken = f"BrokenProcessPool: {exc}"
                        outcomes[job.job_id] = JobOutcome(
                            job.job_id,
                            ok=False,
                            error=broken,
                            worker_died=True,
                            tags=job.tags,
                        )
                    except Exception as exc:
                        outcomes[job.job_id] = JobOutcome(
                            job.job_id,
                            ok=False,
                            error=f"{type(exc).__name__}: {exc}",
                            duration_s=time.perf_counter() - t0,
                            tags=job.tags,
                        )
                        if tracer.enabled:
                            tracer.count("serve.jobs_errored")
            finally:
                executor.shutdown(wait=False, cancel_futures=True)
        return outcomes

    def _outcome_from_doc(
        self, job: BatchJob, doc: Dict[str, Any], duration_s: float
    ) -> JobOutcome:
        from repro.rheem.serialization import execution_plan_from_dict

        result = OptimizationResult(
            execution_plan=execution_plan_from_dict(
                doc["execution_plan"], self.registry
            ),
            predicted_runtime=float(doc["predicted_runtime"]),
            stats=RunStats(**doc["stats"]),
            optimizer=doc.get("optimizer", ""),
        )
        return JobOutcome(
            job.job_id,
            ok=True,
            result=result,
            duration_s=duration_s,
            tags=job.tags,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchOptimizationService(workers={self.workers}, "
            f"timeout_s={self.timeout_s}, cache={self.cache!r})"
        )
