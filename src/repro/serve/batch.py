"""The batch optimization engine: many queries through one optimizer.

:class:`BatchOptimizationService` accepts a list of jobs (logical plans,
optionally with a per-job input-size override — the "stats" of a job)
and drives them through any :class:`repro.api.Optimizer`:

* **Warm-worker parallelism** — a long-lived process pool owned by the
  service. Each worker runs :func:`_worker_init` exactly once (optimizer
  factory, model load, platform registry) and then consumes jobs
  streamed over the executor's work queue; the pool survives across
  batches, so repeated ``optimize_batch`` calls pay worker warm-up once,
  not per batch. Jobs ship as the exact JSON plan documents of
  :mod:`repro.rheem.serialization` and results return the same way, so
  batch-mode answers are bit-identical to serial ones (the differential
  suite asserts this). Per-job timeouts produce a per-job error entry; a
  worker raising mid-job fails only its job; a worker *dying* breaks the
  pool — the unfinished jobs fail, the warm pool is discarded, and the
  next dispatch spawns a fresh one. A broken pool or an unpicklable
  optimizer factory degrades gracefully to serial execution.
* **Plan cache with in-flight dedupe** — an optional fingerprint-keyed
  :class:`~repro.serve.cache.PlanCache`, shared across every worker
  (lookups happen in the parent before dispatch; fresh results are
  published back after). Within a batch, jobs sharing a fingerprint are
  optimized once; *across concurrent batches*, a fingerprint whose
  optimization is already in flight on a sibling thread coalesces onto
  that computation instead of re-enumerating (``coalesced`` outcomes).
* **Singleton memoization** — the serial path (and each pool worker)
  shares one singleton-enumeration memo, so identical subplans are
  vectorized once (see :func:`repro.core.operations.enumerate_singleton`);
  with warm workers the memo also persists across batches.
* **Tail-latency accounting** — every outcome carries its
  dispatch-to-completion latency, and :meth:`BatchReport.metrics`
  reports p50/p95/p99 percentiles alongside throughput, because a
  serving layer is judged on its tail, not its mean.

Worker sizing is CPU-affinity aware: ``workers=None`` (the default)
sizes the pool from :func:`available_cpus` — ``len(os.sched_getaffinity(0))``
on Linux, which respects cgroup/affinity limits — so a container pinned
to one core runs serially instead of oversubscribing. An explicit
integer overrides this.

Every stage emits tracer spans/counters (``serve.*``), and
:meth:`BatchReport.metrics` is shaped for
:func:`repro.bench.trajectory.record`.

The pool needs a *picklable factory* rather than an optimizer instance
(cost oracles close over models, and closures do not pickle):
:func:`robopt_factory` builds one for the standard Robopt stack.
"""

from __future__ import annotations

import functools
import inspect
import math
import os
import pickle
import threading
import time
from concurrent.futures import (
    Future,
    ProcessPoolExecutor,
    TimeoutError as FutureTimeout,
    as_completed,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.api import Optimizer, OptimizationResult, RunStats
from repro.exceptions import ModelError, ReproError
from repro.obs import current_tracer
from repro.resilience.retry import Quarantine, RetryPolicy
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.platforms import PlatformRegistry
from repro.serve.cache import PlanCache, copy_result
from repro.serve.fingerprint import plan_fingerprint
from repro.serve.template import TemplateCache, template_fingerprint

__all__ = [
    "BatchJob",
    "JobOutcome",
    "BatchReport",
    "BatchOptimizationService",
    "available_cpus",
    "robopt_factory",
    "resilient_robopt_factory",
]

#: Wall-clock floor for rate computations. ``plans_per_sec`` divides by
#: Durations below this are untimed artifacts (e.g. follower outcomes
#: published with an exact-zero duration), not measurements; they are
#: excluded from the latency-percentile sample.
_LATENCY_FLOOR_S = 1e-6

#: ``max(wall_s, _WALL_FLOOR_S)`` — a 3.5 ms run of 2 jobs reports a
#: bounded lower-bound rate instead of an absurd extrapolation from a
#: sub-resolution sample.
_WALL_FLOOR_S = 0.01


def available_cpus() -> int:
    """CPUs actually available to this process (cgroup/affinity aware).

    ``os.sched_getaffinity`` sees CPU pinning and container cpusets;
    ``os.cpu_count`` (the non-Linux fallback) only sees the machine.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of ``values`` (0.0 when empty)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = (len(ordered) - 1) * (q / 100.0)
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return ordered[lo]
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


#: Per-optimizer-type verdict of the ``budget=`` capability probe below.
_BUDGET_CAPABLE: Dict[type, bool] = {}


def _accepts_budget(optimizer: Optimizer) -> bool:
    """Whether this optimizer's ``optimize`` takes a per-call ``budget``.

    Budgets are an optimization contract, not a universal one — chaos
    wrappers and third-party optimizers may not accept the keyword, and
    they must keep working (their jobs simply run unbudgeted).
    """
    kind = type(optimizer)
    verdict = _BUDGET_CAPABLE.get(kind)
    if verdict is None:
        try:
            verdict = "budget" in inspect.signature(optimizer.optimize).parameters
        except (TypeError, ValueError):  # builtins/odd callables
            verdict = False
        _BUDGET_CAPABLE[kind] = verdict
    return verdict


def _optimize_with_deadline(
    optimizer: Optimizer, plan: LogicalPlan, deadline_ms: Optional[float]
) -> OptimizationResult:
    """One optimize call, under the job's deadline budget when it has one."""
    if deadline_ms is not None and _accepts_budget(optimizer):
        from repro.resilience.budget import Budget

        return optimizer.optimize(plan, budget=Budget(deadline_s=deadline_ms / 1000.0))
    return optimizer.optimize(plan)


def _dedupe_key(fingerprint: str, deadline_ms: Optional[float]) -> str:
    """The equivalence key for collapsing/coalescing jobs.

    A deadline is part of the answer's identity: a 10 ms budget may
    legitimately produce a degraded plan that a deadline-free sibling of
    the same fingerprint must never be handed.
    """
    if deadline_ms is None:
        return fingerprint
    return f"{fingerprint}|deadline_ms={deadline_ms:g}"


@dataclass
class BatchJob:
    """One optimization request: a plan plus per-job statistics.

    ``size_bytes`` rescales the plan's input datasets before optimizing
    (the parametric-query knob); ``tags`` travel untouched into the
    outcome for the caller's bookkeeping; ``deadline_ms`` is this job's
    anytime budget — passed as a per-call
    :class:`~repro.resilience.budget.Budget` to optimizers that accept
    one, so an expiring job answers degraded instead of late.
    """

    job_id: str
    plan: LogicalPlan
    size_bytes: Optional[float] = None
    tags: Dict[str, Any] = field(default_factory=dict)
    deadline_ms: Optional[float] = None

    def prepared_plan(self) -> LogicalPlan:
        """The plan to optimize (cloned + rescaled if sized)."""
        if self.size_bytes is None:
            return self.plan
        plan = self.plan.clone()
        plan.scale_datasets_to_bytes(self.size_bytes)
        return plan


@dataclass
class JobOutcome:
    """What happened to one job of a batch."""

    job_id: str
    ok: bool
    result: Optional[OptimizationResult] = None
    error: Optional[str] = None
    cached: bool = False
    #: Dispatch-to-completion latency as the caller experienced it
    #: (queueing + optimization for pool jobs, lookup time for hits).
    duration_s: float = 0.0
    tags: Dict[str, Any] = field(default_factory=dict)
    #: Dispatch attempts consumed (1 = no retry was needed).
    attempts: int = 1
    #: The job timed out; its budget is spent, so it is never retried.
    timed_out: bool = False
    #: The job was in flight when the process pool broke.
    worker_died: bool = False
    #: The job was refused dispatch (its fingerprint is quarantined).
    quarantined: bool = False
    #: The job coalesced onto a sibling's in-flight computation of the
    #: same fingerprint instead of enumerating again.
    coalesced: bool = False
    #: The job was served by the template tier: a cached candidate
    #: re-costed at this job's cardinalities and accepted under the
    #: guardrail (``cached`` is also True for these).
    template_hit: bool = False


@dataclass
class BatchReport:
    """The aggregate outcome of one batch run."""

    outcomes: List[JobOutcome]
    wall_s: float
    mode: str  # "serial" or "pool"
    #: Workers actually used for dispatch (0 when the batch ran serially).
    workers: int
    #: Workers the service was configured for (auto-sizing resolved).
    workers_requested: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    template_hits: int = 0
    template_misses: int = 0

    @property
    def n_jobs(self) -> int:
        return len(self.outcomes)

    @property
    def n_ok(self) -> int:
        return sum(1 for o in self.outcomes if o.ok)

    @property
    def n_failed(self) -> int:
        return self.n_jobs - self.n_ok

    @property
    def plans_per_sec(self) -> float:
        """Completed jobs per wall-clock second (a bounded lower bound).

        The wall clock is monotonic (``time.perf_counter``) and the
        denominator is floored at ``_WALL_FLOOR_S``: a batch that
        finishes below timer resolution reports a conservative rate
        instead of an absurd extrapolation (572 plans/s from a 3.5 ms
        run), and the result is always finite and NaN-free.
        """
        if self.n_ok == 0:
            return 0.0
        wall = self.wall_s if math.isfinite(self.wall_s) and self.wall_s > 0 else 0.0
        return self.n_ok / max(wall, _WALL_FLOOR_S)

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def n_template_hits(self) -> int:
        return sum(1 for o in self.outcomes if o.template_hit)

    @property
    def template_hit_rate(self) -> float:
        """Template-tier hits over template-tier lookups (exact-cache
        misses that consulted the template cache); 0.0 when the tier
        never ran."""
        lookups = self.template_hits + self.template_misses
        return self.template_hits / lookups if lookups else 0.0

    @property
    def n_degraded(self) -> int:
        """Jobs answered with a budget-degraded (anytime) plan."""
        return sum(
            1
            for o in self.outcomes
            if o.result is not None and o.result.stats.degraded
        )

    @property
    def n_retried(self) -> int:
        """Jobs that needed more than one dispatch attempt."""
        return sum(1 for o in self.outcomes if o.attempts > 1)

    @property
    def n_quarantined(self) -> int:
        return sum(1 for o in self.outcomes if o.quarantined)

    @property
    def n_coalesced(self) -> int:
        """Jobs served by a sibling's in-flight computation."""
        return sum(1 for o in self.outcomes if o.coalesced)

    def latency_percentiles(self) -> Dict[str, float]:
        """Per-job latency percentiles over the completed *measured* jobs.

        Latency is each outcome's ``duration_s`` — dispatch to
        completion, the figure a client of the service experiences (a
        timed cache hit counts at its near-zero lookup cost). The sample
        carries the same sub-resolution guard as :meth:`plans_per_sec`:
        durations below ``_LATENCY_FLOOR_S`` are untimed artifacts
        (batch-local follower hits are published with an exact-zero
        duration — they never went through a timed path), not
        measurements, and are excluded. When a batch completed jobs but
        none were measured the tails are NaN ("no sample"), which bench
        records store as null — previously this surfaced as a
        misleading exact ``latency_p50_s: 0.0``. An empty or fully
        failed batch still reports 0.0 everywhere.
        """
        measured = [
            o.duration_s
            for o in self.outcomes
            if o.ok and o.duration_s >= _LATENCY_FLOOR_S
        ]
        if measured:
            return {
                "p50": _percentile(measured, 50.0),
                "p95": _percentile(measured, 95.0),
                "p99": _percentile(measured, 99.0),
            }
        value = float("nan") if self.n_ok else 0.0
        return {"p50": value, "p95": value, "p99": value}

    def aggregate_stats(self) -> RunStats:
        """Summed RunStats over the successful, non-cached jobs.

        Numeric fields sum, booleans OR (``degraded`` means "any job
        degraded"), string diagnostics like ``degradation`` stay empty.
        """
        total = RunStats()
        for outcome in self.outcomes:
            if outcome.result is None or outcome.cached:
                continue
            for key, value in outcome.result.stats.as_dict().items():
                current = getattr(total, key)
                if isinstance(value, bool):
                    setattr(total, key, current or value)
                elif isinstance(value, (int, float)):
                    setattr(total, key, current + value)
        return total

    def metrics(self) -> Dict[str, float]:
        """Flat metric dict for :func:`repro.bench.trajectory.record`."""
        tails = self.latency_percentiles()
        return {
            "n_jobs": self.n_jobs,
            "n_ok": self.n_ok,
            "n_failed": self.n_failed,
            "wall_s": self.wall_s,
            "plans_per_sec": self.plans_per_sec,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "template_hits": self.template_hits,
            "template_misses": self.template_misses,
            "template_hit_rate": self.template_hit_rate,
            "workers": self.workers,
            "workers_requested": self.workers_requested,
            "latency_p50_s": tails["p50"],
            "latency_p95_s": tails["p95"],
            "latency_p99_s": tails["p99"],
            "n_degraded": self.n_degraded,
            "n_retried": self.n_retried,
            "n_quarantined": self.n_quarantined,
            "n_coalesced": self.n_coalesced,
        }


# ---------------------------------------------------------------------------
# Worker side: one optimizer per process, plans shipped as JSON documents.
# ---------------------------------------------------------------------------

_WORKER_OPTIMIZER: Optional[Optimizer] = None


def _worker_init(factory: Callable[[], Optimizer], memoize: bool) -> None:
    global _WORKER_OPTIMIZER
    _WORKER_OPTIMIZER = factory()
    if memoize:
        _enable_singleton_memo(_WORKER_OPTIMIZER, {})


def _worker_run(
    job_id: str, plan_json: str, deadline_ms: Optional[float] = None
) -> Dict[str, Any]:
    """Optimize one shipped plan; returns a JSON-safe result document."""
    from repro.rheem.serialization import execution_plan_to_dict, plan_from_json

    assert _WORKER_OPTIMIZER is not None, "worker pool not initialized"
    plan = plan_from_json(plan_json)
    result = _optimize_with_deadline(_WORKER_OPTIMIZER, plan, deadline_ms)
    return {
        "job_id": job_id,
        "execution_plan": execution_plan_to_dict(result.execution_plan),
        "predicted_runtime": result.predicted_runtime,
        "optimizer": result.optimizer,
        "stats": result.stats.as_dict(),
    }


def _build_robopt(
    platforms: Sequence[str],
    model: Any,
    model_path: Optional[str],
    priority: str,
    pruning: bool,
):
    from repro.core.optimizer import Robopt
    from repro.ml.model import RuntimeModel
    from repro.rheem.platforms import default_registry

    if model is None:
        if model_path is None:
            raise ReproError("robopt_factory needs a model or a model_path")
        model = RuntimeModel.load(model_path)
    registry = default_registry(tuple(platforms))
    return Robopt(registry, model, priority=priority, pruning=pruning)


def robopt_factory(
    platforms: Sequence[str] = ("java", "spark", "flink"),
    model: Any = None,
    model_path: Optional[str] = None,
    priority: str = "robopt",
    pruning: bool = True,
) -> Callable[[], Optimizer]:
    """A picklable zero-argument factory building a standard Robopt.

    Pass either a (picklable) ``model`` object or a ``model_path`` that
    each worker loads on initialization — the latter avoids shipping a
    large forest through the pipe once per pool.
    """
    return functools.partial(
        _build_robopt, tuple(platforms), model, model_path, priority, pruning
    )


def _no_primary_model():
    raise ModelError(
        "no runtime model configured; the fallback chain serves the "
        "calibrated cost model instead"
    )


def _build_resilient_robopt(
    platforms: Sequence[str],
    model: Any,
    model_path: Optional[str],
    priority: str,
    pruning: bool,
    deadline_s: Optional[float],
    budget_vectors: Optional[int],
    breaker_threshold: int,
    breaker_cooldown_s: float,
    chaos: Any,
    variance_threshold: Optional[float] = None,
    risk_aversion: float = 0.0,
):
    from repro.core.features import FeatureSchema
    from repro.core.optimizer import Robopt
    from repro.ml.model import RuntimeModel
    from repro.resilience import (
        Budget,
        ChaoticModel,
        ChaoticOptimizer,
        CircuitBreaker,
        FallbackRuntimeModel,
        FaultInjector,
        VarianceGuard,
    )
    from repro.rheem.platforms import default_registry

    if isinstance(platforms, int):
        from repro.rheem.platforms import synthetic_registry

        registry = synthetic_registry(platforms)
    else:
        registry = default_registry(tuple(platforms))
    schema = FeatureSchema(registry)
    if model is not None:
        primary = model
    elif model_path is not None:
        # Lazy: a missing/corrupt model file degrades at first predict
        # instead of killing worker initialization.
        primary = RuntimeModel.loader(model_path)
    else:
        primary = _no_primary_model
    injector = None
    if chaos is not None and not chaos.inert:
        injector = FaultInjector(chaos)
        if hasattr(primary, "predict"):
            primary = ChaoticModel(primary, injector)
        else:
            loader = primary  # runs worker-side; the closure never pickles
            primary = lambda: ChaoticModel(loader(), injector)  # noqa: E731
    fallback = FallbackRuntimeModel.for_schema(
        primary,
        schema,
        breaker=CircuitBreaker(breaker_threshold, breaker_cooldown_s),
        variance_guard=(
            VarianceGuard(threshold=variance_threshold)
            if variance_threshold is not None
            else None
        ),
    )
    budget = None
    if deadline_s is not None or budget_vectors is not None:
        budget = Budget(deadline_s=deadline_s, max_vectors=budget_vectors)
    optimizer: Optimizer = Robopt(
        registry,
        fallback,
        priority=priority,
        pruning=pruning,
        schema=schema,
        budget=budget,
        risk_aversion=risk_aversion,
    )
    if injector is not None:
        optimizer = ChaoticOptimizer(optimizer, injector)
    return optimizer


def resilient_robopt_factory(
    platforms=("java", "spark", "flink"),
    model: Any = None,
    model_path: Optional[str] = None,
    priority: str = "robopt",
    pruning: bool = True,
    deadline_s: Optional[float] = None,
    budget_vectors: Optional[int] = None,
    breaker_threshold: int = 3,
    breaker_cooldown_s: float = 30.0,
    chaos: Any = None,
    variance_threshold: Optional[float] = None,
    risk_aversion: float = 0.0,
) -> Callable[[], Optimizer]:
    """A picklable factory for the fully-armored Robopt stack.

    ``platforms`` is either a name tuple (default registry) or an int
    (synthetic registry of that many platforms, as in the test
    factories). Like :func:`robopt_factory`, plus the resilience
    subsystem:

    * the model sits behind a :class:`FallbackRuntimeModel` (circuit
      breaker → calibrated cost model → cardinality heuristic), so model
      outages degrade plan *quality*, never availability; with neither
      ``model`` nor ``model_path`` the chain simply starts at the cost
      model;
    * ``deadline_s`` / ``budget_vectors`` become a per-run
      :class:`~repro.resilience.budget.Budget` (anytime optimization);
    * ``chaos`` (a :class:`~repro.resilience.chaos.ChaosProfile`) wraps
      the stack in the deterministic fault injector — test/drill only;
    * ``variance_threshold`` arms a :class:`~repro.resilience.fallback.
      VarianceGuard` on the fallback chain (sustained relative
      prediction spread above it degrades to the cost model);
    * ``risk_aversion`` is Robopt's ``k`` in the ``mean + k·std``
      risk-adjusted final ranking (0 = today's expected-runtime choice).
    """
    return functools.partial(
        _build_resilient_robopt,
        platforms if isinstance(platforms, int) else tuple(platforms),
        model,
        model_path,
        priority,
        pruning,
        deadline_s,
        budget_vectors,
        breaker_threshold,
        breaker_cooldown_s,
        chaos,
        variance_threshold,
        risk_aversion,
    )


def _enable_singleton_memo(optimizer: Optimizer, memo: dict) -> bool:
    """Share a singleton-enumeration memo with an optimizer, if it can.

    Works for any optimizer exposing a ``singleton_memo`` attribute
    (directly or on its ``_enumerator``); silently does nothing for
    optimizers without one — memoization is an optimization, not a
    contract.
    """
    for holder in (optimizer, getattr(optimizer, "_enumerator", None)):
        if holder is not None and hasattr(holder, "singleton_memo"):
            holder.singleton_memo = memo
            return True
    return False


# ---------------------------------------------------------------------------
# The warm worker pool
# ---------------------------------------------------------------------------


class _WarmWorkerPool:
    """A long-lived :class:`ProcessPoolExecutor` the service keeps warm.

    ``acquire`` returns the live executor, spawning it on first use (and
    after a ``discard``); workers run the optimizer factory exactly once
    and then stream jobs off the executor's work queue. ``None`` from
    ``acquire`` means pool mode is impossible (unpicklable factory, no
    multiprocessing support) and the caller should fall back to serial.

    The picklability probe runs once and is cached — its verdict cannot
    change for a fixed factory.
    """

    def __init__(
        self,
        factory: Callable[[], Optimizer],
        memoize: bool,
        max_workers: int,
    ):
        self.factory = factory
        self.memoize = memoize
        self.max_workers = max_workers
        #: Pools spawned over this object's lifetime (1 = never broken).
        self.spawns = 0
        self._executor: Optional[ProcessPoolExecutor] = None
        self._unpicklable: Optional[str] = None
        self._lock = threading.Lock()

    @property
    def warm(self) -> bool:
        return self._executor is not None

    def acquire(self, tracer) -> Optional[ProcessPoolExecutor]:
        with self._lock:
            if self._executor is not None:
                return self._executor
            if self._unpicklable is None:
                try:
                    pickle.dumps(self.factory)
                    self._unpicklable = ""
                except Exception as exc:
                    self._unpicklable = f"unpicklable factory: {exc}"
            if self._unpicklable:
                if tracer.enabled:
                    tracer.event("serve.pool.fallback", reason=self._unpicklable)
                return None
            try:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    initializer=_worker_init,
                    initargs=(self.factory, self.memoize),
                )
                self.spawns += 1
            except Exception as exc:  # no sem support etc.
                if tracer.enabled:
                    tracer.event("serve.pool.fallback", reason=str(exc))
                return None
            return self._executor

    def discard(self) -> None:
        """Drop the executor (broken pool / shutdown); spawn anew later."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.discard()
        except Exception:
            pass


# ---------------------------------------------------------------------------
# The service
# ---------------------------------------------------------------------------


class BatchOptimizationService:
    """Drives batches of optimization jobs through one optimizer.

    Parameters
    ----------
    optimizer_factory:
        Zero-argument callable returning an :class:`~repro.api.Optimizer`.
        Must be picklable for pool mode (:func:`robopt_factory` is); an
        unpicklable factory degrades to serial execution.
    registry:
        The platform registry results are rebuilt against (and the
        fingerprint context). Defaults to the factory-built optimizer's
        ``registry`` attribute.
    workers:
        Process count. ``None`` (the default) auto-sizes from
        :func:`available_cpus` — cgroup/affinity aware, so a container
        pinned to one CPU runs serially instead of oversubscribing.
        ``0`` or ``1`` means serial in-process execution; an explicit
        ``>= 2`` overrides the auto-sizing. The warm pool persists
        across batches; :meth:`close` (or the context manager) shuts it
        down.
    timeout_s:
        Per-job wall-clock budget, measured from batch dispatch (pool
        mode only — a serial job cannot be preempted). On a cold pool
        the budget covers worker warm-up (the optimizer factory, which
        may load a model from disk), so a hanging construction cannot
        stall the batch unboundedly. An overrun produces an error
        outcome for that job; the batch continues.
    cache:
        An optional :class:`PlanCache` shared across batches and across
        every pool worker (lookups and publishes happen in the parent).
    template_cache:
        An optional :class:`~repro.serve.template.TemplateCache`: the
        second cache tier. Exact-fingerprint misses consult it; a
        guardrailed template hit answers the job without enumeration,
        and every fresh (non-degraded) result is folded back into its
        template's candidate set. Requires an optimizer exposing
        ``model`` and ``schema`` (possibly behind ``.inner`` wrappers)
        so candidates can be re-costed; otherwise the tier is skipped.
    memoize_singletons:
        Share one singleton-enumeration memo per batch (serial) or per
        worker (pool) so identical subplans vectorize once.
    retry:
        An optional :class:`~repro.resilience.retry.RetryPolicy`. Failed
        jobs (exceptions and pool breakage — not timeouts, whose budget
        is already spent) are re-dispatched up to ``max_retries`` times
        with jittered exponential backoff. ``None`` disables retries.
    quarantine_after:
        Worker deaths a plan fingerprint survives before it is
        quarantined (failed immediately, never dispatched again by this
        service instance). The tally persists across batches and clears
        on a successful run — see
        :class:`~repro.resilience.retry.Quarantine`.
    feedback:
        An optional :class:`~repro.serve.feedback.FeedbackController`.
        Every fresh (non-cached) successful result of a batch is handed
        to it for execution + observation, and ``maybe_retrain`` runs
        once per batch; when the controller has no ``install`` callback
        it is wired to :meth:`install_model` so retrains swap in here.
    model_path:
        Where :meth:`install_model` persists swapped-in models
        (atomically, tmp + rename). Pool workers build their optimizer
        from the factory — which typically loads this path — so saving
        before the pool restart is what propagates a retrain to them.
        Without it, swaps still reach the serial optimizer and any
        rebuilt pool simply reloads whatever the factory loads.
    """

    def __init__(
        self,
        optimizer_factory: Callable[[], Optimizer],
        registry: Optional[PlatformRegistry] = None,
        *,
        workers: Optional[int] = None,
        timeout_s: Optional[float] = None,
        cache: Optional[PlanCache] = None,
        template_cache: Optional[TemplateCache] = None,
        memoize_singletons: bool = True,
        retry: Optional[RetryPolicy] = None,
        quarantine_after: int = 2,
        feedback=None,
        model_path=None,
    ):
        self.workers_auto = workers is None
        if workers is None:
            workers = available_cpus()
            if workers <= 1:
                workers = 0  # one CPU: a pool is pure overhead
        if workers < 0:
            raise ReproError(f"workers must be >= 0, got {workers}")
        if timeout_s is not None and timeout_s <= 0:
            raise ReproError(f"timeout_s must be positive, got {timeout_s}")
        self._factory = optimizer_factory
        self.workers = workers
        self.timeout_s = timeout_s
        self.cache = cache
        self.template_cache = template_cache
        #: Lazily resolved re-cost closure for the template tier
        #: (``None`` = not yet probed, ``False`` = probe failed).
        self._recoster: Any = None
        self.memoize_singletons = memoize_singletons
        self.retry = retry
        self.quarantine = Quarantine(threshold=quarantine_after)
        self._optimizer: Optional[Optimizer] = None
        self._pool = _WarmWorkerPool(optimizer_factory, memoize_singletons, max(workers, 1))
        # In-flight table: dedupe key (fingerprint + deadline class, see
        # _dedupe_key) -> the Future computing it right now. Concurrent
        # batches coalesce onto it.
        self._inflight: Dict[str, Future] = {}
        self._inflight_lock = threading.Lock()
        self.feedback = feedback
        self.model_path = model_path
        #: Bumped on every :meth:`install_model`; lets stats frames and
        #: bench records tell which model era produced a number.
        self.model_generation = 0
        if feedback is not None and feedback.install is None:
            feedback.install = self.install_model
        self.registry = registry if registry is not None else self._serial_optimizer().registry

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the warm worker pool down (idempotent; the service stays
        usable — the next pooled batch spawns a fresh pool)."""
        self._pool.discard()

    def __enter__(self) -> "BatchOptimizationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    def _serial_optimizer(self) -> Optimizer:
        if self._optimizer is None:
            self._optimizer = self._factory()
        return self._optimizer

    @staticmethod
    def as_jobs(
        jobs: Sequence[Union[BatchJob, LogicalPlan]]
    ) -> List[BatchJob]:
        """Normalize a mixed plan/job sequence into jobs with unique ids."""
        out: List[BatchJob] = []
        seen: Dict[str, int] = {}
        for index, item in enumerate(jobs):
            if isinstance(item, BatchJob):
                job = item
            else:
                job = BatchJob(job_id=item.name or f"job{index}", plan=item)
            if job.job_id in seen or not job.job_id:
                job = BatchJob(
                    f"{job.job_id or 'job'}#{index}",
                    job.plan,
                    job.size_bytes,
                    job.tags,
                    deadline_ms=job.deadline_ms,
                )
            seen[job.job_id] = index
            out.append(job)
        return out

    # ------------------------------------------------------------------
    def optimize_batch(
        self, jobs: Sequence[Union[BatchJob, LogicalPlan]]
    ) -> BatchReport:
        """Run every job; never raises for a single job's failure."""
        jobs = self.as_jobs(jobs)
        tracer = current_tracer()
        started = time.perf_counter()
        with tracer.span("serve.batch", n_jobs=len(jobs), workers=self.workers):
            outcomes, hits, misses, t_hits, t_misses, mode = self._run(
                jobs, tracer
            )
        wall = time.perf_counter() - started
        report = BatchReport(
            outcomes=outcomes,
            wall_s=wall,
            mode=mode,
            workers=self.workers if mode == "pool" else 0,
            workers_requested=self.workers,
            cache_hits=hits,
            cache_misses=misses,
            template_hits=t_hits,
            template_misses=t_misses,
        )
        if tracer.enabled:
            tracer.count("serve.jobs", report.n_jobs)
            tracer.count("serve.jobs_ok", report.n_ok)
            tracer.count("serve.jobs_failed", report.n_failed)
        if self.feedback is not None:
            self._feed_back(report)
        return report

    def _feed_back(self, report: BatchReport) -> None:
        """Hand the batch's fresh results to the feedback controller.

        Only non-cached successes are observed — a cache hit re-executes
        nothing new and would let one popular fingerprint flood the
        observation log with identical rows. Degraded plans are filtered
        by the loop itself (``FeedbackLoop.observe`` rejects them). The
        retrain check runs once per batch, after all observations.
        """
        for outcome in report.outcomes:
            if outcome.ok and not outcome.cached and outcome.result is not None:
                self.feedback.observe(outcome.result)
        self.feedback.maybe_retrain()

    def install_model(self, model) -> None:
        """Atomically swap a freshly trained runtime model into service.

        Three consumers price plans and all three are handled:

        * the **serial optimizer** — the swap lands on the resilience
          wrapper's ``swap_primary`` (one attribute assignment; the
          enumerator's cost closure holds the wrapper, so it reprices
          immediately) or on a bare ``Robopt.set_model``; if neither is
          reachable the optimizer is dropped and lazily rebuilt;
        * **pool workers** — the model is persisted to ``model_path``
          (tmp + ``os.replace``) and the warm pool discarded, so the
          next pooled batch warms workers that load the new file;
        * **caches** — the exact cache is cleared (its entries carry
          costs priced by the dead model); the template cache survives,
          its candidates are re-costed live through the (re-probed)
          recoster on every hit.
        """
        installed = False
        probe: Any = self._serial_optimizer()
        for _ in range(4):  # unwrap chaos/resilience layers
            inner_model = getattr(probe, "model", None)
            if inner_model is not None and hasattr(inner_model, "swap_primary"):
                inner_model.swap_primary(model)
                installed = True
                break
            if inner_model is not None and hasattr(probe, "set_model"):
                probe.set_model(model)
                installed = True
                break
            probe = getattr(probe, "inner", None)
            if probe is None:
                break
        if not installed:
            self._optimizer = None  # rebuild from the factory on next use
        self._recoster = None  # re-probe: the old closure priced with the old model
        if self.model_path is not None:
            tmp = Path(str(self.model_path) + ".tmp")
            model.save(tmp)
            os.replace(tmp, self.model_path)
        self._pool.discard()
        if self.cache is not None:
            self.cache.clear()
        self.model_generation += 1
        tracer = current_tracer()
        if tracer.enabled:
            tracer.count("serve.model_swaps")
            tracer.event(
                "serve.model_installed",
                generation=self.model_generation,
                rebuilt=not installed,
            )

    def feedback_stats(self) -> Dict[str, Any]:
        """The feedback controller's stats payload (empty when disabled)."""
        if self.feedback is None:
            return {}
        out = self.feedback.stats()
        out["model_generation"] = self.model_generation
        return out

    # ------------------------------------------------------------------
    def _template_recoster(self):
        """The re-cost closure of the template tier (``None`` if unavailable).

        Resolved once: the serial optimizer (or a wrapper's ``.inner``
        chain) must expose a runtime ``model`` and a feature ``schema``;
        candidates are then re-costed by instantiating their assignment
        against the live plan and running one model prediction — the
        exact cost the enumerator itself would assign that plan vector.
        """
        if self._recoster is False:
            return None
        if self._recoster is None:
            probe: Any = self._serial_optimizer()
            model = schema = None
            for _ in range(4):  # unwrap chaos/resilience layers
                model = getattr(probe, "model", None)
                schema = getattr(probe, "schema", None)
                if model is not None and schema is not None:
                    break
                probe = getattr(probe, "inner", None)
                if probe is None:
                    break
            if model is None or schema is None:
                self._recoster = False
                tracer = current_tracer()
                if tracer.enabled:
                    tracer.event(
                        "serve.template.disabled",
                        reason="optimizer exposes no model/schema to re-cost with",
                    )
                return None
            import numpy as _np

            from repro.rheem.execution_plan import ExecutionPlan as _ExecutionPlan

            registry = self.registry

            def recost(plan, assignment):
                xplan = _ExecutionPlan(plan, dict(assignment), registry)
                features = _np.asarray(
                    schema.encode_execution_plan(xplan), dtype=_np.float64
                )
                cost = float(
                    _np.asarray(model.predict(features[None, :])).reshape(-1)[0]
                )
                return cost, xplan

            self._recoster = recost
        return self._recoster

    # ------------------------------------------------------------------
    def _run(self, jobs: List[BatchJob], tracer):
        """Plan the batch: cache lookups, then dispatch the misses."""
        outcomes: Dict[str, JobOutcome] = {}
        hits = 0
        misses = 0
        template_hits = 0
        template_misses = 0
        # Fingerprint every job; serve cache hits immediately and collapse
        # within-batch duplicates onto one representative optimization.
        prepared: Dict[str, LogicalPlan] = {}
        fingerprints: Dict[str, str] = {}
        template_fps: Dict[str, str] = {}
        representatives: Dict[str, BatchJob] = {}
        followers: Dict[str, List[BatchJob]] = {}
        with tracer.span("serve.cache.lookup", n_jobs=len(jobs)):
            for job in jobs:
                t0 = time.perf_counter()
                plan = job.prepared_plan()
                prepared[job.job_id] = plan
                fp = plan_fingerprint(plan, self.registry)
                fingerprints[job.job_id] = fp
                if self.cache is not None:
                    cached = self.cache.get(fp)
                    if cached is not None:
                        hits += 1
                        outcomes[job.job_id] = JobOutcome(
                            job.job_id,
                            ok=True,
                            result=cached,
                            cached=True,
                            duration_s=time.perf_counter() - t0,
                            tags=job.tags,
                        )
                        continue
                # Second tier: the template cache. A guardrailed hit —
                # a remembered candidate re-costed at *this* job's
                # cardinalities — answers without enumeration; anything
                # unsure falls through to the full optimizer.
                if self.template_cache is not None:
                    recost = self._template_recoster()
                    if recost is not None:
                        tfp = template_fingerprint(plan, self.registry)
                        template_fps[job.job_id] = tfp
                        served = self.template_cache.get(tfp, plan, recost)
                        if served is not None:
                            template_hits += 1
                            if self.cache is not None:
                                # Promote into tier 1 so same-bucket
                                # repeats skip the re-costing too.
                                self.cache.put(fp, served)
                            outcomes[job.job_id] = JobOutcome(
                                job.job_id,
                                ok=True,
                                result=served,
                                cached=True,
                                template_hit=True,
                                duration_s=time.perf_counter() - t0,
                                tags=job.tags,
                            )
                            continue
                        template_misses += 1
                # Collapsing same-fingerprint jobs onto one optimization is
                # the cache's equivalence semantics; without a cache every
                # job is optimized individually.
                key = (
                    _dedupe_key(fp, job.deadline_ms)
                    if self.cache is not None
                    else f"job:{job.job_id}"
                )
                if key in representatives:
                    followers.setdefault(key, []).append(job)
                else:
                    representatives[key] = job

        # Each job counts exactly once: a cache hit, a batch-local hit
        # (follower of a representative), or a miss (actually optimized).
        if self.cache is not None:
            misses = len(representatives)
        todo = list(representatives.values())

        # Quarantined fingerprints (plans that repeatedly broke the pool)
        # fail up front instead of being handed another worker to kill.
        pending: List[BatchJob] = []
        for job in todo:
            fp = fingerprints[job.job_id]
            if self.quarantine.is_quarantined(fp):
                outcomes[job.job_id] = JobOutcome(
                    job.job_id,
                    ok=False,
                    error=(
                        f"quarantined: implicated in "
                        f"{self.quarantine.deaths(fp)} worker deaths"
                    ),
                    quarantined=True,
                    tags=job.tags,
                )
                if tracer.enabled:
                    tracer.count("serve.jobs_quarantined")
            else:
                pending.append(job)

        mode = "serial"
        attempt = 0
        while pending:
            # Jobs already implicated in a worker death are dispatched in
            # isolation (an ephemeral single-use pool) so a repeat offender
            # only breaks itself — never the warm pool: innocents that
            # merely shared a broken pool get a clean round on the warm
            # workers, succeed, and clear their tally instead of riding
            # every crash to the quarantine threshold.
            suspect_ids = {
                job.job_id
                for job in pending
                if self.quarantine.deaths(fingerprints[job.job_id]) > 0
            }
            clean = [job for job in pending if job.job_id not in suspect_ids]
            groups: List[Tuple[List[BatchJob], bool]] = (
                [(clean, False)] if clean else []
            ) + [([job], True) for job in pending if job.job_id in suspect_ids]
            dispatched: Dict[str, JobOutcome] = {}
            for group, isolate in groups:
                got, used_mode = self._dispatch(
                    group, prepared, fingerprints, tracer, isolate=isolate
                )
                dispatched.update(got)
                if used_mode == "pool":
                    mode = "pool"
            for job in pending:
                outcome = dispatched[job.job_id]
                outcome.attempts = attempt + 1
                outcomes[job.job_id] = outcome
                fp = fingerprints[job.job_id]
                if outcome.worker_died:
                    self.quarantine.record_worker_death(fp)
                    if tracer.enabled:
                        tracer.count("serve.worker_deaths")
                elif outcome.ok:
                    self.quarantine.record_success(fp)
            if self.retry is None or attempt >= self.retry.max_retries:
                break
            retryable: List[BatchJob] = []
            for job in pending:
                outcome = outcomes[job.job_id]
                if outcome.ok or outcome.timed_out:
                    continue  # a timeout already consumed the job's budget
                if self.quarantine.is_quarantined(fingerprints[job.job_id]):
                    outcome.quarantined = True
                    outcome.error = f"{outcome.error}; quarantined"
                    if tracer.enabled:
                        tracer.count("serve.jobs_quarantined")
                    continue
                retryable.append(job)
            if not retryable:
                break
            attempt += 1
            if tracer.enabled:
                tracer.count("serve.jobs_retried", len(retryable))
            delay = self.retry.delay_s(attempt)
            if delay > 0:
                time.sleep(delay)
            pending = retryable

        # Fill followers from their representative (a batch-local hit) and
        # publish fresh results to the cache.
        for key, job in representatives.items():
            rep = outcomes[job.job_id]
            if (
                rep.ok
                and rep.result is not None
                # A degraded answer is the best *this deadline* allowed —
                # caching it would serve a 10 ms compromise to every
                # future deadline-free request of the same fingerprint.
                and not rep.result.stats.degraded
            ):
                if self.cache is not None:
                    self.cache.put(fingerprints[job.job_id], rep.result)
                if (
                    self.template_cache is not None
                    and job.job_id in template_fps
                ):
                    # Fold the fresh optimum back into its template's
                    # candidate set (Kepler's feedback loop).
                    self.template_cache.observe(
                        template_fps[job.job_id],
                        prepared[job.job_id],
                        rep.result,
                    )
            for follower in followers.get(key, []):
                if rep.ok and rep.result is not None:
                    hits += 1
                    outcomes[follower.job_id] = JobOutcome(
                        follower.job_id,
                        ok=True,
                        result=copy_result(rep.result),
                        cached=True,
                        tags=follower.tags,
                    )
                else:
                    outcomes[follower.job_id] = JobOutcome(
                        follower.job_id,
                        ok=False,
                        error=rep.error,
                        tags=follower.tags,
                    )
        ordered = [outcomes[job.job_id] for job in jobs]
        return ordered, hits, misses, template_hits, template_misses, mode

    # ------------------------------------------------------------------
    def _dispatch(
        self,
        todo: List[BatchJob],
        prepared: Dict[str, LogicalPlan],
        fingerprints: Dict[str, str],
        tracer,
        isolate: bool = False,
    ):
        """One dispatch round: the pool when configured, serial otherwise."""
        if self.workers > 1 and todo:
            pool = (
                _WarmWorkerPool(self._factory, self.memoize_singletons, 1)
                if isolate
                else self._pool
            )
            try:
                pool_outcomes = self._run_pool(
                    todo, prepared, fingerprints, tracer, pool
                )
            finally:
                if isolate:
                    pool.discard()
            if pool_outcomes is not None:
                return pool_outcomes, "pool"
        return self._run_serial(todo, prepared, tracer), "serial"

    # ------------------------------------------------------------------
    def _run_serial(
        self, todo: List[BatchJob], prepared: Dict[str, LogicalPlan], tracer
    ) -> Dict[str, JobOutcome]:
        optimizer = self._serial_optimizer()
        if self.memoize_singletons:
            _enable_singleton_memo(optimizer, {})
        outcomes: Dict[str, JobOutcome] = {}
        for job in todo:
            t0 = time.perf_counter()
            try:
                with tracer.span("serve.job", job=job.job_id, mode="serial"):
                    result = _optimize_with_deadline(
                        optimizer, prepared[job.job_id], job.deadline_ms
                    )
                outcomes[job.job_id] = JobOutcome(
                    job.job_id,
                    ok=True,
                    result=result,
                    duration_s=time.perf_counter() - t0,
                    tags=job.tags,
                )
            except Exception as exc:  # one job's failure is one error row
                outcomes[job.job_id] = JobOutcome(
                    job.job_id,
                    ok=False,
                    error=f"{type(exc).__name__}: {exc}",
                    duration_s=time.perf_counter() - t0,
                    tags=job.tags,
                )
                if tracer.enabled:
                    tracer.count("serve.jobs_errored")
        return outcomes

    # ------------------------------------------------------------------
    def _run_pool(
        self,
        todo: List[BatchJob],
        prepared: Dict[str, LogicalPlan],
        fingerprints: Dict[str, str],
        tracer,
        pool: _WarmWorkerPool,
    ) -> Optional[Dict[str, JobOutcome]]:
        """Run jobs on the (warm) process pool; ``None`` means "fall back
        to serial".

        The fallback triggers only for infrastructure failures (an
        unpicklable factory, a pool that cannot start). A *broken* pool
        mid-run fails the unfinished jobs' outcomes with
        ``worker_died=True`` and discards the executor so the next
        dispatch starts a fresh one — the service's retry/quarantine
        layer decides whether those jobs get it.
        """
        from repro.rheem.serialization import plan_to_json

        # The per-job budget starts *here*, before the executor may need
        # to spawn: on a cold pool, worker initialization (the optimizer
        # factory, which may load a model from disk) counts against the
        # timeout, so a hanging construction cannot stall the batch
        # unboundedly. On a warm pool there is nothing to wait for.
        submitted = time.perf_counter()
        was_warm = pool.warm
        executor = pool.acquire(tracer)
        if executor is None:
            return None
        deadline = None if self.timeout_s is None else submitted + self.timeout_s
        outcomes: Dict[str, JobOutcome] = {}
        future_jobs: Dict[Future, BatchJob] = {}
        own_fps: List[str] = []
        coalesced: List[Tuple[BatchJob, Future]] = []
        # In-flight dedupe shares the cache's equivalence semantics, so it
        # is only active when a cache is configured.
        dedupe = self.cache is not None
        broken: Optional[str] = None
        try:
            with tracer.span(
                "serve.pool",
                workers=pool.max_workers,
                n_jobs=len(todo),
                warm=was_warm,
            ):
                for job in todo:
                    payload = plan_to_json(prepared[job.job_id], indent=0)
                    key = _dedupe_key(fingerprints[job.job_id], job.deadline_ms)
                    try:
                        if dedupe:
                            with self._inflight_lock:
                                sibling = self._inflight.get(key)
                                if sibling is not None:
                                    coalesced.append((job, sibling))
                                    continue
                                future = executor.submit(
                                    _worker_run, job.job_id, payload, job.deadline_ms
                                )
                                self._inflight[key] = future
                                own_fps.append(key)
                        else:
                            future = executor.submit(
                                _worker_run, job.job_id, payload, job.deadline_ms
                            )
                    except Exception as exc:  # pool broke during submission
                        broken = f"{type(exc).__name__}: {exc}"
                        outcomes[job.job_id] = JobOutcome(
                            job.job_id,
                            ok=False,
                            error=broken,
                            worker_died=True,
                            tags=job.tags,
                        )
                        continue
                    future_jobs[future] = job

                # Stream results in completion order: a slow job never
                # blocks the accounting of a fast one, and every job's
                # deadline is submission + timeout.
                try:
                    timeout = None
                    if deadline is not None:
                        timeout = max(0.05, deadline - time.perf_counter())
                    for future in as_completed(list(future_jobs), timeout=timeout):
                        job = future_jobs[future]
                        done_at = time.perf_counter()
                        try:
                            doc = future.result()
                            outcomes[job.job_id] = self._outcome_from_doc(
                                job, doc, done_at - submitted
                            )
                        except BrokenProcessPool as exc:
                            broken = f"BrokenProcessPool: {exc}"
                            outcomes[job.job_id] = JobOutcome(
                                job.job_id,
                                ok=False,
                                error=broken,
                                worker_died=True,
                                tags=job.tags,
                            )
                        except Exception as exc:
                            outcomes[job.job_id] = JobOutcome(
                                job.job_id,
                                ok=False,
                                error=f"{type(exc).__name__}: {exc}",
                                duration_s=done_at - submitted,
                                tags=job.tags,
                            )
                            if tracer.enabled:
                                tracer.count("serve.jobs_errored")
                except FutureTimeout:
                    for future, job in future_jobs.items():
                        if job.job_id in outcomes:
                            continue
                        future.cancel()
                        outcomes[job.job_id] = JobOutcome(
                            job.job_id,
                            ok=False,
                            error=f"timeout after {self.timeout_s}s",
                            duration_s=time.perf_counter() - submitted,
                            timed_out=True,
                            tags=job.tags,
                        )
                        if tracer.enabled:
                            tracer.count("serve.jobs_timed_out")

                # Jobs that coalesced onto a sibling thread's in-flight
                # computation of the same fingerprint: await its result
                # under the same deadline (the sibling owns the future).
                for job, future in coalesced:
                    try:
                        remaining = None
                        if deadline is not None:
                            remaining = max(0.05, deadline - time.perf_counter())
                        doc = future.result(timeout=remaining)
                        outcome = self._outcome_from_doc(
                            job, doc, time.perf_counter() - submitted
                        )
                        outcome.coalesced = True
                        outcomes[job.job_id] = outcome
                        if tracer.enabled:
                            tracer.count("serve.jobs_coalesced")
                    except FutureTimeout:
                        outcomes[job.job_id] = JobOutcome(
                            job.job_id,
                            ok=False,
                            error=f"timeout after {self.timeout_s}s",
                            duration_s=time.perf_counter() - submitted,
                            timed_out=True,
                            tags=job.tags,
                        )
                        if tracer.enabled:
                            tracer.count("serve.jobs_timed_out")
                    except BrokenProcessPool as exc:
                        outcomes[job.job_id] = JobOutcome(
                            job.job_id,
                            ok=False,
                            error=f"BrokenProcessPool: {exc}",
                            worker_died=True,
                            tags=job.tags,
                        )
                    except Exception as exc:
                        outcomes[job.job_id] = JobOutcome(
                            job.job_id,
                            ok=False,
                            error=f"{type(exc).__name__}: {exc}",
                            duration_s=time.perf_counter() - submitted,
                            tags=job.tags,
                        )
        finally:
            if own_fps:
                with self._inflight_lock:
                    for fp in own_fps:
                        self._inflight.pop(fp, None)
            if broken is not None:
                # A dead worker poisons the whole executor: discard it so
                # the next dispatch round starts a fresh warm pool.
                pool.discard()
        return outcomes

    def _outcome_from_doc(
        self, job: BatchJob, doc: Dict[str, Any], duration_s: float
    ) -> JobOutcome:
        from repro.rheem.serialization import execution_plan_from_dict

        result = OptimizationResult(
            execution_plan=execution_plan_from_dict(
                doc["execution_plan"], self.registry
            ),
            predicted_runtime=float(doc["predicted_runtime"]),
            stats=RunStats(**doc["stats"]),
            optimizer=doc.get("optimizer", ""),
        )
        return JobOutcome(
            job.job_id,
            ok=True,
            result=result,
            duration_s=duration_s,
            tags=job.tags,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchOptimizationService(workers={self.workers}, "
            f"timeout_s={self.timeout_s}, cache={self.cache!r}, "
            f"warm={self._pool.warm})"
        )
