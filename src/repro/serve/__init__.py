"""Batch optimization service: parallel multi-query driving + plan cache.

The paper optimizes one query at a time; a served deployment faces
*streams* of queries, many of them repeated or parametric. This
subpackage provides the batch layer on top of any
:class:`repro.api.Optimizer`:

* :mod:`repro.serve.fingerprint` — structural plan fingerprints
  (topology + operator kinds + quantized cardinality buckets), the
  cache key;
* :mod:`repro.serve.cache` — the fingerprint-keyed LRU
  :class:`PlanCache` with hit/miss counters and JSON persistence;
* :mod:`repro.serve.batch` — :class:`BatchOptimizationService`:
  warm-worker process-pool parallelism (CPU-affinity-aware sizing,
  workers initialized once and reused across batches), per-job timeouts,
  graceful serial fallback, within-batch and in-flight deduplication,
  singleton-enumeration memoization, and tail-latency percentiles;
* :mod:`repro.serve.testing` — picklable deterministic doubles for the
  differential and concurrency suites.

CLI: ``repro optimize-batch --jobs jobs.jsonl --model model.pkl``.
See ``docs/serving.md`` for the batch API, fingerprint scheme and cache
semantics.
"""

from repro.serve.batch import (
    BatchJob,
    BatchOptimizationService,
    BatchReport,
    JobOutcome,
    available_cpus,
    resilient_robopt_factory,
    robopt_factory,
)
from repro.serve.cache import CacheStats, PlanCache, copy_result
from repro.serve.fingerprint import cardinality_bucket, plan_fingerprint

__all__ = [
    "BatchJob",
    "BatchOptimizationService",
    "BatchReport",
    "JobOutcome",
    "available_cpus",
    "robopt_factory",
    "resilient_robopt_factory",
    "PlanCache",
    "CacheStats",
    "copy_result",
    "plan_fingerprint",
    "cardinality_bucket",
]
