"""Batch optimization service: parallel multi-query driving + plan cache.

The paper optimizes one query at a time; a served deployment faces
*streams* of queries, many of them repeated or parametric. This
subpackage provides the batch layer on top of any
:class:`repro.api.Optimizer`:

* :mod:`repro.serve.fingerprint` — structural plan fingerprints
  (topology + operator kinds + quantized cardinality buckets), the
  cache key;
* :mod:`repro.serve.cache` — the fingerprint-keyed LRU
  :class:`PlanCache` with hit/miss counters and JSON persistence;
* :mod:`repro.serve.template` — the second cache tier:
  :class:`TemplateCache`, keyed by cardinality-*stripped* template
  fingerprints, holding per-template candidate sets with a learned
  (random-forest) selector and a re-costing guardrail, so parametric
  workloads whose cardinalities never repeat still reuse plans safely;
* :mod:`repro.serve.batch` — :class:`BatchOptimizationService`:
  warm-worker process-pool parallelism (CPU-affinity-aware sizing,
  workers initialized once and reused across batches), per-job timeouts,
  graceful serial fallback, within-batch and in-flight deduplication,
  singleton-enumeration memoization, and tail-latency percentiles;
* :mod:`repro.serve.protocol` — the versioned wire schema
  (``OptimizeRequest``/``OptimizeResponse``/``ErrorResponse`` frames,
  strict parsing with unknown-field tolerance) shared by the daemon,
  the client and the CLI's JSONL job rows;
* :mod:`repro.serve.daemon` — :class:`OptimizationDaemon`: the
  persistent asyncio front door (unix socket + TCP) with bounded-queue
  admission control, cross-client fingerprint coalescing, per-request
  deadline budgets and graceful drain;
* :mod:`repro.serve.client` — :class:`ServeClient`, the blocking
  client with pipelined bursts;
* :mod:`repro.serve.testing` — picklable deterministic doubles for the
  differential and concurrency suites.

CLI: ``repro optimize-batch --jobs jobs.jsonl --model model.pkl``
(add ``--server unix:/run/repro.sock`` to go through a daemon started
with ``repro serve``). See ``docs/serving.md`` for the batch API,
fingerprint scheme, cache semantics and the daemon wire protocol.
"""

from repro.serve.batch import (
    BatchJob,
    BatchOptimizationService,
    BatchReport,
    JobOutcome,
    available_cpus,
    resilient_robopt_factory,
    robopt_factory,
)
from repro.serve.cache import CacheStats, PlanCache, copy_result
from repro.serve.client import ServeClient, parse_address
from repro.serve.daemon import DaemonConfig, OptimizationDaemon
from repro.serve.feedback import FeedbackController
from repro.serve.fingerprint import cardinality_bucket, plan_fingerprint
from repro.serve.template import (
    TemplateCache,
    TemplateCacheStats,
    TemplateCandidate,
    template_features,
    template_fingerprint,
)
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ErrorResponse,
    OptimizeRequest,
    OptimizeResponse,
    ProtocolError,
    ShutdownRequest,
    ShutdownResponse,
    StatsRequest,
    StatsResponse,
    job_row_to_request,
    load_jobs_jsonl,
    parse_request,
    parse_response,
    request_to_job,
)

__all__ = [
    "BatchJob",
    "BatchOptimizationService",
    "BatchReport",
    "JobOutcome",
    "available_cpus",
    "robopt_factory",
    "resilient_robopt_factory",
    "PlanCache",
    "CacheStats",
    "copy_result",
    "plan_fingerprint",
    "cardinality_bucket",
    "TemplateCache",
    "TemplateCacheStats",
    "TemplateCandidate",
    "template_fingerprint",
    "template_features",
    # wire protocol
    "PROTOCOL_VERSION",
    "ProtocolError",
    "OptimizeRequest",
    "OptimizeResponse",
    "ErrorResponse",
    "StatsRequest",
    "StatsResponse",
    "ShutdownRequest",
    "ShutdownResponse",
    "parse_request",
    "parse_response",
    "job_row_to_request",
    "request_to_job",
    "load_jobs_jsonl",
    # daemon + client
    "OptimizationDaemon",
    "DaemonConfig",
    "ServeClient",
    "parse_address",
    # feedback / drift
    "FeedbackController",
]
