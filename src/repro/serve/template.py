"""Template-keyed parametric plan cache with learned candidate selection.

The exact fingerprint cache (:mod:`repro.serve.cache`) reuses a decision
only when log-bucketed cardinalities collide — a parametric workload
whose cardinalities are *drawn from a distribution* misses almost every
time. Kepler (Doshi et al., VLDB 2023) shows the right shape: key the
cache by plan **template** (structure with cardinalities stripped),
remember the small set of plans that were optimal anywhere in the
observed parameter range, and learn which candidate to pick for unseen
parameters.

Serving a cached candidate is only safe because candidates are
**re-costed with the live runtime model at the request's actual
cardinalities** before anything is returned:

* the pick must be within a configurable ``guardrail`` factor of the
  cheapest re-costed candidate, and
* when a template has accumulated more than one candidate, a small
  random-forest selector (:class:`repro.ml.forest.RandomForestRegressor`
  trained online on the template's own observation log, features =
  log-cardinalities) must agree *confidently* — per-tree variance below
  a threshold — on which candidate to serve.

Anything else — an untrained selector, high per-tree variance, a
guardrail breach, a NaN anywhere — returns ``None`` and the caller falls
back to full enumeration, whose result is folded back into the template's
candidate set via :meth:`TemplateCache.observe`. The failure mode of this
cache is therefore *wasted work*, never a wrong plan.

Counters (``serve.template.*``) mirror into the ambient tracer like the
exact cache's, and JSON persistence carries the same versioned
invalidation: a corrupt file loads empty (never raises), a foreign
fingerprint version drops entries, only an explicit unsupported format
version is an error.
"""

from __future__ import annotations

import hashlib
import json
import math
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.api import OptimizationResult, RunStats
from repro.exceptions import ReproError
from repro.ml.forest import RandomForestRegressor
from repro.obs import current_tracer
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.platforms import PlatformRegistry
from repro.serve.cache import copy_result

__all__ = [
    "TEMPLATE_FINGERPRINT_VERSION",
    "TemplateCache",
    "TemplateCacheStats",
    "TemplateCandidate",
    "template_features",
    "template_fingerprint",
]

#: Bump when the canonical template document below changes shape.
TEMPLATE_FINGERPRINT_VERSION = 1

#: Version of the JSON persistence format of :class:`TemplateCache`.
TEMPLATE_CACHE_FORMAT_VERSION = 1


def _template_document(
    plan: LogicalPlan, registry: Optional[PlatformRegistry]
) -> dict:
    """The JSON-stable document the template fingerprint hashes.

    Mirrors :func:`repro.serve.fingerprint._canonical_document` with the
    cardinality information *stripped*: dataset profiles reduce to the
    set of source operator ids (which operators are fed, not how much),
    and a fixed output cardinality reduces to its presence — the value
    itself is a parameter, but whether an operator pins its output
    changes the shape of the cost landscape.
    """
    operators = []
    for op_id, op in sorted(plan.operators.items()):
        operators.append(
            [
                op_id,
                op.kind_name,
                int(op.udf_complexity),
                None if op.selectivity is None else round(float(op.selectivity), 9),
                op.fixed_output_cardinality is not None,
            ]
        )
    doc = {
        "v": TEMPLATE_FINGERPRINT_VERSION,
        "operators": operators,
        "edges": sorted(plan.edges),
        "loops": sorted(
            (sorted(spec.body), spec.iterations) for spec in plan.loops
        ),
        "sources": sorted(plan.datasets),
    }
    if registry is not None:
        doc["platforms"] = list(registry.names)
    return doc


def template_fingerprint(
    plan: LogicalPlan, registry: Optional[PlatformRegistry] = None
) -> str:
    """The template key of a logical plan: structure minus cardinalities.

    Two instantiations of the same parametric query — identical operator
    kinds/parameters/selectivities, edges, loops and platform alphabet,
    *any* input cardinalities — share a template fingerprint. Everything
    structural still enters the hash exactly, so this is strictly coarser
    than :func:`repro.serve.fingerprint.plan_fingerprint` and never
    conflates structurally different plans it would distinguish.
    """
    doc = _template_document(plan, registry)
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def template_features(plan: LogicalPlan) -> np.ndarray:
    """Selector features: ``log1p`` of each source's cardinality/tuple size.

    Sources are visited in sorted-operator-id order so the vector layout
    is stable across instantiations of one template. Non-finite or
    negative profile values map to ``-1.0`` (a value no valid profile
    produces) instead of poisoning the selector with NaN.
    """
    features: List[float] = []
    for _op_id, profile in sorted(plan.datasets.items()):
        for value in (profile.cardinality, profile.tuple_size):
            value = float(value)
            if math.isfinite(value) and value >= 0.0:
                features.append(math.log1p(value))
            else:
                features.append(-1.0)
    return np.asarray(features, dtype=np.float64)


def _cardinality_vector(plan: LogicalPlan) -> List[float]:
    return [
        float(profile.cardinality)
        for _op_id, profile in sorted(plan.datasets.items())
    ]


@dataclass
class TemplateCandidate:
    """One plan that was optimal somewhere in a template's parameter range.

    ``assignment`` (operator id → platform name) is the decision itself;
    ``cardinalities`` records the source-cardinality vector of the most
    recent instantiation this assignment won at, and ``predicted_runtime``
    the model cost it won with — both are provenance for inspection, not
    inputs to serving (serving always re-costs at the live request's
    cardinalities).
    """

    assignment: Dict[int, str]
    cardinalities: List[float]
    predicted_runtime: float
    optimizer: str = ""

    @property
    def key(self) -> Tuple[Tuple[int, str], ...]:
        """Identity of the decision: the sorted assignment items."""
        return tuple(sorted(self.assignment.items()))


@dataclass
class TemplateCacheStats:
    """Monotonic counters of one template cache's lifetime.

    ``misses`` counts *every* lookup that did not serve from the cache,
    including the refused ones — so ``hit_rate`` is the fraction of
    lookups the template tier actually answered. The refusal reasons are
    broken out separately (``low_confidence``, ``guardrail_rejects``,
    ``selector_errors``, ``recost_errors``).
    """

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    low_confidence: int = 0
    guardrail_rejects: int = 0
    selector_errors: int = 0
    recost_errors: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before the first lookup)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "low_confidence": self.low_confidence,
            "guardrail_rejects": self.guardrail_rejects,
            "selector_errors": self.selector_errors,
            "recost_errors": self.recost_errors,
            "hit_rate": self.hit_rate,
        }


class _TemplateEntry:
    """One template's candidate set, observation log and selector."""

    __slots__ = ("candidates", "observations", "selector", "dirty")

    def __init__(self):
        self.candidates: List[TemplateCandidate] = []
        self.observations: List[Tuple[np.ndarray, int]] = []
        self.selector: Optional[RandomForestRegressor] = None
        self.dirty: bool = True

    def index_of(self, key) -> Optional[int]:
        for index, candidate in enumerate(self.candidates):
            if candidate.key == key:
                return index
        return None


#: ``recost(plan, assignment) -> (model cost, execution plan)`` — supplied
#: by the caller because re-costing needs the live model + feature schema.
Recoster = Callable[[LogicalPlan, Dict[int, str]], Tuple[float, object]]


class TemplateCache:
    """Per-template candidate sets with learned, guardrailed selection.

    Parameters
    ----------
    max_templates:
        LRU bound on distinct templates (hits and observations refresh
        recency).
    max_candidates:
        Candidates kept per template; inserting beyond it evicts the
        oldest candidate and drops its observations.
    max_observations:
        Per-template observation log bound (oldest dropped first).
    guardrail:
        A pick is served only if its re-costed runtime is within this
        factor of the cheapest re-costed candidate. ``1.0`` means "serve
        only the argmin"; the default ``1.2`` tolerates 20% regret.
    min_observations:
        Observations a template needs before its selector is trained;
        multi-candidate templates below this always fall back.
    max_selector_variance:
        Per-tree prediction variance above which the selector is deemed
        unsure and the lookup falls back to enumeration.
    selector_seed:
        Seed for the default selector forests.
    copy_results:
        Return defensive copies from :meth:`get` (the default).
    selector_factory:
        Override the selector constructor (chaos tests inject failing or
        NaN-emitting selectors here); must return an object with
        ``fit(X, y)`` and a ``trees_`` list whose members ``predict``.
    """

    def __init__(
        self,
        max_templates: int = 256,
        max_candidates: int = 8,
        max_observations: int = 256,
        guardrail: float = 1.2,
        min_observations: int = 4,
        max_selector_variance: float = 0.25,
        selector_seed: int = 0,
        copy_results: bool = True,
        selector_factory: Optional[Callable[[], object]] = None,
    ):
        if max_templates < 1:
            raise ReproError(
                f"template cache needs max_templates >= 1, got {max_templates}"
            )
        if max_candidates < 1:
            raise ReproError(
                f"template cache needs max_candidates >= 1, got {max_candidates}"
            )
        if guardrail < 1.0:
            raise ReproError(f"guardrail must be >= 1.0, got {guardrail}")
        self.max_templates = max_templates
        self.max_candidates = max_candidates
        self.max_observations = max_observations
        self.guardrail = guardrail
        self.min_observations = min_observations
        self.max_selector_variance = max_selector_variance
        self.selector_seed = selector_seed
        self.copy_results = copy_results
        self.selector_factory = selector_factory
        self.stats = TemplateCacheStats()
        self._entries: "OrderedDict[str, _TemplateEntry]" = OrderedDict()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def fingerprints(self):
        """The cached template fingerprints, least recently used first."""
        return list(self._entries)

    def candidates(self, fingerprint: str) -> List[TemplateCandidate]:
        """The candidate set of one template (empty list if absent)."""
        entry = self._entries.get(fingerprint)
        return list(entry.candidates) if entry is not None else []

    def clear(self) -> None:
        self._entries.clear()

    # ------------------------------------------------------------------
    def _make_selector(self):
        if self.selector_factory is not None:
            return self.selector_factory()
        # Small forest: per-template observation logs are tiny and the
        # selector is refit on every log append.
        return RandomForestRegressor(
            n_estimators=12,
            max_depth=6,
            min_samples_split=2,
            min_samples_leaf=1,
            seed=self.selector_seed,
        )

    def _fitted_selector(self, entry: _TemplateEntry):
        """The template's selector, (re)fitted lazily. May raise."""
        if not entry.dirty:
            return entry.selector
        entry.selector = None
        entry.dirty = False
        if len(entry.observations) < self.min_observations:
            return None
        X = np.asarray([obs[0] for obs in entry.observations], dtype=np.float64)
        y = np.asarray([obs[1] for obs in entry.observations], dtype=np.float64)
        selector = self._make_selector()
        selector.fit(X, y)
        entry.selector = selector
        return selector

    def _select(self, entry: _TemplateEntry, plan: LogicalPlan, tracer):
        """The selector's pick among >= 2 candidates, or ``None``.

        ``None`` means "not confident": untrained selector, per-tree
        variance above the threshold, or a selector failure (exception or
        non-finite output) — the caller falls back to enumeration either
        way, so a broken selector can never pick a plan.
        """
        try:
            selector = self._fitted_selector(entry)
        except Exception:
            entry.dirty = True  # retry the fit after more observations
            self.stats.selector_errors += 1
            if tracer.enabled:
                tracer.count("serve.template.selector_errors")
            return None
        if selector is None:
            self.stats.low_confidence += 1
            if tracer.enabled:
                tracer.count("serve.template.low_confidence")
            return None
        features = template_features(plan)
        try:
            if hasattr(selector, "predict_dist"):
                # The shared uncertainty convention: ensemble (mean, std)
                # from one joint traversal. std**2 equals the per-tree
                # population variance the manual loop below computes, so
                # the confidence gate is numerically unchanged.
                dist_mean, dist_std = selector.predict_dist(features[None, :])
                mean = float(np.asarray(dist_mean).reshape(-1)[0])
                variance = float(np.asarray(dist_std).reshape(-1)[0]) ** 2
            else:
                # Injected selectors only promise ``trees_`` (see
                # ``selector_factory``): derive the moments tree by tree.
                per_tree = np.asarray(
                    [
                        float(np.asarray(tree.predict(features[None, :])).reshape(-1)[0])
                        for tree in selector.trees_
                    ],
                    dtype=np.float64,
                )
                if per_tree.size == 0:
                    raise ValueError("selector produced no predictions")
                mean = float(per_tree.mean())
                variance = float(per_tree.var())
            if not (np.isfinite(mean) and np.isfinite(variance)):
                raise ValueError("selector produced non-finite predictions")
        except Exception:
            self.stats.selector_errors += 1
            if tracer.enabled:
                tracer.count("serve.template.selector_errors")
            return None
        if variance > self.max_selector_variance:
            self.stats.low_confidence += 1
            if tracer.enabled:
                tracer.count("serve.template.low_confidence")
            return None
        pick = int(round(mean))
        return min(max(pick, 0), len(entry.candidates) - 1)

    def _miss(self, tracer) -> None:
        self.stats.misses += 1
        if tracer.enabled:
            tracer.count("serve.template.misses")
        return None

    def get(
        self,
        fingerprint: str,
        plan: LogicalPlan,
        recost: Recoster,
    ) -> Optional[OptimizationResult]:
        """A guardrailed cached answer for ``plan``, or ``None``.

        Every stored candidate is re-costed via ``recost`` at the plan's
        actual cardinalities; the selector's pick (trivial for a single
        candidate) is served only when it lands within ``guardrail`` of
        the cheapest candidate. Any refusal — no entry, re-cost failure,
        unconfident or broken selector, guardrail breach — returns
        ``None`` and counts as a miss; the caller must then enumerate and
        :meth:`observe` the fresh result.
        """
        tracer = current_tracer()
        entry = self._entries.get(fingerprint)
        if entry is None or not entry.candidates:
            return self._miss(tracer)
        self._entries.move_to_end(fingerprint)

        costs: List[float] = []
        xplans: List[object] = []
        for candidate in entry.candidates:
            try:
                cost, xplan = recost(plan, dict(candidate.assignment))
                cost = float(cost)
                if not math.isfinite(cost):
                    raise ValueError(f"non-finite re-cost {cost!r}")
            except Exception:
                self.stats.recost_errors += 1
                if tracer.enabled:
                    tracer.count("serve.template.recost_errors")
                return self._miss(tracer)
            costs.append(cost)
            xplans.append(xplan)

        best_index = int(np.argmin(costs))
        if len(entry.candidates) == 1:
            pick = 0  # one plausible plan: trivially confident
        else:
            pick = self._select(entry, plan, tracer)
            if pick is None:
                return self._miss(tracer)
        if costs[pick] > self.guardrail * costs[best_index]:
            self.stats.guardrail_rejects += 1
            if tracer.enabled:
                tracer.count("serve.template.guardrail_rejects")
            return self._miss(tracer)

        self.stats.hits += 1
        if tracer.enabled:
            tracer.count("serve.template.hits")
        result = OptimizationResult(
            execution_plan=xplans[pick],
            predicted_runtime=costs[pick],
            stats=RunStats(),
            optimizer=entry.candidates[pick].optimizer,
        )
        return copy_result(result) if self.copy_results else result

    # ------------------------------------------------------------------
    def observe(
        self,
        fingerprint: str,
        plan: LogicalPlan,
        result: OptimizationResult,
    ) -> None:
        """Fold a fresh enumeration result back into the template's set.

        A result whose assignment matches an existing candidate refreshes
        that candidate's provenance; a new assignment appends a candidate
        (evicting the oldest beyond ``max_candidates``). Either way the
        (features → winning index) pair is appended to the observation
        log and the selector is marked for refit.
        """
        tracer = current_tracer()
        entry = self._entries.get(fingerprint)
        if entry is None:
            entry = _TemplateEntry()
            self._entries[fingerprint] = entry
        self._entries.move_to_end(fingerprint)

        assignment = dict(result.execution_plan.assignment)
        candidate = TemplateCandidate(
            assignment=assignment,
            cardinalities=_cardinality_vector(plan),
            predicted_runtime=float(result.predicted_runtime),
            optimizer=result.optimizer,
        )
        index = entry.index_of(candidate.key)
        if index is None:
            entry.candidates.append(candidate)
            index = len(entry.candidates) - 1
            if len(entry.candidates) > self.max_candidates:
                # Evict the oldest candidate; observations pointing at it
                # are dropped and the survivors' indices shift down.
                entry.candidates.pop(0)
                entry.observations = [
                    (feats, idx - 1)
                    for feats, idx in entry.observations
                    if idx > 0
                ]
                index -= 1
        else:
            entry.candidates[index] = candidate
        entry.observations.append((template_features(plan), index))
        if len(entry.observations) > self.max_observations:
            del entry.observations[: len(entry.observations) - self.max_observations]
        entry.dirty = True

        self.stats.puts += 1
        if tracer.enabled:
            tracer.count("serve.template.puts")
        while len(self._entries) > self.max_templates:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            if tracer.enabled:
                tracer.count("serve.template.evictions")

    # ------------------------------------------------------------------
    # JSON persistence
    # ------------------------------------------------------------------
    def save(self, path) -> Path:
        """Write the cache as one JSON document (LRU order preserved).

        Candidates persist as assignments (operator id → platform name)
        plus provenance — no serialized plans, since serving always
        re-instantiates against the *live* request's plan. Fitted
        selectors are not persisted; they refit lazily from the
        persisted observation logs.
        """
        doc = {
            "version": TEMPLATE_CACHE_FORMAT_VERSION,
            "fingerprint_version": TEMPLATE_FINGERPRINT_VERSION,
            "max_templates": self.max_templates,
            "guardrail": self.guardrail,
            "templates": [
                {
                    "fingerprint": fingerprint,
                    "candidates": [
                        {
                            "assignment": {
                                str(op_id): name
                                for op_id, name in candidate.assignment.items()
                            },
                            "cardinalities": candidate.cardinalities,
                            "predicted_runtime": candidate.predicted_runtime,
                            "optimizer": candidate.optimizer,
                        }
                        for candidate in entry.candidates
                    ],
                    "observations": [
                        [list(map(float, feats)), int(idx)]
                        for feats, idx in entry.observations
                    ],
                }
                for fingerprint, entry in self._entries.items()
            ],
        }
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(doc, indent=2) + "\n")
        tmp.replace(path)
        return path

    @classmethod
    def load(
        cls,
        path,
        registry: Optional[PlatformRegistry] = None,
        max_templates: Optional[int] = None,
        guardrail: Optional[float] = None,
        copy_results: bool = True,
        **kwargs,
    ) -> "TemplateCache":
        """Rebuild a cache from :meth:`save` output.

        Same failure contract as :meth:`PlanCache.load`: a corrupt file
        (unreadable/truncated/not-an-object/missing version) yields an
        **empty** cache and bumps ``serve.template.load_corrupt``; a
        foreign fingerprint version drops all templates silently; only an
        explicit unsupported format version raises. Individually
        malformed templates are skipped while the rest load. When a
        ``registry`` is given, candidates naming platforms outside it are
        dropped (they could never be instantiated).
        """
        tracer = current_tracer()

        def fresh() -> "TemplateCache":
            return cls(
                max_templates=max_templates if max_templates is not None else 256,
                guardrail=guardrail if guardrail is not None else 1.2,
                copy_results=copy_results,
                **kwargs,
            )

        def corrupt(detail: str) -> "TemplateCache":
            if tracer.enabled:
                tracer.count("serve.template.load_corrupt")
                tracer.event(
                    "serve.template.corrupt", path=str(path), detail=detail
                )
            return fresh()

        try:
            doc = json.loads(Path(path).read_text())
        except (OSError, ValueError) as exc:
            return corrupt(f"{type(exc).__name__}: {exc}")
        if not isinstance(doc, dict):
            return corrupt(f"expected a JSON object, got {type(doc).__name__}")
        if "version" in doc and doc["version"] != TEMPLATE_CACHE_FORMAT_VERSION:
            raise ReproError(
                f"unsupported template cache format version "
                f"{doc.get('version')!r} (expected {TEMPLATE_CACHE_FORMAT_VERSION})"
            )
        if "version" not in doc:
            return corrupt("missing version field")
        try:
            declared_max = int(doc.get("max_templates", 256))
        except (TypeError, ValueError):
            declared_max = 256
        try:
            declared_guardrail = float(doc.get("guardrail", 1.2))
        except (TypeError, ValueError):
            declared_guardrail = 1.2
        cache = cls(
            max_templates=max_templates if max_templates is not None else declared_max,
            guardrail=guardrail if guardrail is not None else declared_guardrail,
            copy_results=copy_results,
            **kwargs,
        )
        if doc.get("fingerprint_version") != TEMPLATE_FINGERPRINT_VERSION:
            return cache
        templates = doc.get("templates", [])
        if not isinstance(templates, list):
            return corrupt(f"templates is {type(templates).__name__}, not a list")
        known = set(registry.names) if registry is not None else None
        for item in templates:
            try:
                fingerprint = item["fingerprint"]
                if not isinstance(fingerprint, str):
                    raise TypeError("fingerprint is not a string")
                entry = _TemplateEntry()
                for raw in item.get("candidates", []):
                    assignment = {
                        int(op_id): str(name)
                        for op_id, name in raw["assignment"].items()
                    }
                    if known is not None and not set(assignment.values()) <= known:
                        continue
                    entry.candidates.append(
                        TemplateCandidate(
                            assignment=assignment,
                            cardinalities=[
                                float(c) for c in raw.get("cardinalities", [])
                            ],
                            predicted_runtime=float(raw["predicted_runtime"]),
                            optimizer=str(raw.get("optimizer", "")),
                        )
                    )
                if not entry.candidates:
                    continue
                n = len(entry.candidates)
                for feats, idx in item.get("observations", []):
                    idx = int(idx)
                    if 0 <= idx < n:
                        entry.observations.append(
                            (
                                np.asarray(feats, dtype=np.float64),
                                idx,
                            )
                        )
            except Exception as exc:
                if tracer.enabled:
                    tracer.count("serve.template.load_corrupt")
                    tracer.event(
                        "serve.template.corrupt",
                        path=str(path),
                        detail=f"template: {type(exc).__name__}: {exc}",
                    )
                continue
            # Bypass observe(): loading must not inflate put/eviction stats.
            cache._entries[fingerprint] = entry
            while len(cache._entries) > cache.max_templates:
                cache._entries.popitem(last=False)
        return cache

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TemplateCache(templates={len(self)}/{self.max_templates}, "
            f"hits={self.stats.hits}, misses={self.stats.misses}, "
            f"guardrail={self.guardrail})"
        )
