"""Plain-text table rendering for the benchmark harness.

Every benchmark prints the rows/series the corresponding paper table or
figure reports, in a fixed-width format that survives pytest capture and
``tee`` into the experiment logs.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence], note: str = ""
) -> str:
    """Render a fixed-width table with a title and optional footnote."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["", f"=== {title} ==="]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    if note:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def print_table(
    title: str, headers: Sequence[str], rows: Iterable[Sequence], note: str = ""
) -> None:
    print(format_table(title, headers, rows, note))


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "-"
        if cell == float("inf"):
            return "inf"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)
