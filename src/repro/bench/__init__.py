"""Shared infrastructure for the benchmark harness.

:mod:`repro.bench.context` builds (and caches on disk) the expensive
shared artifacts — the TDGEN dataset, the trained runtime models and the
calibrated cost models — so the per-table/per-figure benchmark files stay
cheap and independent. :mod:`repro.bench.tables` renders paper-vs-measured
tables to stdout.
"""

from repro.bench.context import BenchContext, get_context
from repro.bench.tables import format_table, print_table

__all__ = ["BenchContext", "get_context", "format_table", "print_table"]
