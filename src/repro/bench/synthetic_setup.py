"""Quick setups for the latency/scalability benchmarks (Figs. 1, 9, 10).

Those experiments measure *optimizer latency*, not plan quality: every
system explores the same (pruned) search space, so the model only needs
realistic prediction cost, not accuracy. ``latency_setup(k)`` therefore
trains a small random forest on TDGEN-shaped random data in a couple of
seconds and pairs it with a hand-filled cost model — enough to drive
Robopt, Rheem-ML, RHEEMix and the exhaustive baseline over synthetic
registries of 2–5 platforms.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np

from repro.core.features import FeatureSchema
from repro.cost.cost_model import CostModel, CostParameters
from repro.ml.forest import RandomForestRegressor
from repro.ml.model import RuntimeModel, TrainingDataset
from repro.rheem.operators import KINDS
from repro.rheem.conversion import CONVERSION_KINDS
from repro.rheem.platforms import PlatformRegistry, synthetic_registry


def _quick_model(schema: FeatureSchema, seed: int = 0) -> RuntimeModel:
    """A small forest over random plan-vector-shaped data."""
    rng = np.random.default_rng(seed)
    n = 600
    X = rng.uniform(0, 1e6, size=(n, schema.n_features))
    y = np.abs(X[:, : 8].sum(axis=1) / 1e5 + rng.normal(0, 1, n))
    dataset = TrainingDataset(X, y)
    return RuntimeModel.train(
        dataset, "random_forest", seed=seed, n_estimators=24, max_depth=10
    )


def _quick_cost_model(registry: PlatformRegistry) -> CostModel:
    """Hand-filled linear coefficients for every (kind, platform)."""
    params = CostParameters()
    for i, name in enumerate(registry.names):
        params.startup[name] = 0.5 * i
        for kind in KINDS:
            params.operator_coeffs[(kind, name)] = (
                0.01 * (i + 1),
                1e-8 * (i + 1),
                1e-9,
            )
    for kind in CONVERSION_KINDS:
        params.conversion_coeffs[kind] = (0.3, 1e-7)
    return CostModel(registry, params)


@lru_cache(maxsize=8)
def latency_setup(k: int, seed: int = 0) -> Tuple:
    """(registry, schema, runtime_model, cost_model) for ``k`` platforms."""
    registry = synthetic_registry(k)
    schema = FeatureSchema(registry)
    model = _quick_model(schema, seed=seed)
    cost_model = _quick_cost_model(registry)
    return registry, schema, model, cost_model
