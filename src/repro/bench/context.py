"""Cached heavyweight artifacts shared by all benchmarks.

Building Robopt's runtime model takes TDGEN generation plus a forest fit
("a couple of days" on the paper's cluster, a couple of minutes here);
calibrating the cost models adds more simulated executions. The context
builds each artifact once per (platform set, configuration) and caches it
under ``.artifacts/`` next to the repository root, so the benchmark suite
and the examples stay fast across invocations.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.core.features import FeatureSchema
from repro.core.optimizer import Robopt
from repro.cost.calibration import calibrate_simply_tuned, calibrate_well_tuned
from repro.cost.cost_model import CostModel
from repro.cost.optimizer import RheemixOptimizer
from repro.baselines.rheem_ml import RheemMLOptimizer
from repro.ml.model import RuntimeModel
from repro.rheem.execution_plan import ExecutionPlan, single_platform_plan
from repro.rheem.platforms import PlatformRegistry, default_registry
from repro.simulator.executor import SimulatedExecutor
from repro.tdgen.generator import TrainingDataGenerator

#: Training configuration of the cached benchmark model.
TRAIN_POINTS = 30_000
TRAIN_SEED = 42
FOREST_PARAMS = dict(
    n_estimators=48,
    max_depth=22,
    max_features=64,
    min_samples_leaf=1,
    min_samples_split=2,
    max_samples=0.6,
)

ALL_SHAPES = (
    "pipeline",
    "juncture",
    "replicate",
    "loop",
    "ml_loop",
    "sgd_loop",
    "graph_loop",
)


def artifacts_dir() -> Path:
    """Cache directory (override with the REPRO_ARTIFACTS env var)."""
    root = os.environ.get("REPRO_ARTIFACTS")
    if root:
        return Path(root)
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "pyproject.toml").exists():
            return parent / ".artifacts"
    return Path.cwd() / ".artifacts"


@dataclass
class BenchContext:
    """Everything a benchmark needs for one platform set."""

    registry: PlatformRegistry
    schema: FeatureSchema
    executor: SimulatedExecutor
    model: RuntimeModel
    well_tuned: CostModel
    simply_tuned: CostModel

    # ------------------------------------------------------------------
    def robopt(self, **kwargs) -> Robopt:
        return Robopt(self.registry, self.model, schema=self.schema, **kwargs)

    def rheemix(self, tuned: str = "well", **kwargs) -> RheemixOptimizer:
        cost_model = self.well_tuned if tuned == "well" else self.simply_tuned
        return RheemixOptimizer(self.registry, cost_model, **kwargs)

    def rheem_ml(self, **kwargs) -> RheemMLOptimizer:
        return RheemMLOptimizer(
            self.registry, self.model, schema=self.schema, **kwargs
        )

    def measure(self, xplan: ExecutionPlan) -> float:
        """Ground-truth runtime; ``inf`` for OOM, timeout cap for aborts."""
        report = self.executor.execute(xplan)
        return report.runtime_s

    def single_platform_runtimes(self, plan) -> Dict[str, float]:
        """Per-platform runtimes (the bars of Fig. 11); ``inf`` = failed."""
        out = {}
        for platform in self.registry:
            try:
                xplan = single_platform_plan(plan, platform.name, self.registry)
            except Exception:
                continue  # platform cannot host the whole plan
            out[platform.name] = self.measure(xplan)
        return out


_CACHE: Dict[Tuple[str, ...], BenchContext] = {}


def get_context(
    platforms: Tuple[str, ...] = ("java", "spark", "flink"),
    train_points: int = TRAIN_POINTS,
    seed: int = TRAIN_SEED,
) -> BenchContext:
    """The shared context for one platform set (built once, cached twice).

    In-process memoization plus on-disk pickles under ``.artifacts/``;
    delete that directory to force a rebuild.
    """
    key = tuple(platforms) + (train_points, seed)
    if key in _CACHE:
        return _CACHE[key]

    registry = default_registry(platforms)
    schema = FeatureSchema(registry)
    executor = SimulatedExecutor.default(registry)

    tag = "-".join(platforms) + f"_n{train_points}_s{seed}"
    root = artifacts_dir()
    model_path = root / f"model_{tag}.pkl"
    cost_path = root / f"costmodels_{tag}.pkl"

    shapes = ALL_SHAPES
    if any(p.category == "database" for p in registry):
        shapes = ALL_SHAPES + ("relational",)

    if model_path.exists():
        model = RuntimeModel.load(model_path)
    else:
        tdgen = TrainingDataGenerator(registry, executor, seed=seed, schema=schema)
        dataset = tdgen.generate(
            train_points, shapes=shapes, assignments_per_plan=10
        )
        model = RuntimeModel.train(
            dataset, "random_forest", seed=seed, **FOREST_PARAMS
        )
        model.save(model_path)

    if cost_path.exists():
        with cost_path.open("rb") as f:
            blob = pickle.load(f)
        well, simply = blob["well"], blob["simply"]
        well.registry = registry
        simply.registry = registry
    else:
        well = calibrate_well_tuned(
            registry, executor, seed=seed, n_jobs=3000, shapes=shapes
        )
        simply = calibrate_simply_tuned(registry, executor)
        cost_path.parent.mkdir(parents=True, exist_ok=True)
        with cost_path.open("wb") as f:
            pickle.dump({"well": well, "simply": simply}, f)

    ctx = BenchContext(
        registry=registry,
        schema=schema,
        executor=executor,
        model=model,
        well_tuned=well,
        simply_tuned=simply,
    )
    _CACHE[key] = ctx
    return ctx
