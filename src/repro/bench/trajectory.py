"""The perf trajectory: dated ``BENCH_*.json`` measurement records.

Benchmark numbers are only useful over time — a single Fig. 9 table says
"Robopt is fast today", a trajectory of them says whether a refactor made
it slower. Every benchmark run therefore appends its measurements to
``BENCH_<yyyymmdd>.json`` at the repository root (one JSON array per
day), via the ``pytest_runtest_logreport`` hook in
``benchmarks/conftest.py``. Benchmarks can also call :func:`record`
directly with richer metrics (latencies, subplan counts, trace counters).

Override the destination with the ``REPRO_BENCH_FILE`` environment
variable; set it to an empty string to disable recording entirely.
"""

from __future__ import annotations

import json
import math
import os
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = ["trajectory_path", "record", "load", "series", "under_pytest"]


def under_pytest() -> bool:
    """True when this process is running inside a pytest test.

    The CLI uses this to suppress trajectory recording for test-driven
    invocations (unless explicitly re-enabled with ``--bench-record``):
    tests exercising ``main()`` in-process would otherwise append rows
    with pytest-tmp job files to the persistent bench series, drowning
    real datapoints. Benchmarks that *want* to record (the throughput
    suite) call :func:`record` directly and are unaffected.
    """
    return "PYTEST_CURRENT_TEST" in os.environ


def _repo_root() -> Path:
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "pyproject.toml").exists():
            return parent
    return Path.cwd()


def trajectory_path(when: Optional[datetime] = None) -> Optional[Path]:
    """Today's trajectory file (``None`` when recording is disabled)."""
    env = os.environ.get("REPRO_BENCH_FILE")
    if env is not None:
        return Path(env) if env else None
    when = when if when is not None else datetime.now(timezone.utc)
    return _repo_root() / f"BENCH_{when:%Y%m%d}.json"


def _clean(value: Any) -> Any:
    """JSON-safe metric value (non-finite floats become ``None``)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return value
    value = float(value)
    return value if math.isfinite(value) else None


def record(
    name: str,
    metrics: Dict[str, Any],
    meta: Optional[Dict[str, Any]] = None,
    path=None,
) -> Optional[Path]:
    """Append one measurement entry; returns the file written (or None)."""
    path = Path(path) if path is not None else trajectory_path()
    if path is None:
        return None
    entries = load(path)
    entry: Dict[str, Any] = {
        "name": name,
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "metrics": {k: _clean(v) for k, v in metrics.items()},
    }
    if meta:
        entry["meta"] = meta
    entries.append(entry)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(entries, indent=2) + "\n")
    tmp.replace(path)
    return path


def load(path=None) -> List[Dict[str, Any]]:
    """The entries of one trajectory file ([] if absent or disabled)."""
    path = Path(path) if path is not None else trajectory_path()
    if path is None or not path.exists():
        return []
    return json.loads(path.read_text())


def series(
    name: str,
    metric: Optional[str] = None,
    root: Optional[Path] = None,
) -> List[Dict[str, Any]]:
    """All entries named ``name`` across every ``BENCH_*.json``, in time order.

    Scans the repository root (or ``root``) for trajectory files, sorts
    their entries by timestamp, and returns those whose ``name`` matches
    exactly. With ``metric`` set, only entries that carry that metric are
    returned — the regression gate uses this to compare the last two
    recorded batch throughputs.
    """
    root = Path(root) if root is not None else _repo_root()
    entries: List[Dict[str, Any]] = []
    for path in sorted(root.glob("BENCH_*.json")):
        try:
            entries.extend(load(path))
        except (OSError, json.JSONDecodeError):
            continue
    picked = [
        e
        for e in entries
        if e.get("name") == name
        and (metric is None or metric in e.get("metrics", {}))
    ]
    picked.sort(key=lambda e: e.get("timestamp", ""))
    return picked
