"""JSON (de)serialization of plans, datasets and execution plans.

Lets downstream users persist logical plans, ship them between processes,
and store chosen execution plans next to their measurements — the
plumbing an adopting system needs around the optimizer. The format is a
plain, versioned JSON document; round-trips are exact for everything the
optimizer consumes (kinds, selectivities, UDF complexities, datasets,
edges, loops, assignments).
"""

from __future__ import annotations

import json
from typing import Dict, Union

from repro.exceptions import PlanError
from repro.rheem.datasets import DatasetProfile
from repro.rheem.execution_plan import ExecutionPlan
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.operators import UdfComplexity, operator
from repro.rheem.platforms import PlatformRegistry

FORMAT_VERSION = 1


def dataset_to_dict(profile: DatasetProfile) -> Dict:
    return {
        "name": profile.name,
        "cardinality": profile.cardinality,
        "tuple_size": profile.tuple_size,
    }


def dataset_from_dict(blob: Dict) -> DatasetProfile:
    try:
        return DatasetProfile(
            name=blob["name"],
            cardinality=float(blob["cardinality"]),
            tuple_size=float(blob["tuple_size"]),
        )
    except KeyError as exc:
        raise PlanError(f"dataset document misses field {exc.args[0]!r}") from None


def plan_to_dict(plan: LogicalPlan) -> Dict:
    """A JSON-ready document describing a logical plan."""
    return {
        "version": FORMAT_VERSION,
        "name": plan.name,
        "operators": [
            {
                "id": op_id,
                "kind": op.kind_name,
                "label": op.label,
                "udf_complexity": int(op.udf_complexity),
                "selectivity": op.selectivity,
                "fixed_output_cardinality": op.fixed_output_cardinality,
                "params": op.params,
            }
            for op_id, op in sorted(plan.operators.items())
        ],
        "edges": sorted(plan.edges),
        "loops": [
            {"body": sorted(spec.body), "iterations": spec.iterations}
            for spec in plan.loops
        ],
        "datasets": {
            str(op_id): dataset_to_dict(profile)
            for op_id, profile in plan.datasets.items()
        },
    }


def plan_from_dict(blob: Dict) -> LogicalPlan:
    """Rebuild a logical plan from its document (inverse of plan_to_dict)."""
    version = blob.get("version")
    if version != FORMAT_VERSION:
        raise PlanError(
            f"unsupported plan document version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    plan = LogicalPlan(blob.get("name", "plan"))
    datasets = {
        int(op_id): dataset_from_dict(doc)
        for op_id, doc in blob.get("datasets", {}).items()
    }
    for doc in blob["operators"]:
        op = operator(
            doc["kind"],
            doc.get("label", ""),
            udf_complexity=UdfComplexity(doc["udf_complexity"]),
            selectivity=doc.get("selectivity"),
            fixed_output_cardinality=doc.get("fixed_output_cardinality"),
            **doc.get("params", {}),
        )
        added = plan.add(op, dataset=datasets.get(doc["id"]))
        if added.id != doc["id"]:
            raise PlanError(
                f"operator ids must be dense and ordered; got {doc['id']} "
                f"at position {added.id}"
            )
    for u, v in blob.get("edges", []):
        plan.connect(int(u), int(v))
    for loop in blob.get("loops", []):
        plan.add_loop([int(i) for i in loop["body"]], iterations=int(loop["iterations"]))
    return plan


def plan_to_json(plan: LogicalPlan, indent: int = 2) -> str:
    return json.dumps(plan_to_dict(plan), indent=indent)


def plan_from_json(text: Union[str, bytes]) -> LogicalPlan:
    return plan_from_dict(json.loads(text))


def execution_plan_to_dict(xplan: ExecutionPlan) -> Dict:
    """Document for an execution plan: the logical plan + the assignment."""
    return {
        "version": FORMAT_VERSION,
        "plan": plan_to_dict(xplan.plan),
        "assignment": {str(k): v for k, v in sorted(xplan.assignment.items())},
        "platforms": list(xplan.registry.names),
        "conversions": [
            {
                "kind": conv.kind,
                "platform": conv.platform,
                "edge": list(conv.edge),
                "cardinality": conv.cardinality,
                "iterations": conv.iterations,
            }
            for conv in xplan.conversions()
        ],
    }


def execution_plan_from_dict(
    blob: Dict, registry: PlatformRegistry
) -> ExecutionPlan:
    """Rebuild an execution plan against a registry.

    The registry must contain (at least) the platforms the document
    references; the recorded conversions are recomputed, not trusted.
    """
    missing = set(blob.get("platforms", [])) - set(registry.names)
    if missing:
        raise PlanError(
            f"registry misses platforms referenced by the document: {sorted(missing)}"
        )
    plan = plan_from_dict(blob["plan"])
    assignment = {int(k): v for k, v in blob["assignment"].items()}
    return ExecutionPlan(plan, assignment, registry)


def execution_plan_to_json(xplan: ExecutionPlan, indent: int = 2) -> str:
    return json.dumps(execution_plan_to_dict(xplan), indent=indent)


def execution_plan_from_json(
    text: Union[str, bytes], registry: PlatformRegistry
) -> ExecutionPlan:
    return execution_plan_from_dict(json.loads(text), registry)
