"""Channels and the channel conversion graph.

Rheem moves data between execution operators through typed *channels*
(a Spark RDD, a Java collection, a Postgres relation, ...) and derives
data-movement plans by searching a *channel conversion graph* whose edges
are conversion operators (Kruse et al., "Optimizing Cross-Platform Data
Movement", ICDE 2019 — reference [22] of the paper).

This module reproduces that mechanism: each platform declares the channel
it produces and the channels it can consume, conversion operators are
edges between channels, and :func:`channel_conversion_path` finds the
cheapest conversion sequence with a shortest-path search. The simpler
:func:`repro.rheem.conversion.conversion_path` rule table is provably
equivalent for the default platforms (tested), and remains the fast path
used by the enumeration; the graph is the extensible, principled source
of truth when adding platforms.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.exceptions import PlatformError
from repro.rheem.platforms import (
    CATEGORY_DATABASE,
    CATEGORY_DISTRIBUTED,
    CATEGORY_LOCAL,
    Platform,
)


@dataclass(frozen=True)
class Channel:
    """One typed data container a platform produces or consumes.

    ``reusable`` mirrors Rheem's distinction between channels that can be
    consumed multiple times (a cached collection) and ones that cannot
    (a streamed result set).
    """

    name: str
    platform: str
    reusable: bool = True

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: Canonical channel name per platform category.
_CATEGORY_CHANNEL = {
    CATEGORY_LOCAL: "collection",
    CATEGORY_DISTRIBUTED: "dataset",
    CATEGORY_DATABASE: "relation",
}


def platform_channel(platform: Platform) -> Channel:
    """The channel an execution operator on this platform produces/consumes."""
    kind = _CATEGORY_CHANNEL[platform.category]
    reusable = platform.category != CATEGORY_DATABASE
    return Channel(f"{platform.name}.{kind}", platform.name, reusable)


@dataclass(frozen=True)
class ConversionEdge:
    """One conversion operator in the channel conversion graph."""

    kind: str
    platform: str  # the platform executing the conversion
    cost: float  # abstract edge weight for the shortest-path search


def build_conversion_graph(platforms: Tuple[Platform, ...]) -> nx.DiGraph:
    """The channel conversion graph for a set of platforms.

    Nodes are channels (plus one shared ``driver.collection`` hub — the
    optimizer's local runtime, always available). Edges carry the
    conversion operator that rewrites one channel into another:

    * ``collect``: distributed dataset → driver collection;
    * ``distribute``: driver collection → distributed dataset;
    * ``broadcast``: driver collection → distributed dataset (loop bodies);
    * ``db_export``: relation → driver collection;
    * ``db_import``: driver collection → relation;
    * local platforms share plain collections with the driver at no cost.
    """
    graph = nx.DiGraph()
    driver = Channel("driver.collection", "driver")
    graph.add_node(driver)
    for platform in platforms:
        channel = platform_channel(platform)
        graph.add_node(channel)
        if platform.category == CATEGORY_LOCAL:
            # A local engine's collections *are* driver collections.
            graph.add_edge(channel, driver, conversion=None, weight=0.0)
            graph.add_edge(driver, channel, conversion=None, weight=0.0)
        elif platform.category == CATEGORY_DISTRIBUTED:
            graph.add_edge(
                channel,
                driver,
                conversion=ConversionEdge("collect", platform.name, 1.0),
                weight=1.0,
            )
            graph.add_edge(
                driver,
                channel,
                conversion=ConversionEdge("distribute", platform.name, 1.0),
                weight=1.0,
            )
        elif platform.category == CATEGORY_DATABASE:
            graph.add_edge(
                channel,
                driver,
                conversion=ConversionEdge("db_export", platform.name, 1.0),
                weight=1.0,
            )
            graph.add_edge(
                driver,
                channel,
                conversion=ConversionEdge("db_import", platform.name, 1.5),
                weight=1.5,
            )
    return graph


def channel_conversion_path(
    src: Platform,
    dst: Platform,
    in_loop: bool = False,
    graph: Optional[nx.DiGraph] = None,
) -> List[ConversionEdge]:
    """Cheapest conversion-operator sequence moving data ``src`` → ``dst``.

    Searches the channel conversion graph with Dijkstra, then applies the
    loop specialization: a ``distribute`` that ships driver data into a
    distributed engine inside a loop body becomes a ``broadcast``.
    """
    if src.name == dst.name:
        return []
    if graph is None:
        graph = build_conversion_graph((src, dst))
    a, b = platform_channel(src), platform_channel(dst)
    try:
        path = nx.shortest_path(graph, a, b, weight="weight")
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        raise PlatformError(
            f"no channel conversion path from {src.name} to {dst.name}"
        ) from None
    steps: List[ConversionEdge] = []
    for u, v in zip(path, path[1:]):
        conversion = graph.edges[u, v]["conversion"]
        if conversion is None:
            continue
        # Loop specialization: data already materialized on the driver (a
        # local source) enters a distributed loop body via broadcast; data
        # collected from another engine mid-path stays a plain distribute
        # (it is re-materialized every iteration anyway).
        if (
            in_loop
            and conversion.kind == "distribute"
            and src.category == CATEGORY_LOCAL
        ):
            conversion = ConversionEdge("broadcast", conversion.platform, 0.5)
        steps.append(conversion)
    return steps


@lru_cache(maxsize=64)
def _cached_graph(platforms: Tuple[Platform, ...]) -> nx.DiGraph:
    return build_conversion_graph(platforms)


def conversion_path_via_graph(
    src: Platform, dst: Platform, in_loop: bool = False
) -> Tuple[Tuple[str, str], ...]:
    """Graph-derived conversion path as ``(kind, platform)`` tuples.

    Equivalent to :func:`repro.rheem.conversion.conversion_path` for the
    default platform categories (covered by tests); exposed so new
    platform categories only need channel declarations, not rule-table
    entries.
    """
    steps = channel_conversion_path(
        src, dst, in_loop=in_loop, graph=_cached_graph((src, dst))
    )
    return tuple((s.kind, s.platform) for s in steps)
