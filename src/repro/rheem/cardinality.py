"""Cardinality propagation through logical plans.

The plan vector (§IV-A) encodes per-operator input and output cardinalities,
and the paper's §II experiment *injects real cardinalities* into the cost
models. In this reproduction cardinalities are derived deterministically
from dataset profiles and operator selectivities, and the same values are
used by every optimizer and by the simulator — i.e. we always operate in
the paper's "real cardinalities" regime, isolating the cost-model /
ML-model comparison from estimation errors.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.exceptions import PlanError


def propagate_cardinalities(plan) -> Dict[int, Tuple[float, float]]:
    """Compute ``(input, output)`` cardinalities for every operator.

    * Sources: input = dataset cardinality; output = selectivity * input.
    * Unary/binary operators: input = sum of parents' outputs.
    * ``Join``: output = selectivity * max(inputs) — a simple foreign-key
      style estimate that keeps magnitudes realistic without a full
      histogram machinery (cardinality *estimation* is orthogonal to this
      paper).
    * ``Cartesian``: output = selectivity * product of inputs.
    * Operators with ``fixed_output_cardinality`` use it verbatim.
    """
    cards: Dict[int, Tuple[float, float]] = {}
    for op_id in plan.topological_order():
        op = plan.operators[op_id]
        if op.kind.is_source:
            dataset = plan.datasets.get(op_id)
            if dataset is None:
                raise PlanError(f"source {op!r} has no dataset profile")
            input_card = float(dataset.cardinality)
        else:
            parent_outs = [cards[p][1] for p in plan.parents(op_id)]
            input_card = float(sum(parent_outs))

        if op.fixed_output_cardinality is not None:
            output_card = float(op.fixed_output_cardinality)
        elif op.kind.is_sink:
            output_card = 0.0
        elif op.kind_name == "Join":
            parent_outs = [cards[p][1] for p in plan.parents(op_id)]
            output_card = float(op.selectivity) * max(parent_outs)
        elif op.kind_name == "Cartesian":
            parent_outs = [cards[p][1] for p in plan.parents(op_id)]
            prod = 1.0
            for c in parent_outs:
                prod *= c
            output_card = float(op.selectivity) * prod
        else:
            output_card = op.output_cardinality(input_card)
        cards[op_id] = (input_card, output_card)
    return cards


def edge_cardinality(plan, src_id: int, dst_id: int) -> float:
    """Cardinality flowing over one edge (the producer's output).

    When a producer feeds several consumers (replicate topology), the full
    output flows over each outgoing edge.
    """
    cards = plan.cardinalities()
    if src_id not in plan.operators or dst_id not in plan.operators:
        raise PlanError(f"edge ({src_id}, {dst_id}) references unknown operators")
    return cards[src_id][1]
