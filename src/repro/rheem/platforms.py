"""Data processing platforms and the platform registry.

A :class:`Platform` describes one underlying engine (Spark, Flink, a
standalone Java executor, Postgres, GraphX). A :class:`PlatformRegistry`
is an ordered collection of platforms; its order defines the platform
indices used throughout the vectorized enumeration (plan vectors store
per-platform counts in registry order).

The paper's experiments use two registries:

* :func:`default_registry` — the five real platforms of §VII-A
  (Java, Spark, Flink, Postgres, GraphX);
* :func:`synthetic_registry` — ``k`` interchangeable platforms used by the
  scalability experiments of §VII-B, where every operator is assumed to be
  available on 2–5 platforms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.exceptions import PlatformError

#: Platform categories drive data-movement (conversion) paths.
CATEGORY_LOCAL = "local"  # single-node, in-memory (Java collections)
CATEGORY_DISTRIBUTED = "distributed"  # cluster engines (Spark, Flink, GraphX)
CATEGORY_DATABASE = "database"  # relational stores (Postgres)

_VALID_CATEGORIES = (CATEGORY_LOCAL, CATEGORY_DISTRIBUTED, CATEGORY_DATABASE)


@dataclass(frozen=True)
class Platform:
    """One data processing platform.

    Parameters
    ----------
    name:
        Unique platform name, e.g. ``"spark"``.
    category:
        One of ``"local"``, ``"distributed"``, ``"database"``; determines
        which conversion operators are needed to move data to/from it.
    supported_kinds:
        Names of the logical operator kinds this platform can execute, or
        ``None`` if it supports the full catalog.
    """

    name: str
    category: str = CATEGORY_DISTRIBUTED
    supported_kinds: Optional[frozenset] = field(default=None)
    unsupported_kinds: frozenset = field(default_factory=frozenset)

    def __post_init__(self):
        if self.category not in _VALID_CATEGORIES:
            raise PlatformError(
                f"unknown platform category {self.category!r}; "
                f"expected one of {_VALID_CATEGORIES}"
            )

    def supports(self, kind_name: str) -> bool:
        """Return whether this platform can execute the given operator kind."""
        if kind_name in self.unsupported_kinds:
            return False
        return self.supported_kinds is None or kind_name in self.supported_kinds

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


class PlatformRegistry:
    """An ordered, indexable collection of platforms.

    The registry order is load-bearing: plan vectors store one cell per
    platform per operator kind, in registry order, and the assignments
    matrices of the enumeration store platform *indices*.
    """

    def __init__(self, platforms: Iterable[Platform]):
        self._platforms = tuple(platforms)
        if not self._platforms:
            raise PlatformError("a registry needs at least one platform")
        names = [p.name for p in self._platforms]
        if len(set(names)) != len(names):
            raise PlatformError(f"duplicate platform names in registry: {names}")
        self._index = {p.name: i for i, p in enumerate(self._platforms)}

    @property
    def platforms(self) -> tuple:
        return self._platforms

    @property
    def names(self) -> tuple:
        return tuple(p.name for p in self._platforms)

    def __len__(self) -> int:
        return len(self._platforms)

    def __iter__(self) -> Iterator[Platform]:
        return iter(self._platforms)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __getitem__(self, name_or_index):
        """Look a platform up by name (str) or registry index (int)."""
        if isinstance(name_or_index, str):
            try:
                return self._platforms[self._index[name_or_index]]
            except KeyError:
                raise PlatformError(f"unknown platform {name_or_index!r}") from None
        return self._platforms[name_or_index]

    def index(self, name: str) -> int:
        """Return the registry index of a platform name."""
        try:
            return self._index[name]
        except KeyError:
            raise PlatformError(f"unknown platform {name!r}") from None

    def supporting(self, kind_name: str) -> tuple:
        """All platforms that can execute the given operator kind."""
        return tuple(p for p in self._platforms if p.supports(kind_name))

    def restricted(self, names: Iterable[str]) -> "PlatformRegistry":
        """A new registry containing only the named platforms (in this order)."""
        names = list(names)
        return PlatformRegistry([self[n] for n in names])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PlatformRegistry({', '.join(self.names)})"


#: Operator kinds Postgres can execute (relational algebra only — no UDF
#: dataflow operators, no iteration, no text sources).
_POSTGRES_KINDS = frozenset(
    {
        "TableSource",
        "Filter",
        "Project",
        "Join",
        "ReduceBy",
        "GroupBy",
        "Sort",
        "Distinct",
        "Count",
        "Union",
    }
)

#: GraphX executes graph analytics only.
_GRAPHX_KINDS = frozenset({"PageRank"})


def default_registry(names: Optional[Iterable[str]] = None) -> PlatformRegistry:
    """The five platforms of the paper's evaluation (§VII-A).

    Parameters
    ----------
    names:
        Optional subset (and order) of platform names to include. Defaults
        to ``("java", "spark", "flink")`` — the trio used by most of the
        paper's experiments; pass e.g. ``("java", "spark", "flink",
        "postgres")`` for the relational scenarios.
    """
    # Only the database platform can scan a database-resident table; every
    # other engine receives such data through db_export conversions.
    _no_table = frozenset({"TableSource"})
    catalog = {
        "java": Platform("java", CATEGORY_LOCAL, unsupported_kinds=_no_table),
        "spark": Platform("spark", CATEGORY_DISTRIBUTED, unsupported_kinds=_no_table),
        "flink": Platform("flink", CATEGORY_DISTRIBUTED, unsupported_kinds=_no_table),
        "postgres": Platform("postgres", CATEGORY_DATABASE, _POSTGRES_KINDS),
        "graphx": Platform("graphx", CATEGORY_DISTRIBUTED, _GRAPHX_KINDS),
    }
    if names is None:
        names = ("java", "spark", "flink")
    try:
        return PlatformRegistry([catalog[n] for n in names])
    except KeyError as exc:
        raise PlatformError(f"unknown platform {exc.args[0]!r}") from None


def synthetic_registry(k: int) -> PlatformRegistry:
    """``k`` interchangeable platforms for the scalability experiments.

    Every synthetic platform supports the whole operator catalog. The first
    platform is local (a Java stand-in) and the rest are distributed, so
    conversion operators still come into play.
    """
    if k < 1:
        raise PlatformError(f"need at least one platform, got k={k}")
    platforms = [Platform("platform0", CATEGORY_LOCAL)]
    platforms.extend(
        Platform(f"platform{i}", CATEGORY_DISTRIBUTED) for i in range(1, k)
    )
    return PlatformRegistry(platforms)
