"""Execution plans: logical plans with a platform per operator.

An :class:`ExecutionPlan` pins every logical operator to a platform and
derives the conversion operators implied by cross-platform edges
(§III-A). It is the object the optimizer ultimately outputs
(``unvectorize``) and the object the simulated executor runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.exceptions import PlanError, PlatformError
from repro.rheem.cardinality import edge_cardinality
from repro.rheem.conversion import ConversionStep, conversion_path
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.platforms import PlatformRegistry


@dataclass(frozen=True)
class ConversionInstance:
    """One conversion operator materialized on a specific plan edge."""

    step: ConversionStep
    edge: Tuple[int, int]
    cardinality: float
    in_loop: bool
    iterations: int

    @property
    def kind(self) -> str:
        return self.step.kind

    @property
    def platform(self) -> str:
        return self.step.platform


class ExecutionPlan:
    """A fully platform-instantiated plan.

    Parameters
    ----------
    plan:
        The logical plan.
    assignment:
        Mapping from operator id to platform name; must cover every
        operator of ``plan``, and every platform must support the operator
        kind it receives.
    registry:
        The platform registry the assignment refers to.
    """

    def __init__(
        self,
        plan: LogicalPlan,
        assignment: Mapping[int, str],
        registry: PlatformRegistry,
    ):
        missing = set(plan.operators) - set(assignment)
        if missing:
            raise PlanError(f"assignment misses operators {sorted(missing)}")
        extra = set(assignment) - set(plan.operators)
        if extra:
            raise PlanError(f"assignment references unknown operators {sorted(extra)}")
        for op_id, platform_name in assignment.items():
            platform = registry[platform_name]
            kind = plan.operators[op_id].kind_name
            if not platform.supports(kind):
                raise PlatformError(
                    f"platform {platform_name!r} does not support operator "
                    f"kind {kind!r} (operator {op_id})"
                )
        self.plan = plan
        self.assignment: Dict[int, str] = dict(assignment)
        self.registry = registry
        self._conversions: List[ConversionInstance] = None

    # ------------------------------------------------------------------
    def platform_of(self, op_id: int) -> str:
        return self.assignment[op_id]

    def platforms_used(self) -> Tuple[str, ...]:
        """Distinct platforms, in registry order."""
        used = set(self.assignment.values())
        return tuple(name for name in self.registry.names if name in used)

    def conversions(self) -> List[ConversionInstance]:
        """Conversion operators implied by cross-platform edges (cached)."""
        if self._conversions is None:
            self._conversions = self._derive_conversions()
        return self._conversions

    def _derive_conversions(self) -> List[ConversionInstance]:
        out: List[ConversionInstance] = []
        for u, v in self.plan.edges:
            src = self.registry[self.assignment[u]]
            dst = self.registry[self.assignment[v]]
            if src.name == dst.name:
                continue
            in_loop = self.plan.in_loop(u) and self.plan.in_loop(v)
            # Iterations: a conversion on an edge inside a loop repeats.
            iterations = min(
                self.plan.loop_iterations(u), self.plan.loop_iterations(v)
            )
            card = edge_cardinality(self.plan, u, v)
            for step in conversion_path(src, dst, in_loop=in_loop):
                out.append(
                    ConversionInstance(
                        step=step,
                        edge=(u, v),
                        cardinality=card,
                        in_loop=in_loop,
                        iterations=iterations,
                    )
                )
        return out

    def num_platform_switches(self) -> int:
        """Number of edges whose endpoints run on different platforms.

        This is the quantity bounded by TDGEN's β-switch pruning (§VI-A).
        """
        return sum(
            1
            for u, v in self.plan.edges
            if self.assignment[u] != self.assignment[v]
        )

    def signature(self) -> Tuple:
        """Hashable identity: plan structure + platform assignment."""
        return (
            self.plan.signature(),
            tuple(sorted(self.assignment.items())),
        )

    def describe(self) -> str:
        """A human-readable, one-line-per-operator rendering."""
        lines = [f"ExecutionPlan for {self.plan.name!r}:"]
        for op_id in self.plan.topological_order():
            op = self.plan.operators[op_id]
            lines.append(f"  o{op_id} {op.label} @ {self.assignment[op_id]}")
        for conv in self.conversions():
            u, v = conv.edge
            lines.append(f"  [{conv.platform}.{conv.kind}] on edge o{u} -> o{v}")
        return "\n".join(lines)

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ExecutionPlan) and self.signature() == other.signature()
        )

    def __hash__(self) -> int:
        return hash(self.signature())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ExecutionPlan({self.plan.name!r}, "
            f"platforms={'+'.join(self.platforms_used())})"
        )


def single_platform_plan(
    plan: LogicalPlan, platform_name: str, registry: PlatformRegistry
) -> ExecutionPlan:
    """The execution plan that runs everything on one platform."""
    assignment = {op_id: platform_name for op_id in plan.operators}
    return ExecutionPlan(plan, assignment, registry)


def feasible_platforms(
    plan: LogicalPlan, registry: PlatformRegistry, op_id: int
) -> List[str]:
    """Names of the platforms that can execute one operator of the plan."""
    kind = plan.operators[op_id].kind_name
    names = [p.name for p in registry.supporting(kind)]
    if not names:
        raise PlatformError(
            f"no platform in {registry!r} supports operator kind {kind!r}"
        )
    return names
