"""The cross-platform substrate (a faithful stand-in for Rheem).

This package models the parts of Rheem that the Robopt optimizer interacts
with: platform-agnostic *logical plans* (directed dataflow graphs of logical
operators), the *platforms* that can execute operators, platform-specific
*execution plans*, and the *conversion operators* that move data between
platforms (§III-A of the paper).
"""

from repro.rheem.platforms import (
    Platform,
    PlatformRegistry,
    default_registry,
    synthetic_registry,
)
from repro.rheem.operators import (
    KINDS,
    LogicalOperator,
    OperatorKind,
    UdfComplexity,
    operator,
)
from repro.rheem.datasets import DatasetProfile, PAPER_DATASETS
from repro.rheem.logical_plan import LogicalPlan, LoopSpec, TopologyCounts
from repro.rheem.conversion import (
    CONVERSION_KINDS,
    ConversionStep,
    conversion_path,
)
from repro.rheem.channels import (
    Channel,
    build_conversion_graph,
    channel_conversion_path,
    platform_channel,
)
from repro.rheem.execution_plan import ConversionInstance, ExecutionPlan
from repro.rheem.serialization import (
    execution_plan_from_json,
    execution_plan_to_json,
    plan_from_json,
    plan_to_json,
)

__all__ = [
    "Platform",
    "PlatformRegistry",
    "default_registry",
    "synthetic_registry",
    "KINDS",
    "LogicalOperator",
    "OperatorKind",
    "UdfComplexity",
    "operator",
    "DatasetProfile",
    "PAPER_DATASETS",
    "LogicalPlan",
    "LoopSpec",
    "TopologyCounts",
    "CONVERSION_KINDS",
    "ConversionStep",
    "conversion_path",
    "Channel",
    "platform_channel",
    "build_conversion_graph",
    "channel_conversion_path",
    "ConversionInstance",
    "ExecutionPlan",
    "plan_to_json",
    "plan_from_json",
    "execution_plan_to_json",
    "execution_plan_from_json",
]
