"""The logical operator catalog and logical operator instances.

Logical operators are platform-agnostic (§III-A). Each operator *instance*
in a plan references an :class:`OperatorKind` from the catalog and carries
the per-instance knobs that matter for optimization: the CPU complexity of
its UDF (§IV-A encodes four classes) and its selectivity (output/input
cardinality ratio), which drives cardinality propagation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, Dict, Optional

from repro.exceptions import UnknownOperatorError


class UdfComplexity(IntEnum):
    """CPU complexity classes of operator UDFs (§IV-A).

    The paper assumes four complexities: logarithmic, linear, quadratic and
    super-quadratic. The integer values are the encoding used in the plan
    vector ("sum of UDF complexities" cells).
    """

    LOGARITHMIC = 1
    LINEAR = 2
    QUADRATIC = 3
    SUPER_QUADRATIC = 4


@dataclass(frozen=True)
class OperatorKind:
    """A kind of logical operator (e.g. ``Map``, ``Join``).

    Parameters
    ----------
    name:
        Catalog name; unique.
    arity_in:
        Number of input dataflows (0 for sources, 2 for binary operators).
    arity_out:
        Number of output dataflows (0 for sinks). An ``arity_out`` of 1 does
        not preclude feeding several consumers — that is the *replicate*
        topology.
    default_selectivity:
        Output/input cardinality ratio used when an instance does not
        override it. May exceed 1 (e.g. ``FlatMap``).
    default_complexity:
        UDF complexity assumed when an instance does not override it.
    """

    name: str
    arity_in: int
    arity_out: int
    default_selectivity: float = 1.0
    default_complexity: UdfComplexity = UdfComplexity.LINEAR

    @property
    def is_source(self) -> bool:
        return self.arity_in == 0

    @property
    def is_sink(self) -> bool:
        return self.arity_out == 0

    @property
    def is_binary(self) -> bool:
        return self.arity_in >= 2


def _kind(name, arity_in, arity_out, sel=1.0, cx=UdfComplexity.LINEAR):
    return OperatorKind(name, arity_in, arity_out, sel, cx)


#: The logical operator catalog. Order matters: it fixes the operator-kind
#: blocks of the plan vector (see :mod:`repro.core.features`).
KINDS: Dict[str, OperatorKind] = {
    k.name: k
    for k in (
        # Sources
        _kind("TextFileSource", 0, 1),
        _kind("CollectionSource", 0, 1),
        _kind("TableSource", 0, 1),
        # Unary dataflow operators
        _kind("Map", 1, 1),
        _kind("FlatMap", 1, 1, sel=3.0),
        _kind("Filter", 1, 1, sel=0.5),
        _kind("Project", 1, 1),
        _kind("ReduceBy", 1, 1, sel=0.1),
        _kind("GroupBy", 1, 1, sel=0.1),
        _kind("Reduce", 1, 1, sel=1e-9),
        _kind("Sort", 1, 1, cx=UdfComplexity.LOGARITHMIC),
        _kind("Distinct", 1, 1, sel=0.5),
        _kind("Count", 1, 1, sel=1e-9),
        _kind("Sample", 1, 1, sel=0.01),
        _kind("ShufflePartitionSample", 1, 1, sel=0.01),
        _kind("Cache", 1, 1),
        _kind("ZipWithId", 1, 1),
        _kind("MapPartitions", 1, 1),
        # Binary operators
        _kind("Join", 2, 1, sel=1.0, cx=UdfComplexity.LINEAR),
        _kind("Union", 2, 1),
        _kind("Cartesian", 2, 1, cx=UdfComplexity.QUADRATIC),
        _kind("Intersect", 2, 1, sel=0.5),
        # Graph analytics (composite operator, as in Rheem)
        _kind("PageRank", 1, 1),
        # Sinks
        _kind("CollectionSink", 1, 0),
        _kind("TextFileSink", 1, 0),
        _kind("Callback", 1, 0),
    )
}

#: Stable order of kind names (catalog insertion order).
KIND_NAMES = tuple(KINDS)


def get_kind(name: str) -> OperatorKind:
    """Look an operator kind up by name, raising for unknown names."""
    try:
        return KINDS[name]
    except KeyError:
        raise UnknownOperatorError(
            f"unknown operator kind {name!r}; known kinds: {sorted(KINDS)}"
        ) from None


@dataclass
class LogicalOperator:
    """One platform-agnostic operator instance in a logical plan.

    Instances are created via :func:`operator` (or directly) and receive
    their ``id`` when added to a :class:`~repro.rheem.logical_plan.LogicalPlan`.

    Parameters
    ----------
    kind:
        The catalog kind.
    label:
        Human-readable label, e.g. ``"Filter(country)"``. Defaults to the
        kind name.
    udf_complexity:
        CPU complexity of the instance's UDF.
    selectivity:
        Output/input cardinality ratio; defaults to the kind's.
    fixed_output_cardinality:
        If set, overrides cardinality propagation for this operator
        (used e.g. for ``ReduceBy`` with a known number of groups).
    params:
        Free-form parameters (e.g. number of loop iterations a sample
        operator belongs to); not interpreted by the optimizer core.
    """

    kind: OperatorKind
    label: str = ""
    udf_complexity: Optional[UdfComplexity] = None
    selectivity: Optional[float] = None
    fixed_output_cardinality: Optional[float] = None
    params: Dict[str, Any] = field(default_factory=dict)
    id: int = -1

    def __post_init__(self):
        if not self.label:
            self.label = self.kind.name
        if self.udf_complexity is None:
            self.udf_complexity = self.kind.default_complexity
        if self.selectivity is None:
            self.selectivity = self.kind.default_selectivity

    @property
    def kind_name(self) -> str:
        return self.kind.name

    def output_cardinality(self, input_cardinality: float) -> float:
        """Estimated output cardinality given the total input cardinality."""
        if self.fixed_output_cardinality is not None:
            return float(self.fixed_output_cardinality)
        if self.kind.is_sink:
            return 0.0
        return float(self.selectivity) * float(input_cardinality)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"o{self.id}:{self.label}"


def operator(
    kind_name: str,
    label: str = "",
    *,
    udf_complexity: Optional[UdfComplexity] = None,
    selectivity: Optional[float] = None,
    fixed_output_cardinality: Optional[float] = None,
    **params: Any,
) -> LogicalOperator:
    """Convenience factory: ``operator("Filter", "Filter(country)", selectivity=0.1)``."""
    return LogicalOperator(
        kind=get_kind(kind_name),
        label=label,
        udf_complexity=udf_complexity,
        selectivity=selectivity,
        fixed_output_cardinality=fixed_output_cardinality,
        params=dict(params),
    )
