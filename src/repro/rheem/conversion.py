"""Conversion (data movement) operators between platforms.

When consecutive execution operators run on different platforms, Rheem
inserts *conversion operators* (§III-A): e.g. a ``SparkCollect`` turns an
RDD into a Java collection, a ``SparkCollectionSource`` does the reverse.
We model the conversion catalog with five kinds and derive the conversion
sequence for any ordered platform pair from the platforms' categories:

==============  =================================================
kind            meaning
==============  =================================================
``collect``     materialize a distributed dataset on the driver
``distribute``  ship a local collection into a distributed engine
``db_export``   stream a query result out of a database
``db_import``   bulk-load data into a database
``broadcast``   ship a (small) local collection to the workers of
                a distributed engine inside a loop body
==============  =================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.exceptions import PlatformError
from repro.rheem.platforms import (
    CATEGORY_DATABASE,
    CATEGORY_DISTRIBUTED,
    CATEGORY_LOCAL,
    Platform,
)

#: Conversion kinds in plan-vector block order.
CONVERSION_KINDS: Tuple[str, ...] = (
    "collect",
    "distribute",
    "db_export",
    "db_import",
    "broadcast",
)


@dataclass(frozen=True)
class ConversionStep:
    """One conversion operator: a kind executing on a platform.

    E.g. ``ConversionStep("collect", "spark")`` is Rheem's ``SparkCollect``.
    """

    kind: str
    platform: str

    def __post_init__(self):
        if self.kind not in CONVERSION_KINDS:
            raise PlatformError(
                f"unknown conversion kind {self.kind!r}; known: {CONVERSION_KINDS}"
            )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.platform}.{self.kind}"


def conversion_path(
    src: Platform, dst: Platform, in_loop: bool = False
) -> Tuple[ConversionStep, ...]:
    """Conversion operators needed to move data from ``src`` to ``dst``.

    ``in_loop`` selects the broadcast variant for local→distributed moves
    inside loop bodies (e.g. shipping k-means centroids from Java into
    Spark workers each iteration), which is the plan detail behind the
    paper's Fig. 12(a) discussion.
    """
    if src.name == dst.name:
        return ()
    a, b = src.category, dst.category
    if a == CATEGORY_LOCAL and b == CATEGORY_DISTRIBUTED:
        kind = "broadcast" if in_loop else "distribute"
        return (ConversionStep(kind, dst.name),)
    if a == CATEGORY_DISTRIBUTED and b == CATEGORY_LOCAL:
        return (ConversionStep("collect", src.name),)
    if a == CATEGORY_DISTRIBUTED and b == CATEGORY_DISTRIBUTED:
        return (
            ConversionStep("collect", src.name),
            ConversionStep("distribute", dst.name),
        )
    if a == CATEGORY_DATABASE and b == CATEGORY_LOCAL:
        return (ConversionStep("db_export", src.name),)
    if a == CATEGORY_DATABASE and b == CATEGORY_DISTRIBUTED:
        return (
            ConversionStep("db_export", src.name),
            ConversionStep("distribute", dst.name),
        )
    if a == CATEGORY_LOCAL and b == CATEGORY_DATABASE:
        return (ConversionStep("db_import", dst.name),)
    if a == CATEGORY_DISTRIBUTED and b == CATEGORY_DATABASE:
        return (
            ConversionStep("collect", src.name),
            ConversionStep("db_import", dst.name),
        )
    if a == CATEGORY_DATABASE and b == CATEGORY_DATABASE:
        return (
            ConversionStep("db_export", src.name),
            ConversionStep("db_import", dst.name),
        )
    if a == CATEGORY_LOCAL and b == CATEGORY_LOCAL:
        # Two distinct local engines exchange plain collections.
        return ()
    raise PlatformError(f"no conversion path from {src.name} to {dst.name}")
