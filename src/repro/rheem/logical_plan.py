"""Logical query plans: platform-agnostic directed dataflow graphs.

A :class:`LogicalPlan` is the input of the optimizer (§III-A): vertices are
:class:`~repro.rheem.operators.LogicalOperator` instances, edges represent
dataflow. Loops (iterative dataflows such as k-means or PageRank) are
modelled as :class:`LoopSpec` annotations over a set of body operators
rather than as graph cycles, which keeps the plan a DAG while exposing the
*loop* topology of §IV-A to the feature encoding and the per-iteration
overheads to the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.exceptions import ArityError, CycleError, PlanError
from repro.rheem.datasets import DatasetProfile
from repro.rheem.operators import LogicalOperator


@dataclass(frozen=True)
class LoopSpec:
    """An iterative region of a plan.

    Parameters
    ----------
    body:
        Ids of the operators repeated on every iteration.
    iterations:
        Number of iterations the loop performs.
    """

    body: FrozenSet[int]
    iterations: int

    def __post_init__(self):
        if self.iterations < 1:
            raise PlanError(f"a loop needs >= 1 iterations, got {self.iterations}")
        if not self.body:
            raise PlanError("a loop body cannot be empty")


@dataclass(frozen=True)
class TopologyCounts:
    """How many instances of each plan topology (§IV-A) a (sub)plan has."""

    pipeline: int = 0
    juncture: int = 0
    replicate: int = 0
    loop: int = 0

    def as_tuple(self) -> Tuple[int, int, int, int]:
        return (self.pipeline, self.juncture, self.replicate, self.loop)


class LogicalPlan:
    """A platform-agnostic dataflow DAG.

    Build plans by adding operators and connecting them::

        plan = LogicalPlan("example")
        src = plan.add(operator("TextFileSource"), dataset=profile)
        flt = plan.add(operator("Filter", selectivity=0.1))
        snk = plan.add(operator("CollectionSink"))
        plan.connect(src, flt)
        plan.connect(flt, snk)
        plan.validate()

    Operator ids are dense integers assigned in insertion order; they index
    the columns of the enumeration assignment matrices.
    """

    def __init__(self, name: str = "plan"):
        self.name = name
        self.operators: Dict[int, LogicalOperator] = {}
        self.datasets: Dict[int, DatasetProfile] = {}
        self.loops: List[LoopSpec] = []
        self._parents: Dict[int, List[int]] = {}
        self._children: Dict[int, List[int]] = {}
        self._cardinalities: Optional[Dict[int, Tuple[float, float]]] = None
        self._validated: set = set()
        self._adjacency: Optional[Tuple[Dict, Dict, Dict]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(
        self, op: LogicalOperator, dataset: Optional[DatasetProfile] = None
    ) -> LogicalOperator:
        """Add an operator; returns it with its ``id`` assigned.

        Source operators must be given the :class:`DatasetProfile` they read.
        """
        if op.id != -1:
            raise PlanError(f"operator {op!r} already belongs to a plan")
        op.id = len(self.operators)
        self.operators[op.id] = op
        self._parents[op.id] = []
        self._children[op.id] = []
        if op.kind.is_source:
            if dataset is None:
                raise PlanError(
                    f"source operator {op.label!r} needs a dataset profile"
                )
            self.datasets[op.id] = dataset
        elif dataset is not None:
            raise PlanError(f"non-source operator {op.label!r} cannot take a dataset")
        self._cardinalities = None
        self._validated.clear()
        self._adjacency = None
        return op

    def connect(self, src, dst) -> None:
        """Add a dataflow edge from ``src`` to ``dst`` (operators or ids)."""
        u = src.id if isinstance(src, LogicalOperator) else int(src)
        v = dst.id if isinstance(dst, LogicalOperator) else int(dst)
        for node in (u, v):
            if node not in self.operators:
                raise PlanError(f"operator id {node} is not in plan {self.name!r}")
        if u == v:
            raise CycleError(f"self-loop on operator {u} in plan {self.name!r}")
        self._children[u].append(v)
        self._parents[v].append(u)
        self._cardinalities = None
        self._validated.clear()
        self._adjacency = None

    def chain(self, *ops) -> LogicalOperator:
        """Connect operators in a pipeline; returns the last one."""
        for a, b in zip(ops, ops[1:]):
            self.connect(a, b)
        return ops[-1]

    def add_loop(self, body: Iterable, iterations: int) -> LoopSpec:
        """Mark a set of operators as an iterative loop body."""
        ids = frozenset(
            op.id if isinstance(op, LogicalOperator) else int(op) for op in body
        )
        unknown = ids - set(self.operators)
        if unknown:
            raise PlanError(f"loop body references unknown operators {sorted(unknown)}")
        spec = LoopSpec(body=ids, iterations=iterations)
        self.loops.append(spec)
        self._validated.clear()
        return spec

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_operators(self) -> int:
        return len(self.operators)

    @property
    def edges(self) -> List[Tuple[int, int]]:
        return [(u, v) for u, vs in self._children.items() for v in vs]

    def parents(self, op_id: int) -> List[int]:
        return list(self._parents[op_id])

    def children(self, op_id: int) -> List[int]:
        return list(self._children[op_id])

    def adjacency(self) -> Tuple[Dict[int, Tuple[int, ...]], ...]:
        """``(children, parents, neighbours)`` maps, id -> tuple of ids.

        Memoized on the plan (invalidated by ``add``/``connect``) so
        repeated optimizations of one plan share the read-only maps instead
        of re-copying the per-operator lists each run.
        """
        adjacency = getattr(self, "_adjacency", None)
        if adjacency is None:
            children = {i: tuple(c) for i, c in self._children.items()}
            parents = {i: tuple(p) for i, p in self._parents.items()}
            neighbours = {i: children[i] + parents[i] for i in children}
            adjacency = (children, parents, neighbours)
            self._adjacency = adjacency
        return adjacency

    def sources(self) -> List[int]:
        return [i for i, op in self.operators.items() if op.kind.is_source]

    def sinks(self) -> List[int]:
        return [i for i, op in self.operators.items() if op.kind.is_sink]

    def loop_iterations(self, op_id: int) -> int:
        """Total number of times an operator runs (product of enclosing loops)."""
        total = 1
        for spec in self.loops:
            if op_id in spec.body:
                total *= spec.iterations
        return total

    def in_loop(self, op_id: int) -> bool:
        return any(op_id in spec.body for spec in self.loops)

    def graph(self) -> nx.DiGraph:
        """The plan as a :class:`networkx.DiGraph` (ids as nodes)."""
        g = nx.DiGraph()
        g.add_nodes_from(self.operators)
        g.add_edges_from(self.edges)
        return g

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self, strict: bool = True) -> None:
        """Check the plan is a well-formed dataflow DAG.

        With ``strict=True`` (the default) every non-sink operator must feed
        at least one consumer and the plan must have at least one source and
        one sink.

        Validation is memoized per ``strict`` flag: a plan that passed once
        stays valid until its structure changes (``add``, ``connect``,
        ``add_loop`` clear the memo), so optimizers can validate defensively
        on every call without re-running the DAG check.
        """
        validated = getattr(self, "_validated", None)
        if validated is not None and strict in validated:
            return
        if not self.operators:
            raise PlanError(f"plan {self.name!r} is empty")
        g = self.graph()
        if not nx.is_directed_acyclic_graph(g):
            cycle = nx.find_cycle(g)
            raise CycleError(f"plan {self.name!r} has a cycle: {cycle}")
        for op_id, op in self.operators.items():
            n_in = len(self._parents[op_id])
            if n_in != op.kind.arity_in:
                raise ArityError(
                    f"{op!r} expects {op.kind.arity_in} inputs, has {n_in}"
                )
            n_out = len(self._children[op_id])
            if op.kind.is_sink and n_out:
                raise ArityError(f"sink {op!r} cannot have consumers")
            if strict and not op.kind.is_sink and n_out == 0:
                raise ArityError(f"{op!r} feeds no consumer")
        if strict:
            if not self.sources():
                raise PlanError(f"plan {self.name!r} has no source")
            if not self.sinks():
                raise PlanError(f"plan {self.name!r} has no sink")
        for spec in self.loops:
            unknown = spec.body - set(self.operators)
            if unknown:
                raise PlanError(
                    f"loop body references unknown operators {sorted(unknown)}"
                )
        if validated is not None:
            validated.add(strict)

    # ------------------------------------------------------------------
    # Topology analysis (§IV-A)
    # ------------------------------------------------------------------
    def topology_counts(self, scope: Optional[Iterable[int]] = None) -> TopologyCounts:
        """Topology counts of the (sub)plan induced by ``scope``.

        Junctures are operators whose *kind* takes two or more inputs;
        replicates are operators with two or more consumers in the full
        plan (both are intrinsic to the operator, so counts add up across
        disjoint scopes). Loops count the loop specs whose body intersects
        the scope. Pipelines are the maximal chains of single-input,
        single-consumer operators in the induced subgraph.
        """
        ids = set(self.operators) if scope is None else set(scope)
        juncture = sum(1 for i in ids if self.operators[i].kind.arity_in >= 2)
        replicate = sum(1 for i in ids if len(self._children[i]) >= 2)
        loop = sum(1 for spec in self.loops if spec.body & ids)

        def eligible(i: int) -> bool:
            # Chain members: at most one input by kind, at most one consumer
            # within the scope, and not a replicate in the full plan.
            if self.operators[i].kind.arity_in >= 2:
                return False
            if len(self._children[i]) >= 2:
                return False
            return sum(1 for c in self._children[i] if c in ids) <= 1

        pipeline = 0
        for i in ids:
            if not eligible(i):
                continue
            # Count chain heads: an eligible op whose in-scope parent is not
            # an eligible chain predecessor.
            in_scope_parents = [p for p in self._parents[i] if p in ids]
            starts_chain = True
            if len(in_scope_parents) == 1:
                p = in_scope_parents[0]
                if eligible(p):
                    starts_chain = False
            pipeline += 1 if starts_chain else 0
        return TopologyCounts(pipeline, juncture, replicate, loop)

    # ------------------------------------------------------------------
    # Cardinality propagation
    # ------------------------------------------------------------------
    def cardinalities(self) -> Dict[int, Tuple[float, float]]:
        """Per-operator ``(input, output)`` cardinalities (cached).

        Sources take their dataset cardinality as input; every other
        operator's input is the sum of its parents' outputs. Output follows
        the operator's selectivity model. Loop membership does *not* change
        the per-invocation cardinalities (the simulator accounts for
        iterations separately).
        """
        if self._cardinalities is None:
            from repro.rheem.cardinality import propagate_cardinalities

            self._cardinalities = propagate_cardinalities(self)
        return self._cardinalities

    def invalidate_cardinalities(self) -> None:
        """Drop the cardinality cache (after mutating selectivities/datasets)."""
        self._cardinalities = None

    def average_input_tuple_size(self) -> float:
        """Average tuple size over the plan's input datasets (dataset feature)."""
        if not self.datasets:
            return 0.0
        sizes = [d.tuple_size for d in self.datasets.values()]
        return float(sum(sizes)) / len(sizes)

    def set_dataset(self, source, dataset: DatasetProfile) -> None:
        """Replace the dataset of a source operator (e.g. to scale sizes)."""
        op_id = source.id if isinstance(source, LogicalOperator) else int(source)
        if op_id not in self.datasets:
            raise PlanError(f"operator {op_id} is not a source with a dataset")
        self.datasets[op_id] = dataset
        self._cardinalities = None

    def scale_datasets_to_bytes(self, size_bytes: float) -> None:
        """Scale every input dataset to a total size in bytes."""
        for op_id, profile in list(self.datasets.items()):
            self.datasets[op_id] = profile.scaled_to_bytes(size_bytes)
        self._cardinalities = None

    def clone(self) -> "LogicalPlan":
        """A deep, independent copy (used to vary dataset sizes per job)."""
        import copy

        return copy.deepcopy(self)

    # ------------------------------------------------------------------
    def topological_order(self) -> List[int]:
        """Operator ids in a topological order of the dataflow."""
        return list(nx.topological_sort(self.graph()))

    def signature(self) -> Tuple:
        """A hashable structural signature (used to group TDGEN jobs)."""
        ops = tuple(
            (i, op.kind_name, int(op.udf_complexity)) for i, op in sorted(self.operators.items())
        )
        edges = tuple(sorted(self.edges))
        loops = tuple(sorted((tuple(sorted(s.body)), s.iterations) for s in self.loops))
        return (ops, edges, loops)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LogicalPlan({self.name!r}, ops={self.n_operators}, "
            f"edges={len(self.edges)}, loops={len(self.loops)})"
        )
