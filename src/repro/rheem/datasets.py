"""Dataset profiles.

The optimizer (and the paper's feature vector, §IV-A) only consumes two
properties of an input dataset: its cardinality (number of tuples, which
becomes the input cardinality of the source operators) and its average
tuple size in bytes (the single "dataset feature" of the plan vector).

We therefore model datasets as lightweight :class:`DatasetProfile`
descriptors and provide the profiles of the paper's Table II datasets with
plausible tuple sizes, scalable to any of the sizes the figures sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.exceptions import PlanError

GB = 1024 ** 3
MB = 1024 ** 2


@dataclass(frozen=True)
class DatasetProfile:
    """Cardinality and tuple size of one input dataset.

    Parameters
    ----------
    name:
        Dataset name, e.g. ``"wikipedia"``.
    cardinality:
        Number of tuples (lines, rows, triples, ...).
    tuple_size:
        Average tuple size in bytes.
    """

    name: str
    cardinality: float
    tuple_size: float

    def __post_init__(self):
        if self.cardinality < 0:
            raise PlanError(f"negative cardinality for dataset {self.name!r}")
        if self.tuple_size <= 0:
            raise PlanError(f"non-positive tuple size for dataset {self.name!r}")

    @property
    def size_bytes(self) -> float:
        """Total dataset size in bytes."""
        return self.cardinality * self.tuple_size

    def scaled_to_bytes(self, size_bytes: float) -> "DatasetProfile":
        """This dataset replicated/truncated to a total size in bytes.

        Mirrors the paper's §VII-C methodology: "we varied the datasets size
        up to 1TB by replicating the input data".
        """
        return replace(self, cardinality=size_bytes / self.tuple_size)

    def scaled_to_cardinality(self, cardinality: float) -> "DatasetProfile":
        """This dataset with a different number of tuples."""
        return replace(self, cardinality=float(cardinality))


def _profile(name: str, size_bytes: float, tuple_size: float) -> DatasetProfile:
    return DatasetProfile(name, cardinality=size_bytes / tuple_size, tuple_size=tuple_size)


#: Base profiles for the datasets of Table II, at their smallest size.
#: Tuple sizes are realistic estimates (Wikipedia text lines, TPC-H rows,
#: US Census records, HIGGS feature rows, DBpedia triples).
PAPER_DATASETS = {
    "wikipedia": _profile("wikipedia", 30 * MB, tuple_size=120.0),
    "tpch": _profile("tpch", 1 * GB, tuple_size=130.0),
    "uscensus1990": _profile("uscensus1990", 36 * MB, tuple_size=270.0),
    "higgs": _profile("higgs", 740 * MB, tuple_size=224.0),
    "dbpedia": _profile("dbpedia", 200 * MB, tuple_size=60.0),
}


def paper_dataset(name: str, size_bytes: float = None) -> DatasetProfile:
    """One of the paper's datasets, optionally scaled to a total size."""
    try:
        base = PAPER_DATASETS[name]
    except KeyError:
        raise PlanError(
            f"unknown dataset {name!r}; known: {sorted(PAPER_DATASETS)}"
        ) from None
    if size_bytes is None:
        return base
    return base.scaled_to_bytes(size_bytes)
