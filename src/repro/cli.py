"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``workloads`` — list the built-in Table II workloads;
* ``train`` — generate TDGEN data and train a runtime model;
* ``optimize`` — optimize a workload (or a plan JSON) with a model;
* ``optimize-batch`` — drive a JSONL job file through the batch
  optimization service (process-pool parallelism + plan cache), or —
  with ``--server ADDR`` — through a running ``repro serve`` daemon;
* ``serve`` — run the persistent optimization daemon (unix socket/TCP,
  admission control, cross-client coalescing, graceful drain);
* ``simulate`` — run a workload on one platform (or all) and report
  simulated runtimes;
* ``explain`` — optimize and print the decision report (chosen plan,
  alternatives, single-platform predictions).

Sizes accept human suffixes: ``30MB``, ``6GB``, ``1TB``.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from typing import List, Optional

from repro.exceptions import ReproError
from repro.serve.protocol import parse_size, resolve_workload


def _registry(names: str):
    from repro.rheem.platforms import default_registry

    return default_registry(tuple(n.strip() for n in names.split(",")))


def _workers_arg(text: str) -> Optional[int]:
    """``--workers`` value: an int, or ``auto`` (None → CPU-aware sizing)."""
    if text.strip().lower() == "auto":
        return None
    return int(text)


def _workload_plan(name: str, size_bytes: Optional[float], args):
    return resolve_workload(name, size_bytes)


def _load_plan(args):
    if args.plan_json:
        from repro.rheem.serialization import plan_from_json

        with open(args.plan_json) as f:
            return plan_from_json(f.read())
    return _workload_plan(
        args.workload, parse_size(args.size) if args.size else None, args
    )


@contextmanager
def _maybe_trace(args):
    """Run the command body under an ambient tracer if ``--trace`` was given.

    The trace is exported (JSONL) after the body finishes, even when it
    raises — a partial trace of a failed run is exactly when you want one.
    """
    path = getattr(args, "trace", None)
    if not path:
        yield None
        return
    from repro.obs import Tracer, use_tracer

    tracer = Tracer()
    try:
        with use_tracer(tracer):
            yield tracer
    finally:
        try:
            n = tracer.export(path)
        except OSError as exc:
            raise ReproError(f"cannot write trace to {path}: {exc}") from exc
        print(f"wrote {n} trace records to {path}")


def _load_runtime_model(path):
    from repro.ml.model import RuntimeModel

    try:
        return RuntimeModel.load(path)
    except OSError as exc:
        raise ReproError(f"cannot read model from {path}: {exc}") from exc


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


def cmd_workloads(args) -> int:
    from repro.workloads import TABLE2

    print(f"{'workload':<12} {'#ops':>5}  dataset")
    for name, (module, n_ops, dataset) in TABLE2.items():
        print(f"{name:<12} {n_ops:>5}  {dataset}")
    return 0


def cmd_train(args) -> int:
    from repro.ml.model import RuntimeModel
    from repro.simulator.executor import SimulatedExecutor
    from repro.tdgen.generator import TrainingDataGenerator

    registry = _registry(args.platforms)
    executor = SimulatedExecutor.default(registry, seed=args.seed)
    tdgen = TrainingDataGenerator(registry, executor, seed=args.seed)
    print(f"generating {args.points} training points on {registry.names} ...")
    dataset = tdgen.generate(args.points)
    stats = tdgen.stats
    print(
        f"  executed {stats.n_executed}, interpolated {stats.n_imputed} "
        f"({stats.executed_fraction:.0%} executed)"
    )
    print(f"training a {args.algorithm} model ...")
    model = RuntimeModel.train(dataset, args.algorithm, seed=args.seed)
    print(f"  holdout: {model.metrics}")
    model.save(args.out)
    print(f"saved model to {args.out}")
    return 0


def cmd_optimize(args) -> int:
    from repro.core.optimizer import Robopt
    from repro.rheem.serialization import execution_plan_to_json

    registry = _registry(args.platforms)
    model = _load_runtime_model(args.model)
    plan = _load_plan(args)
    budget = None
    if args.deadline_ms is not None:
        from repro.resilience import Budget

        budget = Budget(deadline_s=args.deadline_ms / 1000.0)
    robopt = Robopt(registry, model, priority=args.priority, budget=budget)
    with _maybe_trace(args):
        result = robopt.optimize(plan)
    print(result.execution_plan.describe())
    print(
        f"predicted runtime: {result.predicted_runtime:.2f}s  "
        f"(optimization took {result.stats.latency_s * 1e3:.1f}ms, "
        f"{result.stats.total_vectors} plan vectors)"
    )
    if result.stats.degraded:
        print(
            f"note: degraded ({result.stats.degradation}) — budget expired "
            "before the search completed; the plan is the best complete "
            "one found in time"
        )
    if args.out:
        with open(args.out, "w") as f:
            f.write(execution_plan_to_json(result.execution_plan))
        print(f"wrote execution plan to {args.out}")
    return 0


def _load_jobs(path, registry):
    """Parse a JSONL job file into :class:`repro.serve.BatchJob` rows.

    The row vocabulary lives in :mod:`repro.serve.protocol`
    (:func:`~repro.serve.protocol.load_jobs_jsonl`); this wrapper
    resolves the parsed requests into runnable jobs. Every malformed
    row — invalid JSON, a bad size, an unknown workload, a broken plan
    document — becomes a per-row error entry instead of failing the
    whole batch. Only an unreadable file or a file with *zero* rows
    raises.
    """
    from repro.serve.protocol import ProtocolError, load_jobs_jsonl, request_to_job

    requests, error_rows = load_jobs_jsonl(path)
    jobs = []
    for request in requests:
        try:
            jobs.append(request_to_job(request))
        except ProtocolError as exc:
            error_rows.append(
                {"id": request.request_id, "ok": False, "error": f"{path}: {exc}"}
            )
    return jobs, error_rows


def _chaos_profile(args):
    """The ``--chaos-profile`` spec as a ChaosProfile (``None`` if unset).

    ``REPRO_CHAOS_SEED`` overrides the seed — the CI chaos matrix sets
    it to fan one profile out over several deterministic seeds.
    """
    import os

    spec = getattr(args, "chaos_profile", None)
    if not spec:
        return None
    from dataclasses import replace

    from repro.resilience import ChaosProfile

    profile = ChaosProfile.parse(spec)
    env_seed = os.environ.get("REPRO_CHAOS_SEED")
    if env_seed is not None:
        try:
            profile = replace(profile, seed=int(env_seed))
        except ValueError as exc:
            raise ReproError(f"bad REPRO_CHAOS_SEED {env_seed!r}: {exc}") from exc
    return profile


def _optimize_batch_via_server(args) -> int:
    """``optimize-batch --server``: the CLI as one daemon client among many.

    Jobs are parsed with the same protocol vocabulary as local mode,
    pipelined to the daemon in one burst (so it can micro-batch and
    coalesce them), and printed in the same row format. Service knobs
    (``--workers``, ``--cache``, ``--chaos-profile`` …) belong to the
    daemon in this mode and are ignored.
    """
    import json
    import time

    from repro.serve.batch import _percentile
    from repro.serve.client import ServeClient
    from repro.serve.protocol import load_jobs_jsonl

    requests, error_rows = load_jobs_jsonl(args.jobs)
    if args.deadline_ms is not None:
        for request in requests:
            if request.deadline_ms is None:
                request.deadline_ms = args.deadline_ms
    started = time.perf_counter()
    with ServeClient(args.server, timeout_s=args.timeout or 60.0) as client:
        responses = client.optimize_many(requests) if requests else []
    wall = time.perf_counter() - started
    rows = list(error_rows)
    durations = []
    for response in responses:
        if response.ok:
            row = {
                "id": response.request_id,
                "ok": True,
                "cached": response.cached,
                "coalesced": response.coalesced,
                "duration_s": response.duration_ms / 1000.0,
                "predicted_runtime": response.predicted_runtime,
                "platforms": response.platforms,
                "assignment": response.assignment,
                "stats": response.stats,
            }
            if response.degraded:
                row["degraded"] = response.degraded
            durations.append(response.duration_ms / 1000.0)
        else:
            row = {
                "id": response.request_id,
                "ok": False,
                "error": response.error,
                "code": response.code,
            }
            if response.retry_after_ms is not None:
                row["retry_after_ms"] = response.retry_after_ms
        rows.append(row)
    if args.out:
        with open(args.out, "w") as f:
            for row in rows:
                f.write(json.dumps(row) + "\n")
        print(f"wrote {len(rows)} result rows to {args.out}")
    else:
        for row in rows:
            shown = (
                f"{row['predicted_runtime']:.2f}s"
                if row["ok"]
                else f"error: {row['error']}"
            )
            cached = " (cached)" if row.get("cached") else ""
            degraded = f" (degraded: {row['degraded']})" if row.get("degraded") else ""
            print(f"{row['id']:>24}: {shown}{cached}{degraded}")
    n_ok = sum(1 for row in rows if row.get("ok"))
    print(
        f"batch: {n_ok}/{len(rows)} ok in {wall:.2f}s "
        f"(server={args.server})"
    )
    if durations:
        print(
            "latency: "
            f"p50={_percentile(durations, 50.0) * 1000:.1f}ms "
            f"p95={_percentile(durations, 95.0) * 1000:.1f}ms "
            f"p99={_percentile(durations, 99.0) * 1000:.1f}ms"
        )
    return 0 if n_ok == len(rows) else 1


def _feedback_controller(args, registry, background: bool):
    """Build the opt-in execution-feedback controller for --feedback runs.

    Executed plans are simulated (SimulatedExecutor — the same runtime
    oracle the training data comes from), observed outcomes feed the
    FeedbackLoop, and a DriftMonitor decides when the windowed q-error
    justifies an off-critical-path retrain.
    """
    if not getattr(args, "feedback", False):
        return None
    from repro.core.features import FeatureSchema
    from repro.ml import DriftMonitor, FeedbackLoop
    from repro.serve import FeedbackController
    from repro.simulator.executor import SimulatedExecutor

    if args.retrain_after < 0:
        raise ReproError("--retrain-after must be >= 0")
    if args.drift_threshold < 1.0:
        raise ReproError("--drift-threshold must be >= 1.0 (q-error scale)")
    drift = DriftMonitor(
        warn_threshold=min(2.0, args.drift_threshold),
        drift_threshold=args.drift_threshold,
    )
    return FeedbackController(
        FeedbackLoop(FeatureSchema(registry)),
        SimulatedExecutor.default(registry),
        drift=drift,
        retrain_after=args.retrain_after,
        background=background,
    )


def _print_feedback_stats(service) -> None:
    stats = service.feedback_stats()
    if not stats:
        return
    q = stats.get("q_error")
    q_shown = f"{q:.2f}" if isinstance(q, float) else "n/a"
    print(
        f"feedback: {stats['observations_total']} observed "
        f"({stats['rejected']} rejected), drift q-error {q_shown} "
        f"[{stats['status']}], retrains={stats['retrains']}, "
        f"model generation {stats['model_generation']}"
    )


def cmd_optimize_batch(args) -> int:
    import json
    import os

    from repro.bench import trajectory
    from repro.resilience import RetryPolicy
    from repro.serve import (
        BatchOptimizationService,
        PlanCache,
        TemplateCache,
        resilient_robopt_factory,
        robopt_factory,
    )

    if args.server:
        return _optimize_batch_via_server(args)
    if not args.model:
        raise ReproError("--model is required (unless --server is given)")
    registry = _registry(args.platforms)
    jobs, error_rows = _load_jobs(args.jobs, registry)
    chaos = _chaos_profile(args)
    resilient = not args.no_resilience
    if not os.path.isfile(args.model):
        if resilient:
            # The fallback chain turns a missing model into degraded plan
            # quality (cost-model answers) instead of a dead batch.
            print(
                f"warning: model {args.model} unreadable; serving from the "
                "fallback chain",
                file=sys.stderr,
            )
        else:
            # The factory loads the model lazily (inside each pool worker),
            # so a bad path would otherwise surface as N per-job failures.
            raise ReproError(f"cannot read model from {args.model}: no such file")
    cache = None
    if args.cache:
        if os.path.exists(args.cache):
            if chaos is not None and chaos.cache_corrupt_rate > 0.0:
                from repro.resilience import FaultInjector, corrupt_cache_file

                if corrupt_cache_file(args.cache, FaultInjector(chaos)):
                    print(
                        f"chaos: corrupted plan cache {args.cache}",
                        file=sys.stderr,
                    )
            cache = PlanCache.load(args.cache, registry, max_entries=args.cache_size)
        else:
            cache = PlanCache(max_entries=args.cache_size)
    template_cache = None
    if args.template_cache:
        if os.path.exists(args.template_cache):
            template_cache = TemplateCache.load(
                args.template_cache,
                registry,
                max_templates=args.template_cache_size,
                guardrail=args.guardrail,
            )
        else:
            template_cache = TemplateCache(
                max_templates=args.template_cache_size, guardrail=args.guardrail
            )
    platforms = tuple(n.strip() for n in args.platforms.split(","))
    if resilient:
        factory = resilient_robopt_factory(
            platforms=platforms,
            model_path=args.model,
            priority=args.priority,
            deadline_s=(
                args.deadline_ms / 1000.0 if args.deadline_ms is not None else None
            ),
            chaos=chaos,
            variance_threshold=args.variance_threshold,
            risk_aversion=args.risk_aversion,
        )
    else:
        if chaos is not None:
            raise ReproError("--chaos-profile requires the resilient stack")
        if args.risk_aversion or args.variance_threshold is not None:
            raise ReproError(
                "--risk-aversion/--variance-threshold require the resilient stack"
            )
        factory = robopt_factory(
            platforms=platforms,
            model_path=args.model,
            priority=args.priority,
        )
    retry = RetryPolicy(max_retries=args.retries) if args.retries > 0 else None
    feedback = _feedback_controller(args, registry, background=False)
    service = BatchOptimizationService(
        factory,
        registry,
        workers=args.workers,
        timeout_s=args.timeout,
        cache=cache,
        template_cache=template_cache,
        retry=retry,
        quarantine_after=args.quarantine_after,
        feedback=feedback,
        model_path=args.model if feedback is not None else None,
    )
    try:
        with _maybe_trace(args):
            report = service.optimize_batch(jobs) if jobs else None
    finally:
        if feedback is not None:
            feedback.join()
        service.close()
    rows = list(error_rows)
    outcomes = report.outcomes if report is not None else []
    for outcome in outcomes:
        row = {
            "id": outcome.job_id,
            "ok": outcome.ok,
            "cached": outcome.cached,
            "duration_s": outcome.duration_s,
            "attempts": outcome.attempts,
        }
        if outcome.template_hit:
            row["template_hit"] = True
        if outcome.ok and outcome.result is not None:
            result = outcome.result
            row["predicted_runtime"] = result.predicted_runtime
            row["platforms"] = sorted(result.execution_plan.platforms_used())
            row["assignment"] = {
                str(k): v for k, v in sorted(result.execution_plan.assignment.items())
            }
            row["stats"] = result.stats.as_dict()
            if result.stats.degraded:
                row["degraded"] = result.stats.degradation
        else:
            row["error"] = outcome.error
            if outcome.quarantined:
                row["quarantined"] = True
        rows.append(row)
    if args.out:
        with open(args.out, "w") as f:
            for row in rows:
                f.write(json.dumps(row) + "\n")
        print(f"wrote {len(rows)} result rows to {args.out}")
    else:
        for row in rows:
            shown = (
                f"{row['predicted_runtime']:.2f}s"
                if row["ok"]
                else f"error: {row['error']}"
            )
            cached = " (cached)" if row.get("cached") else ""
            degraded = f" (degraded: {row['degraded']})" if row.get("degraded") else ""
            print(f"{row['id']:>24}: {shown}{cached}{degraded}")
    n_bad_rows = len(error_rows)
    if report is not None:
        metrics = report.metrics()
        extras = ""
        if template_cache is not None:
            extras += f", template hit rate {report.template_hit_rate:.0%}"
        if report.n_degraded or report.n_retried or report.n_quarantined:
            extras += (
                f", degraded={report.n_degraded} retried={report.n_retried} "
                f"quarantined={report.n_quarantined}"
            )
        tails = report.latency_percentiles()
        print(
            f"batch: {report.n_ok}/{report.n_jobs} ok in {report.wall_s:.2f}s "
            f"({report.plans_per_sec:.1f} plans/s, mode={report.mode}, "
            f"workers={report.workers}/{report.workers_requested}, "
            f"cache hit rate {report.cache_hit_rate:.0%}{extras})"
        )
        print(
            "latency: "
            f"p50={tails['p50'] * 1000:.1f}ms "
            f"p95={tails['p95'] * 1000:.1f}ms "
            f"p99={tails['p99'] * 1000:.1f}ms"
        )
        _print_feedback_stats(service)
        if n_bad_rows:
            print(f"rejected {n_bad_rows} malformed job rows (see result rows)")
        # Test-driven CLI runs must not pollute the persistent bench
        # trajectory with pytest-tmp job files; --bench-record re-enables.
        if args.bench_record or not trajectory.under_pytest():
            trajectory.record(
                "serve.optimize_batch",
                metrics,
                meta={"jobs_file": args.jobs, "mode": report.mode},
            )
    else:
        print(f"batch: 0 runnable jobs; rejected {n_bad_rows} malformed rows")
    if cache is not None and args.cache:
        cache.save(args.cache)
        print(f"saved plan cache ({len(cache)} entries) to {args.cache}")
    if template_cache is not None and args.template_cache:
        template_cache.save(args.template_cache)
        print(
            f"saved template cache ({len(template_cache)} templates) "
            f"to {args.template_cache}"
        )
    failed = n_bad_rows + (report.n_failed if report is not None else 0)
    return 0 if failed == 0 else 1


def cmd_serve(args) -> int:
    """Run the persistent optimization daemon until SIGTERM or a
    ``shutdown`` frame; exits 0 after a clean drain."""
    import asyncio
    import os

    from repro.obs import Tracer
    from repro.resilience import RetryPolicy
    from repro.serve import (
        BatchOptimizationService,
        DaemonConfig,
        OptimizationDaemon,
        PlanCache,
        TemplateCache,
        resilient_robopt_factory,
        robopt_factory,
    )

    if not args.socket and not args.host:
        raise ReproError("repro serve needs --socket PATH and/or --host")
    registry = _registry(args.platforms)
    chaos = _chaos_profile(args)
    resilient = not args.no_resilience
    if not os.path.isfile(args.model):
        if resilient:
            print(
                f"warning: model {args.model} unreadable; serving from the "
                "fallback chain",
                file=sys.stderr,
            )
        else:
            raise ReproError(f"cannot read model from {args.model}: no such file")
    # A long-lived daemon defaults to an in-memory plan cache — repeated
    # fingerprints are its whole reason to exist; --cache additionally
    # persists it across restarts.
    cache = None
    if not args.no_cache:
        if args.cache and os.path.exists(args.cache):
            cache = PlanCache.load(args.cache, registry, max_entries=args.cache_size)
        else:
            cache = PlanCache(max_entries=args.cache_size)
    # The template tier is opt-in: it may serve guardrail-bounded (not
    # bit-exact) answers, so the operator enables it deliberately.
    template_cache = None
    if args.template_cache:
        if os.path.exists(args.template_cache):
            template_cache = TemplateCache.load(
                args.template_cache,
                registry,
                max_templates=args.template_cache_size,
                guardrail=args.guardrail,
            )
        else:
            template_cache = TemplateCache(
                max_templates=args.template_cache_size, guardrail=args.guardrail
            )
    platforms = tuple(n.strip() for n in args.platforms.split(","))
    if resilient:
        factory = resilient_robopt_factory(
            platforms=platforms,
            model_path=args.model,
            priority=args.priority,
            chaos=chaos,
            variance_threshold=args.variance_threshold,
            risk_aversion=args.risk_aversion,
        )
    else:
        if chaos is not None:
            raise ReproError("--chaos-profile requires the resilient stack")
        if args.risk_aversion or args.variance_threshold is not None:
            raise ReproError(
                "--risk-aversion/--variance-threshold require the resilient stack"
            )
        factory = robopt_factory(
            platforms=platforms,
            model_path=args.model,
            priority=args.priority,
        )
    retry = RetryPolicy(max_retries=args.retries) if args.retries > 0 else None
    # The daemon retrains off the event loop: observations land inline
    # per batch, the refit itself runs on a background thread.
    feedback = _feedback_controller(args, registry, background=True)
    service = BatchOptimizationService(
        factory,
        registry,
        workers=args.workers,
        timeout_s=args.timeout,
        cache=cache,
        template_cache=template_cache,
        retry=retry,
        quarantine_after=args.quarantine_after,
        feedback=feedback,
        model_path=args.model if feedback is not None else None,
    )
    config = DaemonConfig(
        unix_path=args.socket,
        host=args.host,
        port=args.port,
        max_pending=args.max_pending,
        max_batch=args.max_batch,
        default_deadline_ms=args.deadline_ms,
        drain_grace_s=args.drain_grace,
        coalesce=not args.no_coalesce,
    )
    daemon = OptimizationDaemon(service, config, Tracer())

    def ready(addresses):
        # The readiness line: scripts wait for it, and with --port 0 it
        # is the only place the ephemeral port is announced.
        print(f"serving on {' '.join(addresses)}", flush=True)

    try:
        code = asyncio.run(daemon.run(ready=ready))
    except OSError as exc:
        where = args.socket or f"{args.host}:{args.port}"
        raise ReproError(f"cannot bind {where}: {exc}") from exc
    finally:
        if feedback is not None:
            feedback.join()
    _print_feedback_stats(service)
    if cache is not None and args.cache:
        cache.save(args.cache)
        print(f"saved plan cache ({len(cache)} entries) to {args.cache}")
    if template_cache is not None and args.template_cache:
        template_cache.save(args.template_cache)
        print(
            f"saved template cache ({len(template_cache)} templates) "
            f"to {args.template_cache}"
        )
    if code == 0:
        print("daemon drained cleanly", flush=True)
    else:
        print(
            f"daemon exited with {daemon.pending} unanswered jobs",
            file=sys.stderr,
            flush=True,
        )
    return code


def cmd_explain(args) -> int:
    from repro.core.optimizer import Robopt

    registry = _registry(args.platforms)
    model = _load_runtime_model(args.model)
    plan = _load_plan(args)
    with _maybe_trace(args):
        report = Robopt(registry, model).explain(plan, k=args.top_k)
    print(report.render())
    return 0


def cmd_simulate(args) -> int:
    from repro.rheem.execution_plan import single_platform_plan
    from repro.simulator.executor import SimulatedExecutor

    registry = _registry(args.platforms)
    executor = SimulatedExecutor.default(registry)
    plan = _load_plan(args)
    targets = (
        [args.platform] if args.platform else [p.name for p in registry]
    )
    with _maybe_trace(args):
        for name in targets:
            try:
                xplan = single_platform_plan(plan, name, registry)
            except ReproError as exc:
                print(f"{name:>10}: not runnable ({exc})")
                continue
            report = executor.execute(xplan)
            shown = f"{report.runtime_s:.1f}s" if report.ok else report.status
            print(f"{name:>10}: {shown}")
    return 0


# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Robopt reproduction: ML-based cross-platform query optimization",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list built-in workloads").set_defaults(
        func=cmd_workloads
    )

    train = sub.add_parser("train", help="generate TDGEN data and train a model")
    train.add_argument("--platforms", default="java,spark,flink")
    train.add_argument("--points", type=int, default=8000)
    train.add_argument("--algorithm", default="random_forest")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--out", default="robopt_model.pkl")
    train.set_defaults(func=cmd_train)

    def add_plan_args(p):
        p.add_argument("--workload", default="WordCount")
        p.add_argument("--size", default=None, help="e.g. 30MB, 6GB, 1TB")
        p.add_argument("--plan-json", default=None, help="optimize a serialized plan")
        p.add_argument("--platforms", default="java,spark,flink")
        p.add_argument(
            "--trace", default=None, metavar="PATH",
            help="write a JSONL trace of the run (spans + counters)",
        )

    optimize = sub.add_parser("optimize", help="optimize a workload with a model")
    add_plan_args(optimize)
    optimize.add_argument("--model", required=True)
    optimize.add_argument("--priority", default="robopt")
    optimize.add_argument("--out", default=None, help="write the plan as JSON")
    optimize.add_argument(
        "--deadline-ms", type=float, default=None,
        help="optimization deadline; expiry returns the best complete "
        "plan found so far (anytime mode)",
    )
    optimize.set_defaults(func=cmd_optimize)

    batch = sub.add_parser(
        "optimize-batch",
        help="optimize a JSONL job file through the batch service",
    )
    batch.add_argument("--jobs", required=True, help="JSONL job file (one job per line)")
    batch.add_argument(
        "--model", default=None,
        help="runtime model file (required unless --server is given)",
    )
    batch.add_argument(
        "--server", default=None, metavar="ADDR",
        help="send the jobs to a running 'repro serve' daemon at ADDR "
        "('unix:/path' or 'host:port') instead of optimizing locally",
    )
    batch.add_argument("--platforms", default="java,spark,flink")
    batch.add_argument("--priority", default="robopt")
    batch.add_argument(
        "--workers", type=_workers_arg, default=None, metavar="N|auto",
        help="process count: 'auto' (default) sizes the warm pool from the "
        "CPUs actually available to this process, 0 forces serial",
    )
    batch.add_argument(
        "--timeout", type=float, default=None, help="per-job timeout in seconds (pool mode)"
    )
    batch.add_argument(
        "--cache", default=None, metavar="PATH",
        help="JSON plan-cache file (loaded if present, saved after the run)",
    )
    batch.add_argument("--cache-size", type=int, default=256, help="LRU bound")
    batch.add_argument(
        "--template-cache", default=None, metavar="PATH",
        help="JSON template-cache file: enables the second cache tier "
        "(cardinality-stripped template keys, guardrailed candidate "
        "reuse; loaded if present, saved after the run)",
    )
    batch.add_argument(
        "--template-cache-size", type=int, default=256,
        help="LRU bound on distinct templates",
    )
    batch.add_argument(
        "--guardrail", type=float, default=1.2,
        help="serve a template candidate only when its re-costed runtime "
        "is within this factor of the cheapest candidate (>= 1.0)",
    )
    batch.add_argument("--out", default=None, help="write per-job results as JSONL")
    batch.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a JSONL trace of the run (spans + counters)",
    )
    batch.add_argument(
        "--deadline-ms", type=float, default=None,
        help="per-job optimization deadline; expiry returns the best "
        "complete plan found so far (anytime mode)",
    )
    batch.add_argument(
        "--retries", type=int, default=2,
        help="retry failed jobs this many times with backoff (0 = off)",
    )
    batch.add_argument(
        "--quarantine-after", type=int, default=2,
        help="worker deaths before a plan is quarantined",
    )
    batch.add_argument(
        "--chaos-profile", default=None, metavar="SPEC",
        help="inject deterministic faults: a preset name (model-outage, "
        "nan-storm, worker-deaths, cache-corruption, slow-model, "
        "everything) and/or k=v overrides, e.g. "
        "'model-flaky,seed=7' or 'model_failure_rate=0.5'",
    )
    batch.add_argument(
        "--no-resilience", action="store_true",
        help="use the bare optimizer stack (no fallback chain or budget)",
    )
    batch.add_argument(
        "--feedback", action="store_true",
        help="close the loop: execute chosen plans (simulated), feed "
        "observed runtimes back, and retrain + swap the model when the "
        "drift monitor trips or --retrain-after observations accumulate "
        "(retrained models are persisted back to --model)",
    )
    batch.add_argument(
        "--retrain-after", type=int, default=50, metavar="N",
        help="with --feedback: retrain after this many fresh observations "
        "(0 = only on drift)",
    )
    batch.add_argument(
        "--drift-threshold", type=float, default=4.0, metavar="Q",
        help="with --feedback: windowed median q-error above this "
        "triggers an immediate retrain (>= 1.0)",
    )
    batch.add_argument(
        "--risk-aversion", type=float, default=0.0, metavar="K",
        help="rank candidate plans by mean + K*std of the predicted "
        "runtime instead of the mean (0 = off, bit-identical ranking)",
    )
    batch.add_argument(
        "--variance-threshold", type=float, default=None, metavar="R",
        help="treat sustained high relative prediction variance "
        "(std/mean above R over a sliding window) as a model soft "
        "failure and degrade to the fallback chain",
    )
    batch.add_argument(
        "--bench-record", action="store_true",
        help="record trajectory metrics even when invoked from a test "
        "(recording is suppressed under pytest by default)",
    )
    batch.set_defaults(func=cmd_optimize_batch)

    serve = sub.add_parser(
        "serve",
        help="run the persistent optimization daemon (unix socket/TCP)",
    )
    serve.add_argument(
        "--socket", default=None, metavar="PATH", help="unix socket to listen on"
    )
    serve.add_argument("--host", default=None, help="TCP host to listen on")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (0 picks an ephemeral one, announced on stdout)",
    )
    serve.add_argument("--model", required=True)
    serve.add_argument("--platforms", default="java,spark,flink")
    serve.add_argument("--priority", default="robopt")
    serve.add_argument(
        "--workers", type=_workers_arg, default=None, metavar="N|auto",
        help="process count: 'auto' (default) sizes the warm pool from the "
        "CPUs actually available to this process, 0 forces serial",
    )
    serve.add_argument(
        "--timeout", type=float, default=None,
        help="per-job timeout in seconds (pool mode)",
    )
    serve.add_argument(
        "--cache", default=None, metavar="PATH",
        help="persist the plan cache here (loaded if present, saved on exit)",
    )
    serve.add_argument("--cache-size", type=int, default=256, help="LRU bound")
    serve.add_argument(
        "--no-cache", action="store_true",
        help="serve without a plan cache (every request re-optimizes)",
    )
    serve.add_argument(
        "--template-cache", default=None, metavar="PATH",
        help="enable the template cache tier, persisted here (loaded if "
        "present, saved on exit); parametric streams whose cardinalities "
        "never repeat reuse plans through it",
    )
    serve.add_argument(
        "--template-cache-size", type=int, default=256,
        help="LRU bound on distinct templates",
    )
    serve.add_argument(
        "--guardrail", type=float, default=1.2,
        help="serve a template candidate only when its re-costed runtime "
        "is within this factor of the cheapest candidate (>= 1.0)",
    )
    serve.add_argument(
        "--max-pending", type=int, default=64,
        help="admission bound: accepted-but-unanswered requests beyond "
        "this are refused with a structured 'overloaded' error",
    )
    serve.add_argument(
        "--max-batch", type=int, default=32,
        help="largest micro-batch one dispatch drains from the queue",
    )
    serve.add_argument(
        "--deadline-ms", type=float, default=None,
        help="default per-request deadline for requests that carry none",
    )
    serve.add_argument(
        "--drain-grace", type=float, default=30.0, metavar="SECONDS",
        help="how long a drain waits for in-flight jobs before giving up",
    )
    serve.add_argument(
        "--no-coalesce", action="store_true",
        help="disable cross-client in-flight coalescing",
    )
    serve.add_argument(
        "--retries", type=int, default=2,
        help="retry failed jobs this many times with backoff (0 = off)",
    )
    serve.add_argument(
        "--quarantine-after", type=int, default=2,
        help="worker deaths before a plan is quarantined",
    )
    serve.add_argument(
        "--chaos-profile", default=None, metavar="SPEC",
        help="inject deterministic faults (see optimize-batch --chaos-profile)",
    )
    serve.add_argument(
        "--no-resilience", action="store_true",
        help="use the bare optimizer stack (no fallback chain or budget)",
    )
    serve.add_argument(
        "--feedback", action="store_true",
        help="close the loop: execute chosen plans (simulated), feed "
        "observed runtimes back, and retrain + swap the model off the "
        "critical path when drift trips or --retrain-after observations "
        "accumulate (retrained models are persisted back to --model)",
    )
    serve.add_argument(
        "--retrain-after", type=int, default=50, metavar="N",
        help="with --feedback: retrain after this many fresh observations "
        "(0 = only on drift)",
    )
    serve.add_argument(
        "--drift-threshold", type=float, default=4.0, metavar="Q",
        help="with --feedback: windowed median q-error above this "
        "triggers an immediate retrain (>= 1.0)",
    )
    serve.add_argument(
        "--risk-aversion", type=float, default=0.0, metavar="K",
        help="rank candidate plans by mean + K*std of the predicted "
        "runtime instead of the mean (0 = off, bit-identical ranking)",
    )
    serve.add_argument(
        "--variance-threshold", type=float, default=None, metavar="R",
        help="treat sustained high relative prediction variance "
        "(std/mean above R over a sliding window) as a model soft "
        "failure and degrade to the fallback chain",
    )
    serve.set_defaults(func=cmd_serve)

    explain = sub.add_parser("explain", help="optimize and explain the decision")
    add_plan_args(explain)
    explain.add_argument("--model", required=True)
    explain.add_argument("--top-k", type=int, default=3)
    explain.set_defaults(func=cmd_explain)

    simulate = sub.add_parser("simulate", help="run a workload on the simulator")
    add_plan_args(simulate)
    simulate.add_argument("--platform", default=None, help="one platform (default: all)")
    simulate.set_defaults(func=cmd_simulate)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
