"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``workloads`` — list the built-in Table II workloads;
* ``train`` — generate TDGEN data and train a runtime model;
* ``optimize`` — optimize a workload (or a plan JSON) with a model;
* ``simulate`` — run a workload on one platform (or all) and report
  simulated runtimes;
* ``explain`` — optimize and print the decision report (chosen plan,
  alternatives, single-platform predictions).

Sizes accept human suffixes: ``30MB``, ``6GB``, ``1TB``.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from typing import List, Optional

from repro.exceptions import ReproError

_SUFFIXES = {"KB": 2 ** 10, "MB": 2 ** 20, "GB": 2 ** 30, "TB": 2 ** 40}


def parse_size(text: str) -> float:
    """Parse ``"6GB"``-style sizes into bytes."""
    cleaned = text.strip().upper().replace(" ", "")
    for suffix, factor in _SUFFIXES.items():
        if cleaned.endswith(suffix):
            return float(cleaned[: -len(suffix)]) * factor
    return float(cleaned)


def _registry(names: str):
    from repro.rheem.platforms import default_registry

    return default_registry(tuple(n.strip() for n in names.split(",")))


def _workload_plan(name: str, size_bytes: Optional[float], args):
    from repro.workloads import TABLE2

    key = {k.lower().replace(" ", "").replace("-", ""): k for k in TABLE2}
    normalized = name.lower().replace(" ", "").replace("-", "")
    if normalized not in key:
        raise ReproError(
            f"unknown workload {name!r}; known: {', '.join(sorted(TABLE2))}"
        )
    full = key[normalized]
    module, _, _ = TABLE2[full]
    kwargs = {}
    if size_bytes is not None:
        kwargs["size_bytes"] = size_bytes
    if full == "TPC-H Q1":
        return module.q1(**kwargs)
    if full == "TPC-H Q3":
        return module.q3(**kwargs)
    return module.plan(**kwargs)


def _load_plan(args):
    if args.plan_json:
        from repro.rheem.serialization import plan_from_json

        with open(args.plan_json) as f:
            return plan_from_json(f.read())
    return _workload_plan(
        args.workload, parse_size(args.size) if args.size else None, args
    )


@contextmanager
def _maybe_trace(args):
    """Run the command body under an ambient tracer if ``--trace`` was given.

    The trace is exported (JSONL) after the body finishes, even when it
    raises — a partial trace of a failed run is exactly when you want one.
    """
    path = getattr(args, "trace", None)
    if not path:
        yield None
        return
    from repro.obs import Tracer, use_tracer

    tracer = Tracer()
    try:
        with use_tracer(tracer):
            yield tracer
    finally:
        try:
            n = tracer.export(path)
        except OSError as exc:
            raise ReproError(f"cannot write trace to {path}: {exc}") from exc
        print(f"wrote {n} trace records to {path}")


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


def cmd_workloads(args) -> int:
    from repro.workloads import TABLE2

    print(f"{'workload':<12} {'#ops':>5}  dataset")
    for name, (module, n_ops, dataset) in TABLE2.items():
        print(f"{name:<12} {n_ops:>5}  {dataset}")
    return 0


def cmd_train(args) -> int:
    from repro.ml.model import RuntimeModel
    from repro.simulator.executor import SimulatedExecutor
    from repro.tdgen.generator import TrainingDataGenerator

    registry = _registry(args.platforms)
    executor = SimulatedExecutor.default(registry, seed=args.seed)
    tdgen = TrainingDataGenerator(registry, executor, seed=args.seed)
    print(f"generating {args.points} training points on {registry.names} ...")
    dataset = tdgen.generate(args.points)
    stats = tdgen.stats
    print(
        f"  executed {stats.n_executed}, interpolated {stats.n_imputed} "
        f"({stats.executed_fraction:.0%} executed)"
    )
    print(f"training a {args.algorithm} model ...")
    model = RuntimeModel.train(dataset, args.algorithm, seed=args.seed)
    print(f"  holdout: {model.metrics}")
    model.save(args.out)
    print(f"saved model to {args.out}")
    return 0


def cmd_optimize(args) -> int:
    from repro.core.optimizer import Robopt
    from repro.ml.model import RuntimeModel
    from repro.rheem.serialization import execution_plan_to_json

    registry = _registry(args.platforms)
    model = RuntimeModel.load(args.model)
    plan = _load_plan(args)
    robopt = Robopt(registry, model, priority=args.priority)
    with _maybe_trace(args):
        result = robopt.optimize(plan)
    print(result.execution_plan.describe())
    print(
        f"predicted runtime: {result.predicted_runtime:.2f}s  "
        f"(optimization took {result.stats.latency_s * 1e3:.1f}ms, "
        f"{result.stats.total_vectors} plan vectors)"
    )
    if args.out:
        with open(args.out, "w") as f:
            f.write(execution_plan_to_json(result.execution_plan))
        print(f"wrote execution plan to {args.out}")
    return 0


def cmd_explain(args) -> int:
    from repro.core.optimizer import Robopt
    from repro.ml.model import RuntimeModel

    registry = _registry(args.platforms)
    model = RuntimeModel.load(args.model)
    plan = _load_plan(args)
    with _maybe_trace(args):
        report = Robopt(registry, model).explain(plan, k=args.top_k)
    print(report.render())
    return 0


def cmd_simulate(args) -> int:
    from repro.rheem.execution_plan import single_platform_plan
    from repro.simulator.executor import SimulatedExecutor

    registry = _registry(args.platforms)
    executor = SimulatedExecutor.default(registry)
    plan = _load_plan(args)
    targets = (
        [args.platform] if args.platform else [p.name for p in registry]
    )
    with _maybe_trace(args):
        for name in targets:
            try:
                xplan = single_platform_plan(plan, name, registry)
            except ReproError as exc:
                print(f"{name:>10}: not runnable ({exc})")
                continue
            report = executor.execute(xplan)
            shown = f"{report.runtime_s:.1f}s" if report.ok else report.status
            print(f"{name:>10}: {shown}")
    return 0


# ---------------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Robopt reproduction: ML-based cross-platform query optimization",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list built-in workloads").set_defaults(
        func=cmd_workloads
    )

    train = sub.add_parser("train", help="generate TDGEN data and train a model")
    train.add_argument("--platforms", default="java,spark,flink")
    train.add_argument("--points", type=int, default=8000)
    train.add_argument("--algorithm", default="random_forest")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--out", default="robopt_model.pkl")
    train.set_defaults(func=cmd_train)

    def add_plan_args(p):
        p.add_argument("--workload", default="WordCount")
        p.add_argument("--size", default=None, help="e.g. 30MB, 6GB, 1TB")
        p.add_argument("--plan-json", default=None, help="optimize a serialized plan")
        p.add_argument("--platforms", default="java,spark,flink")
        p.add_argument(
            "--trace", default=None, metavar="PATH",
            help="write a JSONL trace of the run (spans + counters)",
        )

    optimize = sub.add_parser("optimize", help="optimize a workload with a model")
    add_plan_args(optimize)
    optimize.add_argument("--model", required=True)
    optimize.add_argument("--priority", default="robopt")
    optimize.add_argument("--out", default=None, help="write the plan as JSON")
    optimize.set_defaults(func=cmd_optimize)

    explain = sub.add_parser("explain", help="optimize and explain the decision")
    add_plan_args(explain)
    explain.add_argument("--model", required=True)
    explain.add_argument("--top-k", type=int, default=3)
    explain.set_defaults(func=cmd_explain)

    simulate = sub.add_parser("simulate", help="run a workload on the simulator")
    add_plan_args(simulate)
    simulate.add_argument("--platform", default=None, help="one platform (default: all)")
    simulate.set_defaults(func=cmd_simulate)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
