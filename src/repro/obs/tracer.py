"""The tracer: nested spans, counters, and a zero-overhead default.

Every optimization run in this repository is a *measurement* — the
paper's headline results are enumerated-subplan counts (Table I),
optimization latencies (Fig. 9) and pruning effectiveness (§IV-E). The
tracer makes those measurements first-class: instrumented components
emit **spans** (named, nested, wall-clock-timed regions with arbitrary
attributes) and **counters** (monotonic named totals), and a finished
trace exports to JSONL for offline analysis.

Two tracer implementations share one duck type:

* :class:`Tracer` — records spans and counters in memory;
* :class:`NullTracer` — the ambient default; every operation is a no-op
  and ``enabled`` is ``False`` so hot paths can skip even argument
  construction (``if tracer.enabled: ...``).

The *ambient* tracer is held in a :mod:`contextvars` variable so traces
nest correctly across threads and nested optimizer calls::

    tracer = Tracer()
    with use_tracer(tracer):
        robopt.optimize(plan)
    tracer.export("trace.jsonl")

Instrumented library code never pays for this when tracing is off: the
``NullTracer`` singleton's ``span`` returns a reusable no-op context
manager and ``count``/``event`` return immediately.
"""

from __future__ import annotations

import contextvars
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "use_tracer",
]


class Span:
    """One named, timed region of a trace.

    Spans nest: ``parent_id`` is the id of the enclosing open span (or
    ``None`` at the root). ``attrs`` holds arbitrary JSON-serializable
    metadata; more can be attached while the span is open via
    :meth:`set`.
    """

    __slots__ = ("span_id", "parent_id", "name", "start_s", "end_s", "attrs")

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        start_s: float,
        attrs: Dict[str, Any],
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.attrs = attrs

    @property
    def duration_s(self) -> float:
        """Wall-clock seconds the span covered (0.0 while still open)."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the span (e.g. results known only at exit)."""
        self.attrs.update(attrs)

    def to_record(self) -> Dict[str, Any]:
        """The JSONL representation of the span."""
        record: Dict[str, Any] = {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Span({self.name!r}, {self.duration_s * 1e3:.2f}ms)"


class Tracer:
    """Records nested spans and counters for one traced run.

    Not thread-safe: use one tracer per traced run (the ambient-tracer
    mechanism is a contextvar, so concurrent runs each see their own).
    """

    enabled = True

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._t0 = clock()
        self._next_id = 0
        self._stack: List[Span] = []
        #: finished spans, in completion order
        self.spans: List[Span] = []
        #: monotonic named totals
        self.counters: Dict[str, float] = {}

    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a nested span; closes (and records) it on exit."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(self._next_id, parent, name, self._clock() - self._t0, attrs)
        self._next_id += 1
        self._stack.append(span)
        try:
            yield span
        finally:
            span.end_s = self._clock() - self._t0
            self._stack.pop()
            self.spans.append(span)

    def count(self, name: str, value: float = 1) -> None:
        """Add ``value`` to the named counter."""
        self.counters[name] = self.counters.get(name, 0) + value

    def event(self, name: str, **attrs: Any) -> None:
        """Record a zero-duration span (a point-in-time marker)."""
        now = self._clock() - self._t0
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(self._next_id, parent, name, now, attrs)
        self._next_id += 1
        span.end_s = now
        self.spans.append(span)

    # ------------------------------------------------------------------
    def records(self) -> List[Dict[str, Any]]:
        """All trace records (spans in completion order, then counters)."""
        out = [span.to_record() for span in self.spans]
        for name in sorted(self.counters):
            out.append(
                {"type": "counter", "name": name, "value": self.counters[name]}
            )
        return out

    def export(self, path) -> int:
        """Write the trace as JSONL; returns the number of records."""
        from repro.obs.export import write_trace

        return write_trace(self, path)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Tracer(spans={len(self.spans)}, counters={len(self.counters)})"
        )


class _NullSpan:
    """The reusable no-op span handed out by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-overhead default tracer: every operation is a no-op."""

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, value: float = 1) -> None:
        pass

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def records(self) -> List[Dict[str, Any]]:
        return []

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "NullTracer()"


#: The process-wide no-op singleton (the ambient default).
NULL_TRACER = NullTracer()

_CURRENT: contextvars.ContextVar = contextvars.ContextVar(
    "repro_tracer", default=NULL_TRACER
)


def current_tracer():
    """The ambient tracer (the :data:`NULL_TRACER` unless one is active)."""
    return _CURRENT.get()


@contextmanager
def use_tracer(tracer) -> Iterator[Any]:
    """Make ``tracer`` ambient for the duration of the ``with`` block."""
    token = _CURRENT.set(tracer)
    try:
        yield tracer
    finally:
        _CURRENT.reset(token)
