"""JSONL trace export and re-import.

The on-disk format is one JSON object per line. Two record types:

* ``{"type": "span", "id", "parent", "name", "start_s", "duration_s",
  "attrs"?}`` — a finished span; ``parent`` is the id of the enclosing
  span or ``null`` at the root; times are seconds relative to tracer
  creation;
* ``{"type": "counter", "name", "value"}`` — a final counter total.

Counters come last, so a streamed reader sees the spans in completion
order first. :func:`read_trace` round-trips a file written by
:func:`write_trace`; :func:`counters` and :func:`spans_named` are small
conveniences for assertions and trace analysis.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, List


def _sanitize(value: Any) -> Any:
    """Make a value JSON-safe (numpy scalars, non-finite floats, tuples)."""
    if isinstance(value, dict):
        return {str(k): _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_sanitize(v) for v in value]
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)  # "inf" / "nan" — JSON has no literal for these
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            return _sanitize(value.item())  # numpy scalar
        except Exception:
            pass
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def write_trace(tracer, path) -> int:
    """Write a tracer's records as JSONL; returns the record count."""
    records = tracer.records()
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as f:
        for record in records:
            f.write(json.dumps(_sanitize(record)) + "\n")
    return len(records)


def read_trace(path) -> List[Dict[str, Any]]:
    """Parse a JSONL trace file back into a list of record dicts."""
    records = []
    with Path(path).open() as f:
        for line in f:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def counters(records: List[Dict[str, Any]]) -> Dict[str, float]:
    """The counter records of a parsed trace as a name → value dict."""
    return {
        r["name"]: r["value"] for r in records if r.get("type") == "counter"
    }


def spans_named(records: List[Dict[str, Any]], name: str) -> List[Dict[str, Any]]:
    """All span records with the given name."""
    return [
        r for r in records if r.get("type") == "span" and r.get("name") == name
    ]
