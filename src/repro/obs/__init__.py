"""Observability for the optimizer: spans, counters, JSONL traces.

The paper's claims are measurements; ``repro.obs`` is the subsystem that
produces them. Instrumented components (the priority enumerator, the
object enumerator, the runtime model, the simulated executor, TDGEN)
emit nested spans and counters through the *ambient* tracer, which is a
no-op by default — tracing costs nothing unless a run opts in:

    from repro.obs import Tracer, use_tracer

    tracer = Tracer()
    with use_tracer(tracer):
        result = robopt.optimize(plan)
    tracer.export("trace.jsonl")

The CLI exposes the same via ``repro optimize --trace trace.jsonl``.
See ``docs/observability.md`` for the span taxonomy and trace format.
"""

from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    use_tracer,
)
from repro.obs.export import counters, read_trace, spans_named, write_trace

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "use_tracer",
    "write_trace",
    "read_trace",
    "counters",
    "spans_named",
]
