"""The RHEEMix stand-in: a linear, cost-model-based optimizer (§II, §VII).

Rheem's cost-based optimizer estimates every execution operator with a
linear cost formula whose coefficients administrators must tune — the
paper's §II shows a poorly tuned model costs an order of magnitude, and
§VII uses the *well-tuned* variant as the main baseline.

* :mod:`repro.cost.cost_model` — the linear per-(operator, platform)
  cost model and its feature decomposition;
* :mod:`repro.cost.calibration` — the two tuning procedures: *well-tuned*
  (global non-negative least squares against execution logs — the
  best-case linear model, standing in for the authors' two weeks of
  trial and error) and *simply-tuned* (single-operator profiling, §II);
* :mod:`repro.cost.optimizer` — :class:`RheemixOptimizer`, the classical
  object-based enumeration driven by the cost model, with the same
  boundary pruning as Robopt (the paper keeps pruning identical across
  systems for fairness).
"""

from repro.cost.cost_model import CostModel, CostParameters, FeatureCostModel
from repro.cost.calibration import calibrate_simply_tuned, calibrate_well_tuned
from repro.cost.optimizer import RheemixOptimizer

__all__ = [
    "CostModel",
    "CostParameters",
    "FeatureCostModel",
    "calibrate_well_tuned",
    "calibrate_simply_tuned",
    "RheemixOptimizer",
]
