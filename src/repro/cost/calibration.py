"""Tuning the cost model: well-tuned vs. simply-tuned (§II, Fig. 2).

*Well-tuned* reproduces the outcome of the authors' "two weeks of
trial-and-error": the best coefficients a linear model can have, obtained
here by non-negative least squares over a diverse body of executed jobs
(TDGEN jobs labelled by the simulator). Whatever error remains is the
*structural* error of assuming linearity — precisely the gap the paper's
ML model closes.

*Simply-tuned* reproduces "single operator profiling": each operator kind
is benchmarked in isolation on each platform at one cardinality, and the
measured time (which unavoidably absorbs the platform's startup and the
micro-benchmark's own scaffolding) is divided by the cardinality to get a
per-tuple coefficient. This inflates the per-tuple costs of heavyweight
platforms at scale and underestimates everything fixed — the Fig. 2
failure mode (e.g. Word2NVec forced onto the wrong platform by more than
an order of magnitude).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.exceptions import GenerationError
from repro.cost.cost_model import CostModel, CostParameters
from repro.ml.linear import nonnegative_least_squares
from repro.rheem.datasets import DatasetProfile
from repro.rheem.execution_plan import ExecutionPlan
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.operators import KINDS, operator
from repro.rheem.platforms import PlatformRegistry
from repro.simulator.executor import SimulatedExecutor
from repro.rheem.conversion import CONVERSION_KINDS
from repro.tdgen.generator import TrainingDataGenerator
from repro.tdgen.profiles import ConfigurationProfile


def calibrate_well_tuned(
    registry: PlatformRegistry,
    executor: SimulatedExecutor,
    seed: int = 0,
    n_jobs: int = 1200,
    shapes: Sequence[str] = (
        "pipeline",
        "juncture",
        "replicate",
        "loop",
        "ml_loop",
        "sgd_loop",
    ),
) -> CostModel:
    """Globally fit the linear cost model against executed jobs.

    Generates diverse TDGEN jobs, executes them on the simulator, builds
    the linear design matrix of :meth:`CostModel.design_row` and solves a
    non-negative least squares in *log-balanced* form (rows are scaled by
    1/(runtime+1) so short jobs are not drowned out by day-long ones —
    the numerical analogue of an administrator tuning against a mixed
    workload rather than only the biggest queries).
    """
    tdgen = TrainingDataGenerator(registry, executor, seed=seed)
    dataset = tdgen.generate(
        n_jobs,
        shapes=shapes,
        assignments_per_plan=4,
        include_xplans=True,
    )
    xplans = []
    runtimes = []
    for row_meta, runtime in zip(dataset.meta, dataset.y):
        # Calibrate on actually-executed, successful jobs only: failure
        # penalties and interpolated labels would poison a linear fit
        # (a linear model cannot represent OOM cliffs anyway).
        if row_meta.get("status") != "ok" or not row_meta.get("executed"):
            continue
        xplans.append(row_meta["xplan"])
        runtimes.append(runtime)
    if len(xplans) < 50:
        raise GenerationError(
            f"calibration produced only {len(xplans)} usable jobs"
        )
    kinds = sorted({op.kind_name for xp in xplans for op in xp.plan.operators.values()})
    platforms = list(registry.names)
    columns = CostModel.design_columns(kinds, platforms, CONVERSION_KINDS)
    design = np.vstack([CostModel(registry, CostParameters()).design_row(xp, columns) for xp in xplans])
    y = np.asarray(runtimes, dtype=np.float64)
    weights = 1.0 / (y + 1.0)
    coefficients = nonnegative_least_squares(
        design * weights[:, None], y * weights, iterations=500, seed=seed
    )
    return CostModel.from_coefficients(registry, columns, coefficients)


def _micro_benchmark_plan(
    kind_name: str, cardinality: float, registry: PlatformRegistry
) -> Optional[LogicalPlan]:
    """A minimal runnable plan exercising one operator kind."""
    kind = KINDS[kind_name]
    plan = LogicalPlan(f"profile_{kind_name}")
    dataset = DatasetProfile("profile", cardinality, 100.0)
    if kind.is_source:
        src = plan.add(operator(kind_name), dataset=dataset)
        sink = plan.add(operator("Callback"))
        plan.connect(src, sink)
        return plan
    src = plan.add(operator("TextFileSource"), dataset=dataset)
    if kind.is_sink:
        target = plan.add(operator(kind_name))
        plan.connect(src, target)
        return plan
    if kind.arity_in == 1:
        target = plan.add(operator(kind_name))
        sink = plan.add(operator("Callback"))
        plan.chain(src, target, sink)
        return plan
    if kind.arity_in == 2:
        src2 = plan.add(
            operator("TextFileSource"), dataset=DatasetProfile("p2", cardinality, 100.0)
        )
        target = plan.add(operator(kind_name))
        sink = plan.add(operator("Callback"))
        plan.connect(src, target)
        plan.connect(src2, target)
        plan.connect(target, sink)
        return plan
    return None


def calibrate_simply_tuned(
    registry: PlatformRegistry,
    executor: SimulatedExecutor,
    profile_cardinality: float = 1e6,
) -> CostModel:
    """Single-operator profiling (§II's "simply-tuned" cost model).

    For each (kind, platform), runs the kind in a minimal plan at one
    cardinality and derives ``w_in = runtime / cardinality``. Startup and
    scaffolding costs leak into the per-tuple coefficient, fixed costs are
    assumed zero, and conversion coefficients come from a single
    two-platform micro-benchmark — all standard shortcuts of a quick
    calibration, and the source of its order-of-magnitude errors.
    """
    params = CostParameters()
    for platform in registry:
        for kind_name in KINDS:
            if not platform.supports(kind_name):
                continue
            plan = _micro_benchmark_plan(kind_name, profile_cardinality, registry)
            if plan is None:
                continue
            supported = all(
                platform.supports(op.kind_name) for op in plan.operators.values()
            )
            assignment = {}
            for op_id, op in plan.operators.items():
                if supported:
                    assignment[op_id] = platform.name
                elif platform.supports(op.kind_name) and op.kind_name == kind_name:
                    assignment[op_id] = platform.name
                else:
                    fallback = next(
                        p.name for p in registry if p.supports(op.kind_name)
                    )
                    assignment[op_id] = fallback
            report = executor.execute(ExecutionPlan(plan, assignment, registry))
            if not report.ok:
                continue
            params.operator_coeffs[(kind_name, platform.name)] = (
                0.0,
                report.runtime_s / profile_cardinality,
                0.0,
            )
    # One two-platform run estimates every conversion coefficient.
    names = list(registry.names)
    if len(names) >= 2:
        plan = _micro_benchmark_plan("Map", profile_cardinality, registry)
        assignment = {}
        for op_id, op in plan.operators.items():
            choice = names[1] if op.kind_name == "Map" else names[0]
            if not registry[choice].supports(op.kind_name):
                choice = next(p.name for p in registry if p.supports(op.kind_name))
            assignment[op_id] = choice
        xplan = ExecutionPlan(plan, assignment, registry)
        report = executor.execute(xplan)
        if report.ok and xplan.conversions():
            per_conv = report.runtime_s / len(xplan.conversions())
            for kind in CONVERSION_KINDS:
                params.conversion_coeffs[kind] = (
                    0.0,
                    per_conv / profile_cardinality,
                )
    return CostModel(registry, params)
