"""The linear cost model of the cost-based baseline.

Rheem's cost functions are linear in the operators' input/output
cardinalities, with per-(operator kind, platform) coefficients plus
platform startup and conversion terms (§II: "these solutions assume a
fixed form of function, e.g., linear, which may not reflect reality").
We reproduce exactly that structure:

``cost(plan) = Σ_p used(p)·startup_p
             + Σ_op fix_{k,p} + iters·(w_in_{k,p}·in·cx + w_out_{k,p}·out)
             + Σ_conv cfix_c + iters·cw_c·card``

Two deliberate, realistic blind spots (the paper's observed failure
modes):

* per-operator *fixed* costs are not multiplied by loop iterations — the
  classical cost-model omission that hides per-iteration scheduling
  overheads (Fig. 12(a): RHEEMix keeps tiny per-iteration operators on
  Spark);
* no interaction terms — operator pairs like cache→sample cannot be
  expressed at all (Fig. 12(b)).

The model *does* know platform memory limits (administrators configure
them): plans whose working set exceeds a local platform's memory get an
infinite cost, mirroring how the real cardinality-injected RHEEMix avoids
obviously infeasible plans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.exceptions import ModelError
from repro.rheem.execution_plan import ExecutionPlan
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.platforms import PlatformRegistry
from repro.simulator.profiles import COMPLEXITY_WORK

#: Working-set capacity the cost model assumes for local platforms, bytes.
LOCAL_MEMORY_BYTES = 20 * 1024 ** 3

#: Cost assigned to plans the model deems infeasible.
INFEASIBLE_COST = float("inf")


@dataclass
class CostParameters:
    """Tunable coefficients of the cost model.

    ``operator_coeffs[(kind, platform)] = (fixed, w_in, w_out)``;
    ``conversion_coeffs[kind] = (fixed, w_card)``;
    ``startup[platform] = seconds``.
    """

    operator_coeffs: Dict[Tuple[str, str], Tuple[float, float, float]] = field(
        default_factory=dict
    )
    conversion_coeffs: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    startup: Dict[str, float] = field(default_factory=dict)

    def n_parameters(self) -> int:
        """How many coefficients an administrator would have to tune."""
        return (
            3 * len(self.operator_coeffs)
            + 2 * len(self.conversion_coeffs)
            + len(self.startup)
        )


class FeatureCostModel:
    """The cost model vectorized over plan-vector matrices.

    A linear surrogate of :class:`CostModel` that evaluates directly on
    the ML feature layout (:class:`repro.core.features.FeatureSchema`) —
    ``predict(X) -> costs`` over whole enumerations in one matrix
    product, exactly like the ML model it stands in for. This is the
    middle level of the resilience fallback chain
    (:class:`repro.resilience.FallbackRuntimeModel`): when the learned
    model trips its circuit breaker, pruning and plan selection continue
    against this calibrated-cost oracle without leaving vectorized
    execution.

    The surrogate is faithful to the linear cost structure up to one
    deliberate coarsening: the per-kind output-cardinality weight cannot
    be split per platform in the feature layout, so ``w_out`` is averaged
    over kinds into the per-platform aggregate column. Platform startup
    costs are applied exactly (a platform is "used" when its operator
    count cell is positive).

    Construct from calibrated :class:`CostParameters`
    (:meth:`from_parameters`) or fall back to category-informed defaults
    (clusters pay startup, everything pays per-tuple work) — crude, but
    always available and always finite.
    """

    #: Default coefficients when no calibration is available.
    DEFAULT_FIXED = 0.02
    DEFAULT_W_IN = 2e-8
    DEFAULT_W_OUT = 1e-8
    DEFAULT_CONV_FIXED = 0.1
    DEFAULT_CONV_W = 4e-8
    DEFAULT_STARTUP = {"local": 0.1, "distributed": 3.0}

    def __init__(self, schema, parameters: Optional[CostParameters] = None):
        self.schema = schema
        self.n_features = schema.n_features
        registry = schema.registry
        weights = np.zeros(schema.n_features, dtype=np.float64)
        startup = np.zeros(len(registry), dtype=np.float64)

        if parameters is None:
            for kind in schema.kind_names:
                for pi in range(schema.k):
                    weights[schema.op_platform_cell(kind, pi)] += self.DEFAULT_FIXED
                    weights[
                        schema.op_platform_in_card_cell(kind, pi)
                    ] += self.DEFAULT_W_IN
            for pi in range(schema.k):
                weights[schema.platform_out_card_cell(pi)] += self.DEFAULT_W_OUT
            for conv in schema.conversion_kinds:
                for pi in range(schema.k):
                    weights[
                        schema.conv_platform_cell(conv, pi)
                    ] += self.DEFAULT_CONV_FIXED
                weights[schema.conv_input_card_cell(conv)] += self.DEFAULT_CONV_W
            for pi, platform in enumerate(registry):
                startup[pi] = self.DEFAULT_STARTUP.get(
                    platform.category, self.DEFAULT_STARTUP["distributed"]
                )
        else:
            wout_sums = np.zeros(len(registry), dtype=np.float64)
            wout_counts = np.zeros(len(registry), dtype=np.float64)
            for (kind, pname), (fixed, w_in, w_out) in (
                parameters.operator_coeffs.items()
            ):
                if kind not in schema.kind_names or pname not in registry:
                    continue
                pi = registry.index(pname)
                weights[schema.op_platform_cell(kind, pi)] += fixed
                weights[schema.op_platform_in_card_cell(kind, pi)] += w_in
                wout_sums[pi] += w_out
                wout_counts[pi] += 1.0
            for pi in range(len(registry)):
                if wout_counts[pi]:
                    weights[schema.platform_out_card_cell(pi)] += (
                        wout_sums[pi] / wout_counts[pi]
                    )
            for conv, (cfix, cw) in parameters.conversion_coeffs.items():
                if conv not in schema.conversion_kinds:
                    continue
                for pi in range(schema.k):
                    weights[schema.conv_platform_cell(conv, pi)] += cfix
                weights[schema.conv_input_card_cell(conv)] += cw
            for pname, value in parameters.startup.items():
                if pname in registry:
                    startup[registry.index(pname)] = value

        self._weights = weights
        self._startup = startup
        self._count_cols = np.array(
            [schema.platform_count_cell(pi) for pi in range(schema.k)],
            dtype=np.int64,
        )

    @classmethod
    def from_parameters(cls, schema, parameters: CostParameters) -> "FeatureCostModel":
        """Build the surrogate from calibrated coefficients."""
        return cls(schema, parameters)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Linear cost per plan vector; finite and non-negative."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        if X.shape[1] != self.n_features:
            raise ModelError(
                f"expected {self.n_features} features, got {X.shape[1]}"
            )
        X = np.nan_to_num(X, posinf=0.0, neginf=0.0)
        costs = X @ self._weights
        # Startup: paid once per platform whose operator count is > 0.
        costs += (X[:, self._count_cols] > 0.0) @ self._startup
        return np.maximum(np.nan_to_num(costs), 0.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FeatureCostModel(platforms={self.schema.registry.names})"


class CostModel:
    """Evaluates the linear cost of (partial) execution plans."""

    def __init__(self, registry: PlatformRegistry, parameters: CostParameters):
        self.registry = registry
        self.parameters = parameters

    # ------------------------------------------------------------------
    def _operator_cost(
        self, plan: LogicalPlan, op_id: int, platform_name: str, cards
    ) -> float:
        op = plan.operators[op_id]
        fixed, w_in, w_out = self.parameters.operator_coeffs.get(
            (op.kind_name, platform_name), (0.0, 0.0, 0.0)
        )
        in_card, out_card = cards[op_id]
        iters = plan.loop_iterations(op_id)
        cx = COMPLEXITY_WORK[op.udf_complexity]
        # Fixed costs deliberately not scaled by iterations (see module doc).
        return fixed + iters * (w_in * in_card * cx + w_out * out_card)

    def _memory_feasible(
        self, plan: LogicalPlan, op_id: int, platform_name: str, cards
    ) -> bool:
        platform = self.registry[platform_name]
        if platform.category != "local":
            return True
        tuple_size = plan.average_input_tuple_size() or 100.0
        in_card, out_card = cards[op_id]
        return max(in_card, out_card) * tuple_size <= LOCAL_MEMORY_BYTES

    def cost_of_assignment(
        self,
        plan: LogicalPlan,
        assignment: Mapping[int, str],
        scope: Optional[Iterable[int]] = None,
    ) -> float:
        """Cost of a (partial) plan: operators in ``scope`` plus internal
        conversions and the startup of every platform used."""
        cards = plan.cardinalities()
        ids = list(assignment) if scope is None else list(scope)
        total = 0.0
        used = set()
        for op_id in ids:
            platform_name = assignment[op_id]
            if not self._memory_feasible(plan, op_id, platform_name, cards):
                return INFEASIBLE_COST
            total += self._operator_cost(plan, op_id, platform_name, cards)
            used.add(platform_name)
        for name in used:
            total += self.parameters.startup.get(name, 0.0)

        from repro.rheem.conversion import conversion_path

        id_set = set(ids)
        for u, v in plan.edges:
            if u not in id_set or v not in id_set:
                continue
            src = self.registry[assignment[u]]
            dst = self.registry[assignment[v]]
            if src.name == dst.name:
                continue
            in_loop = plan.in_loop(u) and plan.in_loop(v)
            iters = min(plan.loop_iterations(u), plan.loop_iterations(v))
            card = cards[u][1]
            for step in conversion_path(src, dst, in_loop=in_loop):
                cfix, cw = self.parameters.conversion_coeffs.get(
                    step.kind, (0.0, 0.0)
                )
                total += cfix + iters * cw * card
        return total

    def cost_of_plan(self, xplan: ExecutionPlan) -> float:
        """Cost of a complete execution plan."""
        return self.cost_of_assignment(xplan.plan, xplan.assignment)

    # ------------------------------------------------------------------
    # Feature decomposition used by the calibration's least-squares fit.
    # ------------------------------------------------------------------
    @staticmethod
    def design_columns(
        kinds: Iterable[str], platforms: Iterable[str], conversions: Iterable[str]
    ) -> Dict[str, int]:
        """Column index per coefficient name for the calibration matrix."""
        columns: Dict[str, int] = {}
        for p in platforms:
            columns[f"startup::{p}"] = len(columns)
        for k in kinds:
            for p in platforms:
                columns[f"fix::{k}::{p}"] = len(columns)
                columns[f"win::{k}::{p}"] = len(columns)
                columns[f"wout::{k}::{p}"] = len(columns)
        for c in conversions:
            columns[f"cfix::{c}"] = len(columns)
            columns[f"cw::{c}"] = len(columns)
        return columns

    def design_row(
        self, xplan: ExecutionPlan, columns: Dict[str, int]
    ) -> np.ndarray:
        """The linear-feature row of one executed job.

        ``runtime ≈ design_row · coefficients`` — the calibration solves
        for the coefficient vector over many jobs.
        """
        plan = xplan.plan
        cards = plan.cardinalities()
        row = np.zeros(len(columns), dtype=np.float64)
        for name in xplan.platforms_used():
            key = f"startup::{name}"
            if key in columns:
                row[columns[key]] += 1.0
        for op_id, platform_name in xplan.assignment.items():
            op = plan.operators[op_id]
            iters = plan.loop_iterations(op_id)
            in_card, out_card = cards[op_id]
            cx = COMPLEXITY_WORK[op.udf_complexity]
            base = f"::{op.kind_name}::{platform_name}"
            if f"fix{base}" not in columns:
                continue
            row[columns[f"fix{base}"]] += 1.0
            row[columns[f"win{base}"]] += iters * in_card * cx
            row[columns[f"wout{base}"]] += iters * out_card
        for conv in xplan.conversions():
            if f"cfix::{conv.kind}" not in columns:
                continue
            row[columns[f"cfix::{conv.kind}"]] += 1.0
            row[columns[f"cw::{conv.kind}"]] += conv.iterations * conv.cardinality
        return row

    @classmethod
    def from_coefficients(
        cls,
        registry: PlatformRegistry,
        columns: Dict[str, int],
        coefficients: np.ndarray,
    ) -> "CostModel":
        """Assemble a cost model from a fitted coefficient vector."""
        if len(coefficients) != len(columns):
            raise ModelError(
                f"{len(coefficients)} coefficients for {len(columns)} columns"
            )
        params = CostParameters()
        staged: Dict[Tuple[str, str], Dict[str, float]] = {}
        conv_staged: Dict[str, Dict[str, float]] = {}
        for name, idx in columns.items():
            value = float(coefficients[idx])
            parts = name.split("::")
            if parts[0] == "startup":
                params.startup[parts[1]] = value
            elif parts[0] in ("fix", "win", "wout"):
                staged.setdefault((parts[1], parts[2]), {})[parts[0]] = value
            elif parts[0] in ("cfix", "cw"):
                conv_staged.setdefault(parts[1], {})[parts[0]] = value
        for key, vals in staged.items():
            params.operator_coeffs[key] = (
                vals.get("fix", 0.0),
                vals.get("win", 0.0),
                vals.get("wout", 0.0),
            )
        for kind, vals in conv_staged.items():
            params.conversion_coeffs[kind] = (
                vals.get("cfix", 0.0),
                vals.get("cw", 0.0),
            )
        return cls(registry, params)
