"""RHEEMix: the cost-based optimizer baseline (§VII).

The classical object-based enumeration (same algorithm and pruning as
Robopt, §VII-A: "We used the same pruning strategy in both baselines to
have a fair comparison") driven by the linear cost model. Subplan costs
are computed by walking the plan objects — the representation overhead
the paper contrasts with merging and matching vectors.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines.object_enumerator import (
    ObjectEnumerationResult,
    ObjectEnumerator,
    ObjectStats,
    ObjectSubplan,
)
from repro.cost.cost_model import CostModel
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.platforms import PlatformRegistry


class RheemixOptimizer:
    """Cost-based cross-platform optimizer (the Rheem baseline).

    Parameters
    ----------
    registry:
        Available platforms.
    cost_model:
        A calibrated :class:`CostModel` (well-tuned or simply-tuned).
    priority, pruning:
        Enumeration knobs, matching Robopt's defaults.
    """

    def __init__(
        self,
        registry: PlatformRegistry,
        cost_model: CostModel,
        priority: str = "robopt",
        pruning: bool = True,
    ):
        self.registry = registry
        self.cost_model = cost_model

        def batch_cost(
            plan: LogicalPlan, subplans: Sequence[ObjectSubplan], stats: ObjectStats
        ) -> np.ndarray:
            return np.asarray(
                [
                    self.cost_model.cost_of_assignment(
                        plan, sp.assignment, scope=sp.scope
                    )
                    for sp in subplans
                ],
                dtype=np.float64,
            )

        self._enumerator = ObjectEnumerator(
            registry, batch_cost, priority=priority, pruning=pruning
        )

    def optimize(self, plan: LogicalPlan) -> ObjectEnumerationResult:
        """Find the cheapest plan w.r.t. the cost model."""
        plan.validate()
        return self._enumerator.enumerate_plan(plan)
