"""RHEEMix: the cost-based optimizer baseline (§VII).

The classical object-based enumeration (same algorithm and pruning as
Robopt, §VII-A: "We used the same pruning strategy in both baselines to
have a fair comparison") driven by the linear cost model. Subplan costs
are computed by walking the plan objects — the representation overhead
the paper contrasts with merging and matching vectors.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.api import OptimizationResult, RunStats
from repro.baselines.object_enumerator import ObjectEnumerator, ObjectSubplan
from repro.cost.cost_model import CostModel
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.platforms import PlatformRegistry


class RheemixOptimizer:
    """Cost-based cross-platform optimizer (the Rheem baseline).

    Parameters
    ----------
    registry:
        Available platforms.
    cost_model:
        A calibrated :class:`CostModel` (well-tuned or simply-tuned).
    priority, pruning:
        Enumeration knobs, matching Robopt's defaults.
    """

    def __init__(
        self,
        registry: PlatformRegistry,
        cost_model: CostModel,
        priority: str = "robopt",
        pruning: bool = True,
    ):
        self.registry = registry
        self.cost_model = cost_model

        def batch_cost(
            plan: LogicalPlan, subplans: Sequence[ObjectSubplan], stats: RunStats
        ) -> np.ndarray:
            return np.asarray(
                [
                    self.cost_model.cost_of_assignment(
                        plan, sp.assignment, scope=sp.scope
                    )
                    for sp in subplans
                ],
                dtype=np.float64,
            )

        self._enumerator = ObjectEnumerator(
            registry, batch_cost, priority=priority, pruning=pruning
        )

    def optimize(self, plan: LogicalPlan) -> OptimizationResult:
        """Find the cheapest plan w.r.t. the cost model.

        Returns the unified :class:`repro.api.OptimizationResult`;
        ``predicted_runtime`` carries the calibrated cost estimate (the
        cost model is fitted against measured runtimes, so the units are
        seconds here too).
        """
        plan.validate()
        result = self._enumerator.enumerate_plan(plan)
        result.optimizer = "rheemix"
        return result
