"""Inject the recorded benchmark tables into EXPERIMENTS.md.

Run after ``pytest benchmarks/ --benchmark-only``: reads every table under
``.artifacts/experiments/`` and replaces the ``<!-- TABLES -->`` marker in
EXPERIMENTS.md with the rendered tables, grouped in the paper's order.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]

#: Paper order of the experiment record.
ORDER = [
    "test_fig01_improvement_factor",
    "test_fig01_factor_grows",
    "test_fig02_well_vs_simply_tuned",
    "test_fig02_parameter_count",
    "test_table1_counts",
    "test_table1_pruning",
    "test_fig08_interpolation_accuracy",
    "test_fig08_executed_fraction",
    "test_fig09a",
    "test_fig09bcd_latency_vs_platforms[5]",
    "test_fig09bcd_latency_vs_platforms[20]",
    "test_fig09bcd_latency_vs_platforms[80]",
    "test_fig09_rheem_ml_time_breakdown",
    "test_fig10_priority_vs_topdown_bottomup[3]",
    "test_fig10_priority_vs_topdown_bottomup[5]",
    "test_fig10_all_strategies",
    "test_table2_operator_counts",
    "test_table2_every_query",
    "test_fig11_bars_and_choices",
    "test_fig11_choice_rates",
    "test_table3_diff_from_optimal",
    "test_fig12a_kmeans_centroids",
    "test_fig12b_sgd_batch_size",
    "test_fig12cd_crocopr_iterations[hdfs]",
    "test_fig12cd_crocopr_iterations[postgres]",
    "test_fig13_join_in_postgres",
    "test_ablation_model_families",
    "test_ablation_boundary_pruning",
    "test_ablation_switch_pruning_beta",
    "test_ablation_platform_aggregate_features",
]


def sort_key(path: Path):
    name = path.stem
    for i, prefix in enumerate(ORDER):
        if name.startswith(prefix.split("[")[0]) and (
            "[" not in prefix or prefix.split("[")[1].rstrip("]") in name
        ):
            return (i, name)
    return (len(ORDER), name)


def dedupe(text: str) -> str:
    """Keep only the last occurrence of each table in a record file."""
    chunks = re.split(r"\n(?==== )", text.strip())
    seen = {}
    for chunk in chunks:
        title = chunk.splitlines()[0]
        seen[title] = chunk
    return "\n\n".join(seen.values())


def main() -> int:
    experiments = ROOT / ".artifacts" / "experiments"
    target = ROOT / "EXPERIMENTS.md"
    if not experiments.is_dir():
        print("no .artifacts/experiments — run the benchmarks first", file=sys.stderr)
        return 1
    blocks = []
    for path in sorted(experiments.glob("*.txt"), key=sort_key):
        blocks.append("```\n" + dedupe(path.read_text()) + "\n```")
    body = "\n\n".join(blocks)
    text = target.read_text()
    marker = "<!-- TABLES -->"
    if marker not in text:
        print("EXPERIMENTS.md misses the <!-- TABLES --> marker", file=sys.stderr)
        return 1
    target.write_text(text.replace(marker, body))
    print(f"injected {len(blocks)} table blocks into EXPERIMENTS.md")
    return 0


if __name__ == "__main__":
    sys.exit(main())
