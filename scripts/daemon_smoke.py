#!/usr/bin/env python
"""CI smoke drill for the ``repro serve`` daemon (ISSUE 7).

Boots a real ``repro serve`` subprocess on a unix socket, slams it with
``--clients`` concurrent connections (default 8) that all ask for the
*same* workload fingerprint at the same instant plus a spread of
distinct ones, then checks the serving contracts end to end:

* every request is answered (a result or a structured error — never a
  dropped connection);
* the overlapping fingerprints were coalesced across clients
  (``serve.jobs_coalesced > 0`` in the ``stats`` frame);
* SIGTERM drains cleanly: the process exits 0 and reports
  "daemon drained cleanly".

Exits non-zero on any violated contract. Usage::

    PYTHONPATH=src python scripts/daemon_smoke.py --clients 8
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument(
        "--distinct-sizes",
        type=int,
        default=3,
        help="distinct workload sizes per client besides the shared one",
    )
    parser.add_argument("--boot-timeout", type=float, default=60.0)
    parser.add_argument("--drain-timeout", type=float, default=60.0)
    args = parser.parse_args(argv)

    from repro.serve import ServeClient
    from repro.serve.protocol import OptimizeRequest

    workdir = tempfile.mkdtemp(prefix="repro-daemon-smoke-")
    socket_path = os.path.join(workdir, "daemon.sock")
    env = dict(os.environ)
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--socket",
            socket_path,
            "--model",
            os.path.join(workdir, "no-model.pkl"),  # fallback chain serves
            "--workers",
            "0",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )

    failures = []
    try:
        deadline = time.monotonic() + args.boot_timeout
        while not os.path.exists(socket_path):
            if proc.poll() is not None:
                print(proc.stdout.read())
                print("daemon-smoke: daemon died during boot", file=sys.stderr)
                return 1
            if time.monotonic() > deadline:
                print("daemon-smoke: daemon never bound its socket", file=sys.stderr)
                return 1
            time.sleep(0.1)

        address = f"unix:{socket_path}"
        results = [None] * args.clients
        barrier = threading.Barrier(args.clients)

        def drive(index):
            try:
                with ServeClient(address, timeout_s=120.0) as client:
                    barrier.wait(timeout=30.0)
                    # Every client fires the SAME fingerprint first — the
                    # coalescing window — then its own distinct sizes.
                    requests = [
                        OptimizeRequest(
                            request_id=f"c{index}-shared",
                            workload="WordCount",
                            size_bytes=float(2**30),
                        )
                    ]
                    for s in range(args.distinct_sizes):
                        requests.append(
                            OptimizeRequest(
                                request_id=f"c{index}-own{s}",
                                workload="WordCount",
                                # unique size => unique fingerprint bucket
                                size_bytes=float(2**20 * (2 + index))
                                * (4.0**s),
                            )
                        )
                    results[index] = client.optimize_many(requests)
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                results[index] = exc

        threads = [
            threading.Thread(target=drive, args=(i,)) for i in range(args.clients)
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=180.0)
        wall_s = time.perf_counter() - t0

        n_ok = n_error = 0
        for index, shard in enumerate(results):
            if isinstance(shard, Exception) or shard is None:
                failures.append(f"client {index} failed: {shard!r}")
                continue
            for response in shard:
                if response.ok:
                    n_ok += 1
                else:
                    n_error += 1
                    # structured errors are acceptable under load, but
                    # they must BE structured
                    if not getattr(response, "code", ""):
                        failures.append(
                            f"unstructured error frame: {response!r}"
                        )
        expected = args.clients * (1 + args.distinct_sizes)
        if n_ok + n_error != expected:
            failures.append(
                f"answered {n_ok + n_error}/{expected} requests"
            )
        if n_ok == 0:
            failures.append("no request succeeded")

        with ServeClient(address) as control:
            stats = control.stats()
        coalesced = stats.counters.get("serve.jobs_coalesced", 0)
        print(
            f"daemon-smoke: {n_ok} ok / {n_error} structured errors over "
            f"{args.clients} clients in {wall_s:.1f}s; "
            f"jobs_coalesced={coalesced:.0f}, "
            f"p95={stats.latency_ms['p95']:.0f}ms"
        )
        if coalesced <= 0:
            failures.append(
                "serve.jobs_coalesced == 0: concurrent identical requests "
                "were not coalesced"
            )

        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=args.drain_timeout)
        if proc.returncode != 0:
            failures.append(f"SIGTERM drain exited {proc.returncode}:\n{out}")
        elif "drained cleanly" not in out:
            failures.append(f"no clean-drain confirmation in output:\n{out}")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()

    if failures:
        for failure in failures:
            print(f"daemon-smoke: FAIL — {failure}", file=sys.stderr)
        return 1
    print("daemon-smoke: all serving contracts hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
