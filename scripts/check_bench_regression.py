#!/usr/bin/env python
"""Fail CI when batch throughput regresses vs the previous BENCH entry.

Reads every ``BENCH_*.json`` at the repository root, extracts the entries
for the batch-throughput benchmark (``serve.batch_throughput``, as
recorded by ``benchmarks/test_serve_batch.py`` — override with
``--name``), and compares the latest ``plans_per_sec`` against the
previous one. A drop of more than ``--tolerance`` (default 30%) exits
non-zero.

With fewer than two entries the check passes (nothing to compare — the
first recorded run *establishes* the baseline).

Usage::

    PYTHONPATH=src python scripts/check_bench_regression.py
    PYTHONPATH=src python scripts/check_bench_regression.py \
        --name serve.optimize_batch --metric plans_per_sec --tolerance 0.3
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--name", default="serve.batch_throughput")
    parser.add_argument("--metric", default="plans_per_sec")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="maximum allowed fractional drop vs the previous entry",
    )
    parser.add_argument("--root", default=None, help="repo root to scan")
    args = parser.parse_args(argv)

    from repro.bench.trajectory import series

    entries = series(args.name, metric=args.metric, root=args.root)
    if len(entries) < 2:
        print(
            f"bench-regression: only {len(entries)} entry/ies for "
            f"{args.name!r} — baseline established, nothing to compare"
        )
        return 0
    previous = entries[-2]["metrics"][args.metric]
    latest = entries[-1]["metrics"][args.metric]
    if previous is None or latest is None or previous <= 0:
        print("bench-regression: non-comparable values, skipping")
        return 0
    drop = (previous - latest) / previous
    verdict = "OK" if drop <= args.tolerance else "REGRESSION"
    print(
        f"bench-regression: {args.name}.{args.metric} "
        f"{previous:.2f} -> {latest:.2f} ({-drop:+.1%}) [{verdict}]"
    )
    if drop > args.tolerance:
        print(
            f"bench-regression: throughput dropped {drop:.1%} "
            f"(> {args.tolerance:.0%} tolerance)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
