#!/usr/bin/env python
"""Fail CI when batch throughput regresses vs the previous BENCH entry.

Reads every ``BENCH_*.json`` at the repository root, extracts the entries
for the batch-throughput benchmark (``serve.batch_throughput``, as
recorded by ``benchmarks/test_serve_batch.py`` — override with
``--name``), and compares the latest ``plans_per_sec`` against the
previous one. A drop of more than ``--tolerance`` (default 30%) exits
non-zero.

With fewer than two entries the check passes (nothing to compare — the
first recorded run *establishes* the baseline).

``--max-overhead`` adds a second gate: the latest entry of
``--overhead-name`` (default ``serve.batch_throughput_resilient``, as
recorded by the resilient-stack benchmark) carries an ``overhead``
metric — the same-run fractional throughput cost of the resilience
armor versus the plain stack under zero faults. An overhead above the
bound (ISSUE 5: 5%) exits non-zero.

``--latency-tolerance`` adds a tail-latency gate (ISSUE 6): the latest
``--latency-metric`` (default ``latency_p95_s``) may not *rise* by more
than the given fraction vs the previous entry — a serving layer is
judged on its tail, not just its mean throughput.

``--min-pool-speedup`` gates the latest entry's ``pool_speedup`` (the
warm-pool-vs-naive-serial ratio recorded by the throughput benchmark):
on a multi-core runner (the entry's ``cpus`` metric >= 2) a pool that
fails to beat serial is the ISSUE 6 regression, and CI fails. On a
single-core runner the gate is skipped — there is nothing for a pool to
win there.

``--daemon-p95-tolerance`` gates the daemon benchmark's tail (ISSUE 7):
the latest ``daemon_p95_ms`` of ``--daemon-name`` (default
``serve.daemon_throughput``, recorded by
``benchmarks/test_serve_daemon.py``) may not rise by more than the given
fraction vs the previous entry. The metric is in *milliseconds* — the
gate skips sub-millisecond previous values as timer noise.

``--min-drift-heal`` gates the feedback loop (ISSUE 10): the latest
``heal_ratio`` of ``--drift-name`` (default ``ml.drift_heal``, recorded
by ``benchmarks/test_feedback.py``) must stay at or above the bound
(ISSUE 10: 2.0) — a drift-triggered retrain that no longer repairs
held-out q-error means the closed loop has stopped closing.

``--min-template-hit-rate`` gates the template-cache tier (ISSUE 9):
the latest ``template_hit_rate`` of ``--template-name`` (default
``serve.template_cache``, recorded by
``benchmarks/test_serve_template.py``) must stay at or above the bound
(ISSUE 9: 0.5) — a template tier that stops serving the parametric
workload it exists for is a regression even if raw throughput holds.

``--enum-latency-tolerance`` gates the core enumeration kernels
(ISSUE 8): the latest ``robopt_80ops_s`` of ``--enum-name`` (default
the Fig. 9(a) benchmark nodeid) may not rise by more than the given
fraction vs the previous entry. ``--max-enum-latency`` additionally
bounds the latest value absolutely (seconds), so a slow creep across
many runs cannot hide inside the per-run tolerance.

Usage::

    PYTHONPATH=src python scripts/check_bench_regression.py
    PYTHONPATH=src python scripts/check_bench_regression.py \
        --name serve.optimize_batch --metric plans_per_sec --tolerance 0.3
    PYTHONPATH=src python scripts/check_bench_regression.py \
        --max-overhead 0.05 --latency-tolerance 0.5
    PYTHONPATH=src python scripts/check_bench_regression.py \
        --min-pool-speedup 1.0
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--name", default="serve.batch_throughput")
    parser.add_argument("--metric", default="plans_per_sec")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="maximum allowed fractional drop vs the previous entry",
    )
    parser.add_argument("--root", default=None, help="repo root to scan")
    parser.add_argument(
        "--overhead-name",
        default="serve.batch_throughput_resilient",
        help="series whose latest 'overhead' metric the overhead gate reads",
    )
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=None,
        help=(
            "also fail when the latest no-fault resilience overhead "
            "exceeds this fraction (e.g. 0.05)"
        ),
    )
    parser.add_argument(
        "--latency-metric",
        default="latency_p95_s",
        help="tail-latency metric the latency gate compares",
    )
    parser.add_argument(
        "--latency-tolerance",
        type=float,
        default=None,
        help=(
            "also fail when the latest tail latency rose by more than "
            "this fraction vs the previous entry (e.g. 0.5)"
        ),
    )
    parser.add_argument(
        "--min-pool-speedup",
        type=float,
        default=None,
        help=(
            "also fail when the latest entry's pool_speedup is <= this "
            "bound while its cpus metric is >= 2 (skipped on single-core "
            "entries)"
        ),
    )
    parser.add_argument(
        "--daemon-name",
        default="serve.daemon_throughput",
        help="series whose daemon_p95_ms the daemon tail gate compares",
    )
    parser.add_argument(
        "--daemon-p95-tolerance",
        type=float,
        default=None,
        help=(
            "also fail when the latest daemon_p95_ms rose by more than "
            "this fraction vs the previous entry (e.g. 0.5)"
        ),
    )
    parser.add_argument(
        "--template-name",
        default="serve.template_cache",
        help="series whose template_hit_rate the template gate reads",
    )
    parser.add_argument(
        "--min-template-hit-rate",
        type=float,
        default=None,
        help=(
            "also fail when the latest template-cache hit rate falls "
            "below this fraction (e.g. 0.5)"
        ),
    )
    parser.add_argument(
        "--drift-name",
        default="ml.drift_heal",
        help="series whose heal_ratio the feedback-loop gate reads",
    )
    parser.add_argument(
        "--min-drift-heal",
        type=float,
        default=None,
        help=(
            "also fail when the latest drift-heal ratio falls below "
            "this bound (e.g. 2.0)"
        ),
    )
    parser.add_argument(
        "--enum-name",
        default=(
            "benchmarks/test_fig09_efficiency.py"
            "::test_fig09a_latency_vs_operators"
        ),
        help="series whose robopt_80ops_s the enumeration gate compares",
    )
    parser.add_argument(
        "--enum-latency-tolerance",
        type=float,
        default=None,
        help=(
            "also fail when the latest robopt_80ops_s rose by more than "
            "this fraction vs the previous entry (e.g. 0.25)"
        ),
    )
    parser.add_argument(
        "--max-enum-latency",
        type=float,
        default=None,
        help=(
            "also fail when the latest robopt_80ops_s exceeds this many "
            "seconds outright (absolute ceiling, e.g. 0.012)"
        ),
    )
    args = parser.parse_args(argv)

    from repro.bench.trajectory import series

    if args.max_overhead is not None:
        rc = check_overhead(args.overhead_name, args.max_overhead, args.root)
        if rc != 0:
            return rc

    if args.min_pool_speedup is not None:
        rc = check_pool_speedup(args.name, args.min_pool_speedup, args.root)
        if rc != 0:
            return rc

    if args.latency_tolerance is not None:
        rc = check_latency(
            args.name, args.latency_metric, args.latency_tolerance, args.root
        )
        if rc != 0:
            return rc

    if args.daemon_p95_tolerance is not None:
        rc = check_daemon_p95(
            args.daemon_name, args.daemon_p95_tolerance, args.root
        )
        if rc != 0:
            return rc

    if args.min_drift_heal is not None:
        rc = check_drift_heal(args.drift_name, args.min_drift_heal, args.root)
        if rc != 0:
            return rc

    if args.min_template_hit_rate is not None:
        rc = check_template_hit_rate(
            args.template_name, args.min_template_hit_rate, args.root
        )
        if rc != 0:
            return rc

    if args.enum_latency_tolerance is not None or args.max_enum_latency is not None:
        rc = check_enum_latency(
            args.enum_name,
            args.enum_latency_tolerance,
            args.max_enum_latency,
            args.root,
        )
        if rc != 0:
            return rc

    entries = series(args.name, metric=args.metric, root=args.root)
    if len(entries) < 2:
        print(
            f"bench-regression: only {len(entries)} entry/ies for "
            f"{args.name!r} — baseline established, nothing to compare"
        )
        return 0
    previous = entries[-2]["metrics"][args.metric]
    latest = entries[-1]["metrics"][args.metric]
    if previous is None or latest is None or previous <= 0:
        print("bench-regression: non-comparable values, skipping")
        return 0
    drop = (previous - latest) / previous
    verdict = "OK" if drop <= args.tolerance else "REGRESSION"
    print(
        f"bench-regression: {args.name}.{args.metric} "
        f"{previous:.2f} -> {latest:.2f} ({-drop:+.1%}) [{verdict}]"
    )
    if drop > args.tolerance:
        print(
            f"bench-regression: throughput dropped {drop:.1%} "
            f"(> {args.tolerance:.0%} tolerance)",
            file=sys.stderr,
        )
        return 1
    return 0


def check_overhead(name: str, max_overhead: float, root=None) -> int:
    """Gate the no-fault resilience overhead recorded by the benchmark.

    The overhead is computed *within* one benchmark run (armored vs
    plain stack over the same batch), so a single entry suffices — no
    cross-run comparison, no cross-run noise.
    """
    from repro.bench.trajectory import series

    entries = series(name, metric="overhead", root=root)
    if not entries:
        print(
            f"bench-regression: no entries for {name!r} — "
            "overhead gate skipped (benchmark not yet recorded)"
        )
        return 0
    overhead = entries[-1]["metrics"].get("overhead")
    if overhead is None:
        print(f"bench-regression: latest {name!r} entry has no overhead metric")
        return 0
    verdict = "OK" if overhead <= max_overhead else "TOO SLOW"
    print(
        f"bench-regression: {name}.overhead {overhead:+.2%} "
        f"(bound {max_overhead:.0%}) [{verdict}]"
    )
    if overhead > max_overhead:
        print(
            f"bench-regression: resilience armor costs {overhead:.1%} "
            f"throughput under zero faults (> {max_overhead:.0%} bound)",
            file=sys.stderr,
        )
        return 1
    return 0


def check_latency(name: str, metric: str, tolerance: float, root=None) -> int:
    """Gate tail-latency rises between the last two recorded entries.

    Mirrors the throughput gate with the sign flipped: latency that
    *rose* by more than ``tolerance`` fails. Sub-millisecond previous
    values are skipped — a ratio against noise-floor numbers gates
    nothing but timer jitter.
    """
    from repro.bench.trajectory import series

    entries = series(name, metric=metric, root=root)
    if len(entries) < 2:
        print(
            f"bench-regression: only {len(entries)} entry/ies carry "
            f"{metric!r} — latency baseline established, nothing to compare"
        )
        return 0
    previous = entries[-2]["metrics"][metric]
    latest = entries[-1]["metrics"][metric]
    if previous is None or latest is None or previous < 1e-3:
        print(
            f"bench-regression: {metric} non-comparable "
            f"({previous!r} -> {latest!r}), latency gate skipped"
        )
        return 0
    rise = (latest - previous) / previous
    verdict = "OK" if rise <= tolerance else "REGRESSION"
    print(
        f"bench-regression: {name}.{metric} "
        f"{previous * 1000:.1f}ms -> {latest * 1000:.1f}ms "
        f"({rise:+.1%}) [{verdict}]"
    )
    if rise > tolerance:
        print(
            f"bench-regression: tail latency rose {rise:.1%} "
            f"(> {tolerance:.0%} tolerance)",
            file=sys.stderr,
        )
        return 1
    return 0


def check_daemon_p95(name: str, tolerance: float, root=None) -> int:
    """Gate the daemon's served-request p95 between the last two entries.

    Same shape as :func:`check_latency`, but the daemon benchmark
    records its tails in **milliseconds** (``daemon_p95_ms``, straight
    from the daemon's live ``stats`` frame), so the display does not
    rescale and the noise floor sits at 1 ms.
    """
    from repro.bench.trajectory import series

    metric = "daemon_p95_ms"
    entries = series(name, metric=metric, root=root)
    if len(entries) < 2:
        print(
            f"bench-regression: only {len(entries)} entry/ies carry "
            f"{metric!r} — daemon tail baseline established, nothing to compare"
        )
        return 0
    previous = entries[-2]["metrics"][metric]
    latest = entries[-1]["metrics"][metric]
    if previous is None or latest is None or previous < 1.0:
        print(
            f"bench-regression: {metric} non-comparable "
            f"({previous!r} -> {latest!r}), daemon tail gate skipped"
        )
        return 0
    rise = (latest - previous) / previous
    verdict = "OK" if rise <= tolerance else "REGRESSION"
    print(
        f"bench-regression: {name}.{metric} "
        f"{previous:.1f}ms -> {latest:.1f}ms ({rise:+.1%}) [{verdict}]"
    )
    if rise > tolerance:
        print(
            f"bench-regression: daemon p95 rose {rise:.1%} "
            f"(> {tolerance:.0%} tolerance)",
            file=sys.stderr,
        )
        return 1
    return 0


def check_enum_latency(
    name: str, tolerance=None, ceiling=None, root=None
) -> int:
    """Gate the 80-operator enumeration latency (the merge/prune hot path).

    Two independent bounds over the Fig. 9(a) ``robopt_80ops_s`` series:

    * ``tolerance`` — the latest value may not *rise* by more than this
      fraction vs the previous entry (same shape as :func:`check_latency`);
    * ``ceiling`` — the latest value may not exceed this many seconds
      outright, which catches slow creep that per-run tolerances forgive.
    """
    from repro.bench.trajectory import series

    metric = "robopt_80ops_s"
    entries = series(name, metric=metric, root=root)
    if not entries:
        print(
            f"bench-regression: no entries for {name!r} carry {metric!r} "
            "— enumeration gate skipped (benchmark not yet recorded)"
        )
        return 0
    latest = entries[-1]["metrics"][metric]
    if ceiling is not None and latest is not None:
        verdict = "OK" if latest <= ceiling else "TOO SLOW"
        print(
            f"bench-regression: {name}.{metric} {latest * 1000:.2f}ms "
            f"(ceiling {ceiling * 1000:.2f}ms) [{verdict}]"
        )
        if latest > ceiling:
            print(
                f"bench-regression: 80-op enumeration took "
                f"{latest * 1000:.2f}ms (> {ceiling * 1000:.2f}ms ceiling)",
                file=sys.stderr,
            )
            return 1
    if tolerance is None:
        return 0
    if len(entries) < 2:
        print(
            f"bench-regression: only {len(entries)} entry/ies carry "
            f"{metric!r} — enumeration baseline established, nothing to compare"
        )
        return 0
    previous = entries[-2]["metrics"][metric]
    if previous is None or latest is None or previous < 1e-3:
        print(
            f"bench-regression: {metric} non-comparable "
            f"({previous!r} -> {latest!r}), enumeration gate skipped"
        )
        return 0
    rise = (latest - previous) / previous
    verdict = "OK" if rise <= tolerance else "REGRESSION"
    print(
        f"bench-regression: {name}.{metric} "
        f"{previous * 1000:.2f}ms -> {latest * 1000:.2f}ms "
        f"({rise:+.1%}) [{verdict}]"
    )
    if rise > tolerance:
        print(
            f"bench-regression: enumeration latency rose {rise:.1%} "
            f"(> {tolerance:.0%} tolerance)",
            file=sys.stderr,
        )
        return 1
    return 0


def check_template_hit_rate(name: str, bound: float, root=None) -> int:
    """Gate the template tier still serving its parametric workload.

    The hit rate is computed *within* one benchmark run (the eval phase
    of ``benchmarks/test_serve_template.py``, whose cardinalities are
    drawn so the exact-fingerprint tier alone scores ~0), so a single
    entry suffices — no cross-run comparison. A rate below ``bound``
    means structurally repeated queries are falling through to full
    enumeration, which defeats the tier's purpose regardless of how
    fast that enumeration happens to be.
    """
    from repro.bench.trajectory import series

    entries = series(name, metric="template_hit_rate", root=root)
    if not entries:
        print(
            f"bench-regression: no entries for {name!r} carry "
            "template_hit_rate — template gate skipped "
            "(benchmark not yet recorded)"
        )
        return 0
    rate = entries[-1]["metrics"].get("template_hit_rate")
    if rate is None:
        print(
            f"bench-regression: latest {name!r} entry has no "
            "template_hit_rate metric"
        )
        return 0
    verdict = "OK" if rate >= bound else "REGRESSION"
    print(
        f"bench-regression: {name}.template_hit_rate {rate:.0%} "
        f"(bound >= {bound:.0%}) [{verdict}]"
    )
    if rate < bound:
        print(
            f"bench-regression: template tier served only {rate:.0%} of "
            f"its parametric eval workload (< {bound:.0%} bound)",
            file=sys.stderr,
        )
        return 1
    return 0


def check_drift_heal(name: str, bound: float, root=None) -> int:
    """Gate the feedback loop still repairing an injected workload shift.

    The heal ratio (stale vs retrained held-out median q-error) is
    computed *within* one benchmark run of the drift-heal drill, so a
    single entry suffices — no cross-run comparison. A ratio below
    ``bound`` means drift-triggered retraining no longer recovers
    prediction quality, which defeats the loop's purpose even if it
    still technically fires.
    """
    from repro.bench.trajectory import series

    entries = series(name, metric="heal_ratio", root=root)
    if not entries:
        print(
            f"bench-regression: no entries for {name!r} carry heal_ratio "
            "— drift-heal gate skipped (benchmark not yet recorded)"
        )
        return 0
    ratio = entries[-1]["metrics"].get("heal_ratio")
    if ratio is None:
        print(f"bench-regression: latest {name!r} entry has no heal_ratio")
        return 0
    verdict = "OK" if ratio >= bound else "REGRESSION"
    print(
        f"bench-regression: {name}.heal_ratio {ratio:.2f}x "
        f"(bound >= {bound:.1f}x) [{verdict}]"
    )
    if ratio < bound:
        print(
            f"bench-regression: the drift-triggered retrain healed "
            f"held-out q-error only {ratio:.2f}x (< {bound:.1f}x bound)",
            file=sys.stderr,
        )
        return 1
    return 0


def check_pool_speedup(name: str, bound: float, root=None) -> int:
    """Gate the warm pool actually beating naive serial on real cores.

    Reads the latest entry carrying ``pool_speedup``. The gate only
    applies when that run had >= 2 CPUs (its ``cpus`` metric): a pool
    cannot win on one core, and auto-sizing runs serially there anyway.
    """
    from repro.bench.trajectory import series

    entries = series(name, metric="pool_speedup", root=root)
    if not entries:
        print(
            f"bench-regression: no entries for {name!r} carry pool_speedup "
            "— pool gate skipped (benchmark not yet recorded)"
        )
        return 0
    metrics = entries[-1]["metrics"]
    speedup = metrics.get("pool_speedup")
    cpus = metrics.get("cpus") or 0
    if speedup is None:
        print(f"bench-regression: latest {name!r} entry has no pool_speedup")
        return 0
    if cpus < 2:
        print(
            f"bench-regression: latest {name!r} entry ran on {cpus} CPU(s) "
            "— pool gate skipped (a pool cannot win on one core)"
        )
        return 0
    verdict = "OK" if speedup > bound else "REGRESSION"
    print(
        f"bench-regression: {name}.pool_speedup {speedup:.2f}x on "
        f"{cpus:.0f} CPUs (bound > {bound:.2f}x) [{verdict}]"
    )
    if speedup <= bound:
        print(
            f"bench-regression: the worker pool is not beating serial "
            f"({speedup:.2f}x <= {bound:.2f}x) on a multi-core runner",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
