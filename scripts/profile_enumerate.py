#!/usr/bin/env python
"""Profile one Robopt enumeration: cProfile hotspots + RunStats phases.

Optimizes an N-operator TDGEN plan (shape/size/platform count from the
CLI) a few times under cProfile and prints:

* the top functions by cumulative time (default 20) — where the wall
  clock actually goes, across merge, prune and the model;
* the optimizer's own ``RunStats`` phase breakdown for the best run —
  merge vs prune vs everything else, plus the enumeration counters
  (merges, prune calls, rows predicted, peak enumeration size).

This is the first stop when the Fig. 9(a) trajectory regresses: compare
its output against the committed numbers in ``docs/paper_mapping.md``
("hot-path kernels") to see which phase moved.

Usage::

    PYTHONPATH=src python scripts/profile_enumerate.py
    PYTHONPATH=src python scripts/profile_enumerate.py \
        --operators 40 --platforms 3 --shape juncture --repeats 20
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--operators", type=int, default=80, help="plan size N")
    parser.add_argument("--platforms", type=int, default=2, help="registry size k")
    parser.add_argument(
        "--shape",
        default="pipeline",
        help="TDGEN plan shape (pipeline/juncture/replicate/loop)",
    )
    parser.add_argument("--repeats", type=int, default=10, help="profiled runs")
    parser.add_argument("--seed", type=int, default=0, help="TDGEN generator seed")
    parser.add_argument(
        "--cardinality", type=float, default=1e6, help="source cardinality"
    )
    parser.add_argument("--top", type=int, default=20, help="profile rows to print")
    args = parser.parse_args(argv)

    from repro.bench.synthetic_setup import latency_setup
    from repro.core.optimizer import Robopt
    from repro.tdgen.jobgen import JobGenerator

    registry, schema, model, _ = latency_setup(args.platforms)
    gen = JobGenerator(registry, seed=args.seed)
    template = gen.templates_for_shapes(
        (args.shape,),
        max_operators=args.operators,
        count=1,
        min_operators=args.operators,
    )[0]
    plan = template(args.cardinality)
    optimizer = Robopt(registry, model, schema=schema)

    optimizer.optimize(plan)  # warm the per-schema caches out of the profile

    results = []
    profiler = cProfile.Profile()
    profiler.enable()
    for _ in range(args.repeats):
        results.append(optimizer.optimize(plan))
    profiler.disable()

    print(
        f"profile_enumerate: {args.shape} plan, {plan.n_operators} operators, "
        f"{args.platforms} platforms, {args.repeats} profiled runs"
    )
    print(f"\n--- cProfile top {args.top} by cumulative time ---")
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats("cumulative").print_stats(args.top)

    best = min(results, key=lambda r: r.stats.latency_s)
    s = best.stats
    other_s = s.latency_s - s.time_merge_s - s.time_prune_s
    print("--- RunStats phase breakdown (best of profiled runs) ---")
    print(f"latency          {s.latency_s * 1e3:8.3f} ms")
    for label, value in (
        ("merge", s.time_merge_s),
        ("prune (+model)", s.time_prune_s),
        ("other (setup/loop/final)", other_s),
    ):
        share = value / s.latency_s if s.latency_s else 0.0
        print(f"  {label:<24s} {value * 1e3:8.3f} ms  ({share:6.1%})")
    print(
        f"counters: merges={s.merges} prune_calls={s.prune_calls} "
        f"rows_predicted={s.rows_predicted} vectors_created={s.vectors_created} "
        f"vectors_pruned={s.vectors_pruned} peak={s.peak_enumeration} "
        f"final={s.final_vectors}"
    )
    print(f"predicted runtime of chosen plan: {best.predicted_runtime:.6g} s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
