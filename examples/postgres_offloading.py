"""Cross-platform plans for database-resident data (the Fig. 13 scenario).

TPC-H Q3's relations live in Postgres. The obvious plan runs the whole
query there; the profitable plan pushes only the scans, filters and
projections into Postgres and ships the slimmed-down relations to a
cluster engine for the join and aggregation. This example shows the
optimizer discovering that plan, plus the CrocoPR-PG case where
cross-platform execution is *mandatory* (Postgres cannot run PageRank).

Usage::

    python examples/postgres_offloading.py
"""

from repro.bench.context import get_context
from repro.rheem.datasets import GB
from repro.rheem.execution_plan import ExecutionPlan
from repro.workloads import crocopr, tpch


def postgres_only_baseline(ctx, plan) -> ExecutionPlan:
    """Everything Postgres supports stays in Postgres; the rest on Java."""
    pg = ctx.registry["postgres"]
    assignment = {
        op_id: ("postgres" if pg.supports(op.kind_name) else "java")
        for op_id, op in plan.operators.items()
    }
    return ExecutionPlan(plan, assignment, ctx.registry)


def main():
    print("building/loading the 4-platform context (cached under .artifacts/) ...")
    ctx = get_context(("java", "spark", "flink", "postgres"))
    robopt = ctx.robopt()

    print("\n=== TPC-H Q3 with Postgres-resident relations ===")
    for size in (10 * GB, 100 * GB):
        plan = tpch.q3(size, in_postgres=True)
        baseline = postgres_only_baseline(ctx, plan)
        chosen = robopt.optimize(plan).execution_plan
        t_pg = ctx.measure(baseline)
        t_ml = ctx.measure(chosen)
        print(f"\nQ3 @ {size / GB:.0f} GB")
        print(f"  Postgres-only:     {t_pg:8.1f} s")
        print(
            f"  Robopt:            {t_ml:8.1f} s "
            f"({'+'.join(chosen.platforms_used())}, {t_pg / t_ml:.2f}x)"
        )
        pushed_down = [
            plan.operators[op_id].label
            for op_id, platform in sorted(chosen.assignment.items())
            if platform == "postgres"
        ]
        print(f"  pushed into Postgres: {', '.join(pushed_down)}")

    print("\n=== CrocoPR with links stored in Postgres (cross-platform is mandatory) ===")
    plan = crocopr.plan(2 * GB, iterations=10, in_postgres=True)
    chosen = robopt.optimize(plan).execution_plan
    print(f"  platforms: {'+'.join(chosen.platforms_used())}")
    print(f"  runtime:   {ctx.measure(chosen):.1f} s")
    print("  (Postgres filters the NULLs, a cluster engine preprocesses, and")
    print("   the PageRank loop runs where iteration is cheapest)")


if __name__ == "__main__":
    main()
