"""Cost-based vs. ML-based optimization, side by side (§II + §VII-C).

Reproduces the paper's core narrative on a handful of queries:

* a *simply-tuned* cost model (single-operator profiling) picks plans up
  to an order of magnitude worse than a carefully calibrated one (Fig. 2);
* even the *well-tuned* linear cost model misses operator interactions
  and per-iteration overheads, which the ML model learns from execution
  logs (Figs. 11/12) — with no manual tuning at all.

Usage::

    python examples/cost_vs_ml_optimizer.py
"""

from repro.bench.context import get_context
from repro.rheem.datasets import GB, MB
from repro.workloads import crocopr, sgd, tpch, word2nvec, wordcount


QUERIES = [
    ("WordCount 6GB", lambda: wordcount.plan(6 * GB)),
    ("Word2NVec 150MB", lambda: word2nvec.plan(150 * MB)),
    ("Aggregate (Q1) 200GB", lambda: tpch.q1(200 * GB)),
    ("SGD 7.4GB", lambda: sgd.plan(7.4 * GB)),
    ("CrocoPR 2GB", lambda: crocopr.plan(2 * GB)),
]


def fmt(seconds):
    return "out-of-memory" if seconds == float("inf") else f"{seconds:8.1f} s"


def main():
    print("building/loading the benchmark context (cached under .artifacts/) ...")
    ctx = get_context(("java", "spark", "flink"))
    robopt = ctx.robopt()
    well = ctx.rheemix(tuned="well")
    simply = ctx.rheemix(tuned="simply")

    print(
        f"\ncost model knobs an admin must tune: "
        f"{ctx.well_tuned.parameters.n_parameters()} coefficients"
    )
    print("Robopt's tuning effort: one TDGEN run, zero manual coefficients\n")

    header = f"{'query':<22} {'simply-tuned':>14} {'well-tuned':>12} {'Robopt (ML)':>12} {'best single':>12}"
    print(header)
    print("-" * len(header))
    for label, builder in QUERIES:
        plan = builder()
        singles = ctx.single_platform_runtimes(plan)
        t_simply = ctx.measure(simply.optimize(plan).execution_plan)
        t_well = ctx.measure(well.optimize(plan).execution_plan)
        t_ml = ctx.measure(robopt.optimize(plan).execution_plan)
        print(
            f"{label:<22} {fmt(t_simply):>14} {fmt(t_well):>12} "
            f"{fmt(t_ml):>12} {fmt(min(singles.values())):>12}"
        )

    print(
        "\nNote how the ML-based optimizer matches or beats the hand-"
        "calibrated cost model, and can beat the best single platform on "
        "iterative queries (SGD) by combining platforms."
    )


if __name__ == "__main__":
    main()
