"""Quickstart: train a runtime model and optimize a query end to end.

Runs the full Robopt pipeline on a small scale, with no cached artifacts:

1. pick the platforms (Java, Spark, Flink — §VII-A's trio);
2. generate training data with TDGEN against the simulated cluster;
3. train the random-forest runtime model;
4. optimize WordCount at two dataset sizes and compare the chosen plans
   against every single-platform execution.

Expected runtime: well under a minute.

Usage::

    python examples/quickstart.py
"""

from repro import Robopt, default_registry
from repro.ml import RuntimeModel
from repro.rheem.datasets import GB, MB
from repro.rheem.execution_plan import single_platform_plan
from repro.simulator import SimulatedExecutor
from repro.tdgen import TrainingDataGenerator
from repro.workloads import wordcount


def main():
    print("=== 1. platforms & simulated cluster ===")
    registry = default_registry(("java", "spark", "flink"))
    executor = SimulatedExecutor.default(registry)
    print(f"platforms: {', '.join(registry.names)}")

    print("\n=== 2. TDGEN training data ===")
    tdgen = TrainingDataGenerator(registry, executor, seed=0)
    dataset = tdgen.generate(6000)
    stats = tdgen.stats
    print(
        f"{stats.n_points} labelled plans from {stats.n_templates} templates "
        f"({stats.n_executed} executed, {stats.n_imputed} interpolated)"
    )

    print("\n=== 3. runtime model ===")
    model = RuntimeModel.train(dataset, "random_forest", seed=0, n_estimators=32)
    print(f"trained: {model}")
    print(f"holdout metrics: {model.metrics}")

    print("\n=== 4. optimize WordCount ===")
    robopt = Robopt(registry, model)
    for size, label in ((30 * MB, "30 MB"), (6 * GB, "6 GB")):
        plan = wordcount.plan(size)
        result = robopt.optimize(plan)
        chosen = executor.execute(result.execution_plan)
        print(f"\nWordCount @ {label}")
        print(f"  optimization latency: {result.stats.latency_s * 1e3:.1f} ms")
        print(f"  chosen platforms:     {'+'.join(result.execution_plan.platforms_used())}")
        print(f"  measured runtime:     {chosen.runtime_s:.1f} s")
        for platform in registry.names:
            report = executor.execute(single_platform_plan(plan, platform, registry))
            runtime = f"{report.runtime_s:.1f} s" if report.ok else report.status
            print(f"  {platform:>6} alone:         {runtime}")
        print("  chosen plan:")
        for line in result.execution_plan.describe().splitlines()[1:]:
            print(f"    {line}")


if __name__ == "__main__":
    main()
