"""TDGEN in depth: the three generation modes and the labelling economy.

§VI describes three ways to produce training data:

(i)   mimic a user-provided workload,
(ii)  generate for given topology shapes and a maximum size,
(iii) exhaustively cover all shapes up to a maximum size.

This example runs all three, shows how much execution the interpolation
saves, trains a model on the mode-(ii) data, and demonstrates the
degree-5 runtime interpolation on one job family (the Fig. 8 picture,
rendered as text).

Usage::

    python examples/training_data_generation.py
"""

import numpy as np

from repro import default_registry
from repro.ml import RuntimeModel
from repro.rheem.execution_plan import single_platform_plan
from repro.simulator import SimulatedExecutor
from repro.tdgen import (
    ConfigurationProfile,
    TrainingDataGenerator,
    default_cardinality_grid,
    interpolate_runtimes,
)
from repro.workloads import kmeans, tpch, wordcount, synthetic


def demo_modes(registry, executor):
    profile = ConfigurationProfile(
        cardinalities=tuple(default_cardinality_grid(1e4, 1e8, 6))
    )

    print("--- mode (ii): shapes + max size (the paper's evaluation setup) ---")
    tdgen = TrainingDataGenerator(registry, executor, seed=1)
    ds_shapes = tdgen.generate(
        1200, shapes=("pipeline", "juncture", "loop"), max_operators=50,
        profile=profile,
    )
    s = tdgen.stats
    print(
        f"  {s.n_points} points, executed fraction "
        f"{s.executed_fraction:.0%} ({s.n_failures} failed runs kept as penalties)"
    )

    print("--- mode (i): mimic a user workload ---")
    tdgen = TrainingDataGenerator(registry, executor, seed=2)
    workload = [wordcount.plan(), tpch.q3(), kmeans.plan()]
    ds_like = tdgen.generate(400, workload=workload, profile=profile)
    shapes = sorted({m["shape"] for m in ds_like.meta})
    print(f"  mimicked shapes: {shapes}")

    print("--- mode (iii): exhaustive shape coverage ---")
    tdgen = TrainingDataGenerator(registry, executor, seed=3)
    templates = tdgen.jobgen.templates_exhaustive(max_operators=18)
    print(f"  {len(templates)} templates across all shapes:")
    counts = {}
    for t in templates:
        counts[t.shape] = counts.get(t.shape, 0) + 1
    for shape, count in sorted(counts.items()):
        print(f"    {shape:<10} {count}")
    return ds_shapes


def demo_interpolation(registry, executor):
    print("\n--- Fig. 8-style interpolation (6-operator pipeline on Spark) ---")
    grid = np.geomspace(1e4, 1e9, 10)
    executed_idx = [0, 1, 2, 4, 6, 9]
    runtimes = {}
    for ci in executed_idx:
        plan = synthetic.pipeline_plan(6, cardinality=grid[ci])
        runtimes[ci] = executor.execute(
            single_platform_plan(plan, "spark", registry)
        ).runtime_s
    predicted = interpolate_runtimes(
        [grid[i] for i in executed_idx],
        [runtimes[i] for i in executed_idx],
        grid,
    )
    for ci, card in enumerate(grid):
        marker = "executed " if ci in executed_idx else "predicted"
        plan = synthetic.pipeline_plan(6, cardinality=card)
        truth = executor.execute(
            single_platform_plan(plan, "spark", registry)
        ).runtime_s
        bar = "#" * max(1, int(np.log10(predicted[ci] + 1.1) * 12))
        print(
            f"  {card:>12.2e} tuples  {marker}  "
            f"spline={predicted[ci]:8.1f}s  true={truth:8.1f}s  {bar}"
        )


def main():
    registry = default_registry(("java", "spark", "flink"))
    executor = SimulatedExecutor.default(registry)

    dataset = demo_modes(registry, executor)
    demo_interpolation(registry, executor)

    print("\n--- train + persist a model on the mode-(ii) data ---")
    model = RuntimeModel.train(dataset, "random_forest", seed=0, n_estimators=24)
    print(f"  {model}")
    path = "/tmp/robopt_model.pkl"
    model.save(path)
    reloaded = RuntimeModel.load(path)
    print(f"  saved and reloaded from {path}: {reloaded}")


if __name__ == "__main__":
    main()
