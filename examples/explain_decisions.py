"""Explainability: why did the optimizer pick this plan?

The vectorized enumeration keeps one surviving plan per boundary
footprint, which makes "show me the runners-up" essentially free:
``Robopt.optimize_topk`` ranks the surviving complete plans and
``Robopt.explain`` adds the model's prediction for every feasible
single-platform execution — the first question an operator asks.

Usage::

    python examples/explain_decisions.py
"""

from repro.bench.context import get_context
from repro.rheem.datasets import GB, MB
from repro.workloads import kmeans, tpch, wordcount


def main():
    print("building/loading the benchmark context (cached under .artifacts/) ...")
    ctx = get_context(("java", "spark", "flink"))
    robopt = ctx.robopt()

    for title, plan in (
        ("WordCount @ 3GB", wordcount.plan(3 * GB)),
        ("TPC-H Q3 @ 10GB", tpch.q3(10 * GB)),
        ("K-means @ 3.6GB, 1000 centroids", kmeans.plan(3610 * MB, n_centroids=1000)),
    ):
        print(f"\n================ {title} ================")
        report = robopt.explain(plan, k=3)
        print(report.render())
        measured = ctx.measure(report.chosen)
        shown = "out-of-memory" if measured == float("inf") else f"{measured:.1f}s"
        print(f"Measured on the simulator: {shown}")


if __name__ == "__main__":
    main()
