"""Multi-platform plans for iterative ML workloads (the Fig. 12 scenarios).

K-means and SGD are the paper's showcase for *combining* platforms: the
heavy per-point work belongs on a cluster engine, but the tiny per-
iteration state (centroids, weights) is cheapest to keep on single-node
Java and broadcast — a plan no single platform can match and a trade-off
a linear cost model systematically misses.

This example uses the cached benchmark context (built on first use, then
reused), optimizes K-means across centroid counts and SGD across batch
sizes, and prints the plans and their measured runtimes.

Usage::

    python examples/iterative_ml_workloads.py
"""

from repro.bench.context import get_context
from repro.rheem.datasets import GB, MB
from repro.workloads import kmeans, sgd


def show(ctx, name, plan):
    robopt = ctx.robopt()
    rheemix = ctx.rheemix()
    singles = ctx.single_platform_runtimes(plan)
    chosen = robopt.optimize(plan).execution_plan
    rx_plan = rheemix.optimize(plan).execution_plan
    print(f"\n--- {name} ---")
    for platform, runtime in singles.items():
        shown = f"{runtime:.1f} s" if runtime != float("inf") else "out-of-memory"
        print(f"  {platform:>6} alone: {shown}")
    print(
        f"  RHEEMix:  {'+'.join(rx_plan.platforms_used()):<18}"
        f" {ctx.measure(rx_plan):.1f} s"
    )
    print(
        f"  Robopt:   {'+'.join(chosen.platforms_used()):<18}"
        f" {ctx.measure(chosen):.1f} s"
    )
    print("  Robopt plan:")
    for line in chosen.describe().splitlines()[1:]:
        print(f"    {line}")


def main():
    print("building/loading the benchmark context (cached under .artifacts/) ...")
    ctx = get_context(("java", "spark", "flink"))

    print("\n=== K-means, 3.6 GB census data, 20 Lloyd iterations ===")
    for k in (10, 100, 1000):
        show(ctx, f"K-means with {k} centroids", kmeans.plan(3610 * MB, n_centroids=k))

    print("\n=== SGD, 7.4 GB HIGGS, 400 steps ===")
    for batch in (1, 100, 1000):
        show(ctx, f"SGD with batch size {batch}", sgd.plan(7.4 * GB, batch_size=batch))


if __name__ == "__main__":
    main()
