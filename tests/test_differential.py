"""Differential correctness: pruned Robopt vs exhaustive, batch vs serial.

Three guarantees the serving layer must never break:

* **Losslessness (Lemma 1).** For a merge-decomposable (linear) cost
  model, boundary pruning discards only subplans that cannot be part of
  the optimum — so Robopt's pruned search must land on exactly the same
  best cost as the pruning-free exhaustive enumeration of all ``k^n``
  plan vectors. Checked over ~50 seeded random TDGEN plans covering
  every generator shape.

* **Mode equivalence.** ``BatchOptimizationService`` must return
  bit-identical results whether it runs serially in-process or through
  the process pool — parallelism is an execution detail, never a
  semantic one. (With the fingerprint cache *disabled*; the cache's
  bucket-level equivalence is deliberately coarser and is exercised in
  ``test_serve_cache.py``.)

* **The template-cache guardrail.** The template tier deliberately
  serves plans that may not be the optimum — but *never* beyond the
  guardrail: every answer it serves must have true (model-predicted)
  cost within the configured factor of the exhaustive optimizer's
  optimum at the request's actual cardinalities, and any lookup the
  tier was not confident about must have been answered by full
  enumeration (bit-identical to a direct optimize).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exhaustive import ExhaustiveOptimizer
from repro.core.features import FeatureSchema
from repro.core.optimizer import Robopt
from repro.rheem.platforms import synthetic_registry
from repro.serve import (
    BatchJob,
    BatchOptimizationService,
    PlanCache,
    TemplateCache,
    template_fingerprint,
)
from repro.serve.testing import LinearRuntimeModel, linear_robopt_factory
from repro.tdgen.jobgen import JobGenerator

N_PLATFORMS = 2  # keeps k^n exhaustive enumeration tractable
SHAPES = ("pipeline", "juncture", "replicate", "loop")


def _registry():
    return synthetic_registry(N_PLATFORMS)


def _random_plans(count, seed=1234, max_operators=9, min_operators=6):
    """Seeded random TDGEN plans, cycling generator shapes and sizes."""
    registry = _registry()
    gen = JobGenerator(registry, seed=seed)
    per_shape = -(-count // len(SHAPES))  # ceil
    templates = []
    for shape in SHAPES:
        templates.extend(
            gen.templates_for_shapes(
                (shape,),
                max_operators=max_operators,
                count=per_shape,
                min_operators=min_operators,
            )
        )
    plans = []
    for index, template in enumerate(templates[:count]):
        plans.append(template(10.0 ** (3 + index % 4)))
    assert len(plans) == count
    return plans


class TestPrunedMatchesExhaustive:
    """Pruned best cost == exhaustive best cost on ~50 random plans."""

    @pytest.mark.parametrize("seed", [11, 23, 47])
    def test_lossless_over_random_plans(self, seed):
        registry = _registry()
        schema = FeatureSchema(registry)
        model = LinearRuntimeModel(schema.n_features, seed=seed)
        pruned = Robopt(registry, model, schema=schema)
        exhaustive = ExhaustiveOptimizer(registry, model, schema=schema)

        plans = _random_plans(17, seed=1000 + seed)
        for plan in plans:
            best = pruned.optimize(plan)
            truth = exhaustive.optimize(plan)
            # Pruning explored a subset of the full k^n space ...
            assert best.stats.total_vectors <= truth.stats.total_vectors
            # ... yet found exactly the same optimum (Lemma 1).
            assert np.isclose(
                best.predicted_runtime, truth.predicted_runtime, rtol=1e-9
            ), f"pruned optimum diverged from exhaustive on {plan.name!r}"

    def test_lossless_on_wide_boundary_plans(self):
        """Bushy plans with near-maximal boundaries (ISSUE 8).

        Juncture/replicate plans at 11-12 operators keep most operators
        adjacent to out-of-scope neighbours during enumeration, driving
        the widest pruning footprints this suite sees — the territory of
        the chunked (> 8 column) packed-word path. Lemma 1 must survive
        the packing: the pruned optimum still equals the exhaustive one.
        """
        registry = _registry()
        schema = FeatureSchema(registry)
        model = LinearRuntimeModel(schema.n_features, seed=3)
        pruned = Robopt(registry, model, schema=schema)
        exhaustive = ExhaustiveOptimizer(registry, model, schema=schema)
        gen = JobGenerator(registry, seed=77)
        templates = gen.templates_for_shapes(
            ("juncture", "replicate"),
            max_operators=12,
            count=6,
            min_operators=11,
        )
        for index, template in enumerate(templates):
            plan = template(10.0 ** (3 + index % 4))
            best = pruned.optimize(plan)
            truth = exhaustive.optimize(plan)
            assert best.stats.total_vectors <= truth.stats.total_vectors
            assert np.isclose(
                best.predicted_runtime, truth.predicted_runtime, rtol=1e-9
            ), f"pruned optimum diverged from exhaustive on {plan.name!r}"

    def test_pruning_actually_prunes(self):
        """The comparison is meaningful: pruning must shrink the space
        on at least some plans (otherwise the lossless check is vacuous)."""
        registry = _registry()
        schema = FeatureSchema(registry)
        model = LinearRuntimeModel(schema.n_features, seed=7)
        pruned = Robopt(registry, model, schema=schema)
        exhaustive = ExhaustiveOptimizer(registry, model, schema=schema)
        shrunk = 0
        for plan in _random_plans(8, seed=99):
            a = pruned.optimize(plan).stats.total_vectors
            b = exhaustive.optimize(plan).stats.total_vectors
            shrunk += a < b
        assert shrunk > 0


class TestBatchMatchesSerial:
    """Pool execution is bit-identical to serial execution."""

    def _jobs(self, count=50, seed=4321):
        return [
            BatchJob(f"job{i}", plan)
            for i, plan in enumerate(_random_plans(count, seed=seed))
        ]

    def test_pool_bit_identical_to_serial(self):
        registry = _registry()
        factory = linear_robopt_factory(platforms=N_PLATFORMS, seed=5)

        serial = BatchOptimizationService(factory, registry, workers=0)
        pooled = BatchOptimizationService(factory, registry, workers=2)

        jobs = self._jobs()
        serial_report = serial.optimize_batch(jobs)
        pooled_report = pooled.optimize_batch(self._jobs())

        assert serial_report.n_failed == 0
        assert pooled_report.n_failed == 0
        assert pooled_report.mode == "pool"
        for a, b in zip(serial_report.outcomes, pooled_report.outcomes):
            assert a.job_id == b.job_id
            # Bit-identical: same platform decisions AND the exact same
            # float predicted runtime (results cross the pool as JSON,
            # whose float round-trip is exact).
            assert (
                a.result.execution_plan.assignment
                == b.result.execution_plan.assignment
            )
            assert a.result.predicted_runtime == b.result.predicted_runtime
            assert a.result.execution_plan.plan.signature() == \
                b.result.execution_plan.plan.signature()

        # A second batch rides the *warm* pool (workers initialized by the
        # first batch, with their singleton memos populated): still
        # bit-identical — warmth is an execution detail too.
        warm_report = pooled.optimize_batch(self._jobs())
        pooled.close()
        assert warm_report.n_failed == 0
        for a, b in zip(serial_report.outcomes, warm_report.outcomes):
            assert a.job_id == b.job_id
            assert (
                a.result.execution_plan.assignment
                == b.result.execution_plan.assignment
            )
            assert a.result.predicted_runtime == b.result.predicted_runtime

    def test_memoization_does_not_change_results(self):
        """The singleton memo is a pure cache: per-job results with it
        must equal per-job results without it."""
        registry = _registry()
        factory = linear_robopt_factory(platforms=N_PLATFORMS, seed=5)
        plain = BatchOptimizationService(
            factory, registry, workers=0, memoize_singletons=False
        )
        memoized = BatchOptimizationService(
            factory, registry, workers=0, memoize_singletons=True
        )
        a = plain.optimize_batch(self._jobs(24, seed=2024))
        b = memoized.optimize_batch(self._jobs(24, seed=2024))
        for x, y in zip(a.outcomes, b.outcomes):
            assert x.result.predicted_runtime == y.result.predicted_runtime
            assert (
                x.result.execution_plan.assignment
                == y.result.execution_plan.assignment
            )

    def test_cached_results_equal_fresh_results_for_identical_plans(self):
        """For *identical* plans (not just same-bucket ones) a cache hit
        returns the same decisions a fresh optimization would."""
        registry = _registry()
        factory = linear_robopt_factory(platforms=N_PLATFORMS, seed=5)
        jobs = self._jobs(12, seed=777)
        fresh = BatchOptimizationService(factory, registry, workers=0)
        cached = BatchOptimizationService(
            factory, registry, workers=0, cache=PlanCache(max_entries=64)
        )
        baseline = fresh.optimize_batch(jobs)
        cached.optimize_batch(self._jobs(12, seed=777))  # warm the cache
        warm = cached.optimize_batch(self._jobs(12, seed=777))
        assert warm.cache_hit_rate == 1.0
        for x, y in zip(baseline.outcomes, warm.outcomes):
            assert y.cached
            assert x.result.predicted_runtime == y.result.predicted_runtime
            assert (
                x.result.execution_plan.assignment
                == y.result.execution_plan.assignment
            )


class TestTemplateGuardrail:
    """Template-tier answers stay within the guardrail of the true optimum.

    ~50 TDGEN plans: a dozen parametric templates, each instantiated
    several times with cardinalities *resampled from a log-uniform
    distribution* (the workload the exact-fingerprint tier misses on).
    Served answers are checked against a pruning-free exhaustive
    enumeration at the request's actual cardinalities.
    """

    GUARDRAIL = 1.2

    def _templates(self, count=12, seed=501):
        registry = _registry()
        gen = JobGenerator(registry, seed=seed)
        per_shape = -(-count // len(SHAPES))
        templates = []
        for shape in SHAPES:
            templates.extend(
                gen.templates_for_shapes(
                    (shape,), max_operators=8, count=per_shape, min_operators=5
                )
            )
        return registry, templates[:count]

    def test_every_served_answer_is_within_the_guardrail(self):
        registry, templates = self._templates()
        schema = FeatureSchema(registry)
        model = LinearRuntimeModel(schema.n_features, seed=5)
        exhaustive = ExhaustiveOptimizer(registry, model, schema=schema)
        direct = Robopt(registry, model, schema=schema)
        cache = TemplateCache(guardrail=self.GUARDRAIL)
        service = BatchOptimizationService(
            linear_robopt_factory(platforms=N_PLATFORMS, seed=5),
            registry,
            workers=0,
            template_cache=cache,
        )
        rng = np.random.default_rng(99)

        def draw_jobs(tag, per_template):
            jobs = []
            for t_index, template in enumerate(templates):
                for rep in range(per_template):
                    cardinality = 10.0 ** rng.uniform(3.0, 8.0)
                    jobs.append(
                        BatchJob(f"{tag}-{t_index}-{rep}", template(cardinality))
                    )
            return jobs

        # Warm phase: first sight of every template misses and folds the
        # fresh optimum back into its candidate set.
        warm_jobs = draw_jobs("warm", 3)
        warm = service.optimize_batch(warm_jobs)
        assert warm.n_failed == 0

        # Eval phase: fresh cardinality draws — never seen before.
        eval_jobs = draw_jobs("eval", 2)
        report = service.optimize_batch(eval_jobs)
        assert report.n_failed == 0
        assert len(warm_jobs) + len(eval_jobs) >= 50

        served = 0
        for job, outcome in zip(eval_jobs, report.outcomes):
            truth = exhaustive.optimize(job.plan)
            if outcome.template_hit:
                served += 1
                # The guardrail bound, against the *exhaustive* optimum
                # at this job's actual cardinalities.
                assert outcome.result.predicted_runtime <= (
                    self.GUARDRAIL * truth.predicted_runtime * (1.0 + 1e-9)
                ), f"guardrail breached on {job.job_id}"
            else:
                # A refused lookup fell back to full enumeration:
                # bit-identical to optimizing directly.
                fresh = direct.optimize(job.plan)
                assert (
                    outcome.result.predicted_runtime == fresh.predicted_runtime
                )
                assert (
                    outcome.result.execution_plan.assignment
                    == fresh.execution_plan.assignment
                )
        # Non-vacuous: the tier actually served most of the eval phase.
        assert served >= len(eval_jobs) // 2
        assert report.template_hit_rate >= 0.5

    def test_low_confidence_falls_back_to_enumeration(self):
        """A multi-candidate template whose selector is not trained yet
        must answer via full enumeration — bit-identical to a direct
        optimize — and count the fallback."""
        registry, templates = self._templates(count=4, seed=77)
        schema = FeatureSchema(registry)
        model = LinearRuntimeModel(schema.n_features, seed=5)
        direct = Robopt(registry, model, schema=schema)
        # min_observations unreachable: any multi-candidate template is
        # permanently low-confidence.
        cache = TemplateCache(guardrail=self.GUARDRAIL, min_observations=10**9)
        service = BatchOptimizationService(
            linear_robopt_factory(platforms=N_PLATFORMS, seed=5),
            registry,
            workers=0,
            template_cache=cache,
        )
        plan = templates[0](1e5)
        tfp = template_fingerprint(plan, registry)
        base = direct.optimize(plan)
        # Forge a second candidate so the template is multi-candidate.
        names = list(registry.names)
        for name in names:
            forged = base.copy()
            for op_id in forged.execution_plan.assignment:
                forged.execution_plan.assignment[op_id] = name
            cache.observe(tfp, plan, forged)
        assert len(cache.candidates(tfp)) >= 2

        probe = BatchJob("probe", templates[0](3.3e6))
        report = service.optimize_batch([probe])
        (outcome,) = report.outcomes
        assert not outcome.template_hit  # fell back ...
        assert cache.stats.low_confidence >= 1  # ... for the right reason
        fresh = direct.optimize(probe.plan)
        assert outcome.result.predicted_runtime == fresh.predicted_runtime
        assert (
            outcome.result.execution_plan.assignment
            == fresh.execution_plan.assignment
        )


class TestRiskAndFeedbackAreOptIn:
    """ISSUE 10 acceptance: risk_aversion=0 and a disabled feedback loop
    are *bit-identical* to the pre-feedback optimizer — the new
    machinery costs nothing until explicitly turned on.
    """

    def test_k_zero_is_bit_identical_and_never_asks_for_dist(self, tiny_context):
        ctx = tiny_context
        registry = ctx["registry"]

        calls = []
        model = ctx["model"]
        original = model.predict_dist

        class SpyModel:
            """Delegates everything, records predict_dist calls."""

            def __getattr__(self, name):
                return getattr(model, name)

            def predict_dist(self, X):
                calls.append(np.shape(X))
                return original(X)

        plain = Robopt(registry, model, schema=ctx["schema"])
        k_zero = Robopt(registry, SpyModel(), schema=ctx["schema"], risk_aversion=0.0)
        from repro.tdgen.jobgen import JobGenerator

        gen = JobGenerator(registry, seed=11)
        plans = [
            t(10.0 ** (4 + i % 3))
            for i, t in enumerate(
                gen.templates_for_shapes(("pipeline", "juncture"), max_operators=7, count=6)
            )
        ]
        for plan in plans:
            a = plain.optimize(plan)
            b = k_zero.optimize(plan)
            assert a.execution_plan.assignment == b.execution_plan.assignment
            assert a.predicted_runtime == b.predicted_runtime  # bit-identical
            assert b.stats.predicted_std == 0.0
        assert calls == []  # k=0 never even asks for a distribution

    def test_positive_k_minimizes_the_risk_score(self, tiny_context):
        """The risk choice is argmin(mean + k*std) over the final
        survivors, the reported runtime stays the mean, and the std is
        surfaced in the stats."""
        ctx = tiny_context
        k = 2.0
        risky = Robopt(ctx["registry"], ctx["model"], schema=ctx["schema"], risk_aversion=k)
        from repro.tdgen.jobgen import JobGenerator

        gen = JobGenerator(ctx["registry"], seed=23)
        checked = 0
        for i, template in enumerate(
            gen.templates_for_shapes(("pipeline", "juncture"), max_operators=7, count=6)
        ):
            plan = template(10.0 ** (4 + i % 3))
            result = risky.optimize(plan)
            final = result.final_enumeration
            if final is None:
                continue
            mean, std = ctx["model"].predict_dist(final.features)
            scores = mean + k * std
            assert result.predicted_runtime + k * result.stats.predicted_std \
                == pytest.approx(float(scores.min()))
            assert result.stats.predicted_std >= 0.0
            checked += 1
        assert checked >= 4

    def test_invalid_risk_aversion_rejected(self, tiny_context):
        from repro.exceptions import EnumerationError

        ctx = tiny_context
        with pytest.raises(EnumerationError):
            Robopt(ctx["registry"], ctx["model"], schema=ctx["schema"], risk_aversion=-0.5)

    def test_service_with_inert_feedback_is_bit_identical(self):
        """A service carrying a feedback controller that never retrains
        must answer exactly like a service with feedback disabled —
        observation is a pure tap off the result stream."""
        from repro.core.features import FeatureSchema as FS
        from repro.ml import FeedbackLoop
        from repro.serve.feedback import FeedbackController

        registry = _registry()

        class _Exec:
            def execute(self, xplan, timeout_s=3600.0):
                class R:
                    ok = True
                    status = "success"
                    runtime_s = 3.0
                    detail = ""

                return R()

        ctrl = FeedbackController(
            FeedbackLoop(FS(registry)),
            _Exec(),
            min_observations=10**9,  # retraining unreachable
        )
        plans = _random_plans(12, seed=808)
        with_feedback = BatchOptimizationService(
            linear_robopt_factory(platforms=N_PLATFORMS, seed=3),
            registry,
            workers=0,
            feedback=ctrl,
        )
        without = BatchOptimizationService(
            linear_robopt_factory(platforms=N_PLATFORMS, seed=3),
            _registry(),
            workers=0,
        )
        try:
            a = with_feedback.optimize_batch([p.clone() for p in plans])
            b = without.optimize_batch([p.clone() for p in plans])
        finally:
            with_feedback.close()
            without.close()
        assert ctrl.loop.n_observations == len(plans)  # the tap did run
        for left, right in zip(a.outcomes, b.outcomes):
            assert left.ok and right.ok
            assert left.result.predicted_runtime == right.result.predicted_runtime
            assert (
                left.result.execution_plan.assignment
                == right.result.execution_plan.assignment
            )
