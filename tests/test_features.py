"""Tests for the plan-vector feature schema (§IV-A)."""

import numpy as np
import pytest

from repro.core.features import TOPOLOGIES, FeatureSchema
from repro.exceptions import VectorizationError
from repro.rheem.execution_plan import ExecutionPlan, single_platform_plan
from repro.rheem.platforms import default_registry, synthetic_registry

from conftest import build_join_plan, build_loop_plan, build_pipeline


@pytest.fixture
def reg():
    return default_registry(("java", "spark", "flink"))


@pytest.fixture
def schema(reg):
    return FeatureSchema(reg)


class TestLayout:
    def test_topology_cells_lead(self, schema):
        names = schema.feature_names()
        assert names[:4] == [f"topology.{t}" for t in TOPOLOGIES]

    def test_every_cell_named_uniquely(self, schema):
        names = schema.feature_names()
        assert len(names) == schema.n_features
        assert all(names)
        assert len(set(names)) == len(names)

    def test_block_sizes_scale_with_platforms(self):
        small = FeatureSchema(synthetic_registry(2))
        large = FeatureSchema(synthetic_registry(5))
        assert large.n_features > small.n_features

    def test_unknown_kind_raises(self, schema):
        with pytest.raises(VectorizationError):
            schema.kind_offset("Teleport")
        with pytest.raises(VectorizationError):
            schema.conv_offset("teleport")

    def test_static_mask_partition(self, schema):
        names = schema.feature_names()
        mask = schema.static_mask
        for i, name in enumerate(names):
            dynamic = (
                ".on." in name
                or name.startswith("conv.")
                or name.startswith("platform.")
            )
            assert mask[i] == (not dynamic), name


class TestStaticFeatures:
    def test_pipeline_topology_cells(self, schema):
        plan = build_pipeline(3)
        v = schema.static_features(plan)
        assert v[0] == 1  # one pipeline
        assert v[1] == v[2] == v[3] == 0

    def test_operator_totals(self, schema):
        plan = build_join_plan()
        v = schema.static_features(plan)
        assert v[schema.op_total_cell("Join")] == 1
        assert v[schema.op_total_cell("TextFileSource")] == 2
        assert v[schema.op_total_cell("Cartesian")] == 0

    def test_cardinality_sums(self, schema):
        plan = build_pipeline(2)
        v = schema.static_features(plan)
        cards = plan.cardinalities()
        filter_id = 1
        assert v[schema.op_input_card_cell("Filter")] == cards[filter_id][0]
        assert v[schema.op_output_card_cell("Filter")] == cards[filter_id][1]

    def test_udf_complexity_sum(self, schema):
        plan = build_pipeline(3)
        v = schema.static_features(plan)
        expected = sum(
            int(op.udf_complexity)
            for op in plan.operators.values()
            if op.kind_name == "Map"
        )
        assert v[schema.op_udf_cell("Map")] == expected

    def test_tuple_size_is_max_over_sources(self, schema):
        plan = build_join_plan()  # sources with tuple sizes 100 and 50
        v = schema.static_features(plan)
        assert v[schema.tuple_size_cell] == 100.0

    def test_loop_iterations_cell(self, schema):
        plan = build_loop_plan(iterations=13)
        v = schema.static_features(plan)
        assert v[schema.loop_iterations_cell] == 13.0

    def test_scoped_static_features(self, schema):
        plan = build_join_plan()
        v = schema.static_features(plan, scope={0, 1})
        assert v[schema.op_total_cell("TextFileSource")] == 1
        assert v[schema.op_total_cell("Join")] == 0

    def test_dynamic_cells_zero(self, schema):
        plan = build_pipeline(2)
        v = schema.static_features(plan)
        assert np.all(v[~schema.static_mask] == 0.0)


class TestEncodeExecutionPlan:
    def test_platform_counts(self, schema, reg):
        plan = build_pipeline(2)
        xp = single_platform_plan(plan, "spark", reg)
        v = schema.encode_execution_plan(xp)
        spark = reg.index("spark")
        java = reg.index("java")
        assert v[schema.platform_count_cell(spark)] == plan.n_operators
        assert v[schema.platform_count_cell(java)] == 0
        assert v[schema.op_platform_cell("Filter", spark)] == 1

    def test_no_conversions_on_single_platform(self, schema, reg):
        plan = build_pipeline(2)
        v = schema.encode_execution_plan(single_platform_plan(plan, "flink", reg))
        for kind in schema.conversion_kinds:
            for i in range(len(reg)):
                assert v[schema.conv_platform_cell(kind, i)] == 0

    def test_conversion_features_recorded(self, schema, reg):
        plan = build_pipeline(2)
        assignment = {0: "spark", 1: "spark", 2: "java", 3: "java"}
        xp = ExecutionPlan(plan, assignment, reg)
        v = schema.encode_execution_plan(xp)
        spark = reg.index("spark")
        assert v[schema.conv_platform_cell("collect", spark)] == 1
        moved = xp.conversions()[0].cardinality
        assert v[schema.conv_input_card_cell("collect")] == moved
        assert v[schema.conv_output_card_cell("collect")] == moved

    def test_loop_conversion_weighted_by_iterations(self, schema, reg):
        plan = build_loop_plan(iterations=5)
        body = sorted(plan.loops[0].body)
        assignment = {i: "spark" for i in plan.operators}
        assignment[body[1]] = "java"
        xp = ExecutionPlan(plan, assignment, reg)
        v = schema.encode_execution_plan(xp)
        cards = plan.cardinalities()
        expected = sum(
            c.cardinality * c.iterations
            for c in xp.conversions()
            if c.kind == "collect"
        )
        assert v[schema.conv_input_card_cell("collect")] == pytest.approx(expected)

    def test_platform_aggregates(self, schema, reg):
        plan = build_pipeline(2)
        xp = single_platform_plan(plan, "java", reg)
        v = schema.encode_execution_plan(xp)
        java = reg.index("java")
        cards = plan.cardinalities()
        assert v[schema.platform_in_card_cell(java)] == pytest.approx(
            sum(c[0] for c in cards.values())
        )
        assert v[schema.platform_out_card_cell(java)] == pytest.approx(
            sum(c[1] for c in cards.values())
        )

    def test_loop_work_aggregate(self, schema, reg):
        plan = build_loop_plan(iterations=11)
        xp = single_platform_plan(plan, "spark", reg)
        v = schema.encode_execution_plan(xp)
        spark = reg.index("spark")
        cards = plan.cardinalities()
        expected = sum(11 * cards[i][0] for i in plan.loops[0].body)
        assert v[schema.platform_loop_work_cell(spark)] == pytest.approx(expected)

    def test_registry_mismatch_rejected(self, schema):
        other = default_registry(("java", "spark"))
        plan = build_pipeline(2)
        xp = single_platform_plan(plan, "java", other)
        with pytest.raises(VectorizationError):
            schema.encode_execution_plan(xp)

    def test_encode_batch_shape(self, schema, reg):
        plan = build_pipeline(2)
        xplans = [single_platform_plan(plan, p, reg) for p in reg.names]
        matrix = schema.encode_batch(xplans)
        assert matrix.shape == (3, schema.n_features)
        assert schema.encode_batch([]).shape == (0, schema.n_features)


class TestEncodePartial:
    def test_partial_matches_scoped_static_plus_dynamic(self, schema, reg):
        plan = build_pipeline(2)
        scope = {0, 1}
        assignment = {0: "spark", 1: "java", 2: "java", 3: "java"}
        v = schema.encode_partial(plan, scope, assignment)
        assert v[schema.op_total_cell("TextFileSource")] == 1
        spark = reg.index("spark")
        assert v[schema.op_platform_cell("TextFileSource", spark)] == 1
        # edge 0->1 crosses spark -> java inside the scope
        assert v[schema.conv_platform_cell("collect", spark)] == 1

    def test_partial_full_scope_equals_direct_encoding(self, schema, reg):
        plan = build_join_plan()
        assignment = {i: ("spark" if i % 2 else "java") for i in plan.operators}
        xp = ExecutionPlan(plan, assignment, reg)
        direct = schema.encode_execution_plan(xp)
        partial = schema.encode_partial(plan, set(plan.operators), assignment)
        assert np.allclose(direct, partial)
