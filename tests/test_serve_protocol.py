"""Property and contract tests for the serve wire protocol.

The wire schema's promises (see ``repro/serve/protocol.py``):

* arbitrary frames survive ``to_json`` → ``from_json`` bit-identically
  (hypothesis-generated, dataclass equality AND re-serialized text);
* unknown fields are ignored (a newer peer may add fields);
* a version mismatch is a structured ``version_mismatch`` error;
* malformed frames raise :class:`ProtocolError` with a ``bad_request``
  code — never anything else;
* the JSONL job-row vocabulary (``load_jobs_jsonl``) degrades per-row.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ReproError
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ErrorResponse,
    OptimizeRequest,
    OptimizeResponse,
    ProtocolError,
    ShutdownRequest,
    ShutdownResponse,
    StatsRequest,
    StatsResponse,
    job_row_to_request,
    load_jobs_jsonl,
    parse_request,
    parse_response,
    parse_size,
    request_to_job,
    request_to_plan,
    resolve_workload,
)

# Finite floats only: NaN/inf are not JSON, and the schema rejects them
# (to_json uses allow_nan=False).
finite = st.floats(allow_nan=False, allow_infinity=False)
positive = st.floats(min_value=1e-3, max_value=1e15)
nonneg = st.floats(min_value=0.0, max_value=1e9)
names = st.text(
    alphabet=st.characters(codec="utf-8", exclude_categories=("Cs",)), max_size=24
)

json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(10**9), max_value=10**9)
    | finite
    | names,
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(names, children, max_size=3),
    max_leaves=8,
)
json_objects = st.dictionaries(names, json_values, max_size=4)

optimize_requests = st.builds(
    OptimizeRequest,
    request_id=names,
    plan=st.none(),
    workload=st.just("WordCount"),
    size_bytes=st.none() | positive,
    deadline_ms=st.none() | nonneg,
    tags=json_objects,
) | st.builds(
    OptimizeRequest,
    request_id=names,
    plan=json_objects,
    workload=st.none(),
    size_bytes=st.none() | positive,
    deadline_ms=st.none() | nonneg,
    tags=json_objects,
)

optimize_responses = st.builds(
    OptimizeResponse,
    request_id=names,
    predicted_runtime=finite,
    platforms=st.lists(names, max_size=3),
    assignment=st.dictionaries(names, names, max_size=3),
    stats=json_objects,
    optimizer=names,
    degraded=names,
    cached=st.booleans(),
    coalesced=st.booleans(),
    duration_ms=finite,
)

error_responses = st.builds(
    ErrorResponse,
    request_id=names,
    error=names,
    code=st.sampled_from(
        ["bad_request", "overloaded", "shutting_down", "timeout", "internal"]
    ),
    retry_after_ms=st.none() | nonneg,
)


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(optimize_requests)
    def test_request_round_trip_bit_identical(self, request):
        text = request.to_json()
        back = parse_request(text)
        assert back == request
        assert back.to_json() == text

    @settings(max_examples=60, deadline=None)
    @given(optimize_responses)
    def test_response_round_trip_bit_identical(self, response):
        text = response.to_json()
        back = parse_response(text)
        assert back == response
        assert back.to_json() == text

    @settings(max_examples=40, deadline=None)
    @given(error_responses)
    def test_error_round_trip_bit_identical(self, response):
        text = response.to_json()
        back = parse_response(text)
        assert back == response
        assert back.to_json() == text

    def test_stats_and_shutdown_round_trip(self):
        for frame in (
            StatsRequest(request_id="s1"),
            ShutdownRequest(request_id="s2"),
            StatsResponse(
                request_id="s1",
                counters={"serve.jobs": 3.0},
                latency_ms={"p50": 1.5, "p95": 9.0, "p99": 12.0},
                pending=2,
                draining=True,
                uptime_s=4.5,
            ),
            ShutdownResponse(request_id="s2", draining=True, pending=1),
        ):
            text = frame.to_json()
            parse = (
                parse_request
                if isinstance(frame, (StatsRequest, ShutdownRequest))
                else parse_response
            )
            back = parse(text)
            assert back == frame
            assert back.to_json() == text

    def test_stats_feedback_payload_round_trips(self):
        """The ISSUE 10 stats extension: drift health + retrain counters
        ride the stats frame, and frames from older daemons (no
        ``feedback`` key) parse to an empty dict."""
        frame = StatsResponse(
            request_id="s3",
            counters={"serve.jobs": 1.0},
            latency_ms={"p50": 1.0, "p95": 2.0, "p99": 3.0},
            pending=0,
            draining=False,
            uptime_s=1.0,
            feedback={
                "q_error": 2.5,
                "status": "warn",
                "retrains": 1,
                "model_generation": 1,
                "observations_total": 40,
            },
        )
        text = frame.to_json()
        back = parse_response(text)
        assert back == frame
        assert back.feedback["status"] == "warn"
        # An old daemon's frame has no feedback key at all.
        doc = json.loads(text)
        del doc["feedback"]
        old = parse_response(json.dumps(doc))
        assert old.feedback == {}
        # A no-sample q_error travels as null (to_json forbids NaN).
        frame.feedback["q_error"] = None
        assert parse_response(frame.to_json()).feedback["q_error"] is None

    def test_every_frame_carries_version_and_type(self):
        doc = json.loads(OptimizeRequest(workload="WordCount").to_json())
        assert doc["v"] == PROTOCOL_VERSION
        assert doc["type"] == "optimize"
        doc = json.loads(ErrorResponse(error="x").to_json())
        assert doc["v"] == PROTOCOL_VERSION
        assert doc["type"] == "error"


class TestTolerance:
    @settings(max_examples=40, deadline=None)
    @given(optimize_requests, json_values)
    def test_unknown_fields_are_ignored(self, request, extra):
        doc = json.loads(request.to_json())
        doc["field_from_the_future"] = extra
        assert parse_request(json.dumps(doc)) == request

    def test_unknown_response_fields_are_ignored(self):
        doc = json.loads(OptimizeResponse(request_id="a").to_json())
        doc["telemetry"] = {"spans": [1, 2, 3]}
        assert parse_response(json.dumps(doc)).request_id == "a"


class TestRejection:
    def test_version_mismatch_is_structured(self):
        frame = json.dumps({"v": PROTOCOL_VERSION + 1, "type": "optimize"})
        with pytest.raises(ProtocolError) as err:
            parse_request(frame)
        assert err.value.code == "version_mismatch"
        response = err.value.to_response()
        assert response.code == "version_mismatch"
        assert not response.ok

    def test_missing_version_is_a_mismatch(self):
        with pytest.raises(ProtocolError) as err:
            parse_request(json.dumps({"type": "optimize"}))
        assert err.value.code == "version_mismatch"

    def test_version_error_carries_request_id(self):
        frame = json.dumps({"v": 99, "type": "optimize", "request_id": "r7"})
        with pytest.raises(ProtocolError) as err:
            parse_request(frame)
        assert err.value.request_id == "r7"

    @pytest.mark.parametrize(
        "text",
        [
            "not json at all",
            "[1, 2, 3]",
            '"just a string"',
            json.dumps({"v": PROTOCOL_VERSION, "type": "no_such_frame"}),
            json.dumps({"v": PROTOCOL_VERSION}),
            json.dumps(
                {"v": PROTOCOL_VERSION, "type": "optimize", "request_id": 42}
            ),
            json.dumps(
                {"v": PROTOCOL_VERSION, "type": "optimize", "deadline_ms": "soon"}
            ),
        ],
    )
    def test_malformed_frames_raise_bad_request(self, text):
        with pytest.raises(ProtocolError) as err:
            parse_request(text)
        assert err.value.code in ("bad_request", "version_mismatch")

    def test_request_needs_exactly_one_plan_source(self):
        with pytest.raises(ProtocolError):
            OptimizeRequest(plan=None, workload=None).validate()
        with pytest.raises(ProtocolError):
            OptimizeRequest(plan={"operators": []}, workload="WordCount").validate()

    def test_negative_knobs_are_rejected(self):
        with pytest.raises(ProtocolError):
            OptimizeRequest(workload="WordCount", size_bytes=-1.0).validate()
        with pytest.raises(ProtocolError):
            OptimizeRequest(workload="WordCount", deadline_ms=-5.0).validate()

    def test_nan_never_reaches_the_wire(self):
        response = OptimizeResponse(request_id="x", predicted_runtime=float("nan"))
        with pytest.raises(ValueError):
            response.to_json()


class TestWorkloadResolution:
    @pytest.mark.parametrize("name", ["WordCount", "wordcount", "word count", "Word-Count"])
    def test_name_normalization(self, name):
        plan = resolve_workload(name)
        assert plan.n_operators > 0

    def test_unknown_workload_raises(self):
        with pytest.raises(ReproError, match="unknown workload"):
            resolve_workload("NoSuchThing")

    def test_request_to_plan_resolves_and_validates(self):
        plan = request_to_plan(OptimizeRequest(workload="WordCount"))
        assert plan.n_operators > 0

    def test_request_to_plan_wraps_bad_documents(self):
        with pytest.raises(ProtocolError) as err:
            request_to_plan(OptimizeRequest(plan={"operators": "nope"}))
        assert err.value.code == "bad_request"

    def test_request_to_job_threads_the_knobs(self):
        request = OptimizeRequest(
            request_id="j1",
            workload="WordCount",
            size_bytes=2**20,
            deadline_ms=250.0,
            tags={"team": "qa"},
        )
        job = request_to_job(request)
        assert job.job_id == "j1"
        assert job.size_bytes == 2**20
        assert job.deadline_ms == 250.0
        assert job.tags == {"team": "qa"}


class TestJobRows:
    def test_workload_row(self):
        request = job_row_to_request(
            {"id": "a", "workload": "WordCount", "size": "30MB"}
        )
        assert request.request_id == "a"
        assert request.workload == "WordCount"
        assert request.size_bytes == parse_size("30MB")

    def test_numeric_size(self):
        request = job_row_to_request({"workload": "WordCount", "size": 1024})
        assert request.size_bytes == 1024.0

    def test_bare_plan_document(self):
        doc = {"name": "p", "operators": []}
        request = job_row_to_request(doc)
        assert request.plan == doc
        assert request.request_id == "p"

    def test_deadline_rides_along(self):
        request = job_row_to_request({"workload": "WordCount", "deadline_ms": 50})
        assert request.deadline_ms == 50.0

    @pytest.mark.parametrize(
        "row",
        [
            [1, 2],
            {"id": "x"},
            {"workload": "WordCount", "size": "not-a-size"},
            {"workload": "WordCount", "tags": "not-an-object"},
        ],
    )
    def test_bad_rows_raise_protocol_error(self, row):
        with pytest.raises(ProtocolError):
            job_row_to_request(row)


class TestLoadJobsJsonl:
    def test_per_row_degradation(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        path.write_text(
            "# comment\n"
            "\n"
            '{"id": "good", "workload": "WordCount", "size": "10MB"}\n'
            "this is not json\n"
            '{"id": "badsize", "workload": "WordCount", "size": "oops"}\n'
        )
        requests, errors = load_jobs_jsonl(str(path))
        assert [r.request_id for r in requests] == ["good"]
        assert len(errors) == 2
        assert all(not row["ok"] for row in errors)
        assert "line4" in errors[0]["id"]

    def test_zero_rows_raises(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("# only comments\n\n")
        with pytest.raises(ReproError, match="contains no jobs"):
            load_jobs_jsonl(str(path))

    def test_unreadable_file_raises(self, tmp_path):
        with pytest.raises(ReproError, match="cannot read jobs"):
            load_jobs_jsonl(str(tmp_path / "missing.jsonl"))


class TestParseSize:
    def test_suffixes(self):
        assert parse_size("1KB") == 2**10
        assert parse_size("30MB") == 30 * 2**20
        assert parse_size("6GB") == 6 * 2**30
        assert parse_size("1TB") == 2**40
        assert parse_size(" 2 gb ") == 2 * 2**30
        assert parse_size("123") == 123.0

    def test_cli_reexports_it(self):
        from repro.cli import parse_size as cli_parse_size

        assert cli_parse_size is parse_size
