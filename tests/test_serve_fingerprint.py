"""Property-based tests for the plan-cache fingerprint.

The fingerprint is the plan cache's correctness boundary: two plans may
share a cache entry **iff** they fingerprint equal. These properties pin
down both directions — equal structures hash equal (else the cache never
hits), and anything the optimizer's decision depends on (operator kinds,
selectivities, topology, platform alphabet, cardinality *bucket*) hashes
different (else the cache returns wrong plans).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rheem.datasets import DatasetProfile
from repro.rheem.logical_plan import LogicalPlan
from repro.rheem.operators import operator
from repro.rheem.platforms import default_registry, synthetic_registry
from repro.serve import cardinality_bucket, plan_fingerprint

_UNARY = ("Map", "Filter", "FlatMap", "ReduceBy", "Sort", "Distinct")


@st.composite
def pipeline_specs(draw, max_middle=5):
    """A random pipeline described as data (kinds, selectivities, card)."""
    kinds = draw(st.lists(st.sampled_from(_UNARY), min_size=1, max_size=max_middle))
    sels = draw(
        st.lists(
            st.floats(0.05, 2.0, allow_nan=False),
            min_size=len(kinds),
            max_size=len(kinds),
        )
    )
    cardinality = draw(st.floats(1e3, 1e8, allow_nan=False))
    return kinds, sels, cardinality


def _build(kinds, sels, cardinality, tuple_size=100.0, name="fp"):
    plan = LogicalPlan(name)
    ops = [
        plan.add(
            operator("TextFileSource"),
            dataset=DatasetProfile("d", cardinality, tuple_size),
        )
    ]
    for kind, sel in zip(kinds, sels):
        ops.append(plan.add(operator(kind, selectivity=sel)))
    ops.append(plan.add(operator("CollectionSink")))
    plan.chain(*ops)
    return plan


class TestEquality:
    @settings(max_examples=50, deadline=None)
    @given(pipeline_specs())
    def test_equal_plans_hash_equal(self, spec):
        kinds, sels, card = spec
        a = _build(kinds, sels, card)
        b = _build(kinds, sels, card, name="other-name")
        # The plan *name* is presentation, not structure.
        assert plan_fingerprint(a) == plan_fingerprint(b)

    @settings(max_examples=50, deadline=None)
    @given(pipeline_specs())
    def test_clone_hashes_equal(self, spec):
        kinds, sels, card = spec
        plan = _build(kinds, sels, card)
        assert plan_fingerprint(plan) == plan_fingerprint(plan.clone())

    @settings(max_examples=25, deadline=None)
    @given(pipeline_specs(), st.floats(1.0, 1.009))
    def test_same_bucket_cardinality_hashes_equal(self, spec, factor):
        """Parametric re-queries: the fingerprint tracks the cardinality
        *bucket* exactly — a small cardinality change keeps the hash iff
        it stays inside the bucket (it may legitimately cross right at a
        boundary, which must then change the hash)."""
        kinds, sels, card = spec
        a = _build(kinds, sels, card)
        b = _build(kinds, sels, card * factor)
        if cardinality_bucket(card) == cardinality_bucket(card * factor):
            assert plan_fingerprint(a) == plan_fingerprint(b)
        else:
            assert plan_fingerprint(a) != plan_fingerprint(b)


class TestDifference:
    @settings(max_examples=50, deadline=None)
    @given(pipeline_specs(), st.integers(0, 10**6))
    def test_operator_kind_perturbation_changes_hash(self, spec, pick):
        kinds, sels, card = spec
        index = pick % len(kinds)
        replacement = next(k for k in _UNARY if k != kinds[index])
        perturbed = list(kinds)
        perturbed[index] = replacement
        assert plan_fingerprint(_build(kinds, sels, card)) != plan_fingerprint(
            _build(perturbed, sels, card)
        )

    @settings(max_examples=50, deadline=None)
    @given(pipeline_specs())
    def test_topology_perturbation_changes_hash(self, spec):
        kinds, sels, card = spec
        base = _build(kinds, sels, card)
        longer = _build(kinds + ["Map"], sels + [1.0], card)
        assert plan_fingerprint(base) != plan_fingerprint(longer)

    @settings(max_examples=50, deadline=None)
    @given(pipeline_specs())
    def test_selectivity_change_changes_hash(self, spec):
        kinds, sels, card = spec
        perturbed = list(sels)
        perturbed[0] = sels[0] + 0.5
        assert plan_fingerprint(_build(kinds, sels, card)) != plan_fingerprint(
            _build(kinds, perturbed, card)
        )

    @settings(max_examples=50, deadline=None)
    @given(pipeline_specs())
    def test_platform_relabel_changes_hash(self, spec):
        """The same plan over a different platform alphabet has different
        optimization answers, so it must key differently."""
        kinds, sels, card = spec
        plan = _build(kinds, sels, card)
        two = synthetic_registry(2)
        three = synthetic_registry(3)
        named = default_registry(("java", "spark"))
        fps = {
            plan_fingerprint(plan, registry=reg) for reg in (two, three, named)
        }
        assert len(fps) == 3
        assert plan_fingerprint(plan) not in fps  # registry-free differs too

    @settings(max_examples=25, deadline=None)
    @given(pipeline_specs())
    def test_cross_bucket_cardinality_changes_hash(self, spec):
        kinds, sels, card = spec
        a = _build(kinds, sels, card)
        b = _build(kinds, sels, card * 8.0)  # three buckets away
        assert plan_fingerprint(a) != plan_fingerprint(b)

    def test_loop_iterations_change_hash(self):
        def looped(iterations):
            plan = LogicalPlan("loop")
            src = plan.add(
                operator("TextFileSource"),
                dataset=DatasetProfile("d", 1e5, 100.0),
            )
            body = plan.add(operator("Map"))
            sink = plan.add(operator("CollectionSink"))
            plan.chain(src, body, sink)
            plan.add_loop([body], iterations)
            return plan

        assert plan_fingerprint(looped(3)) != plan_fingerprint(looped(7))


class TestBuckets:
    def test_bucket_is_log_scale(self):
        assert cardinality_bucket(1024.0) == 10
        assert cardinality_bucket(1.0) == 0
        assert cardinality_bucket(1e6, base=10.0) == 6

    @given(st.floats(allow_nan=False, max_value=0.0))
    def test_non_positive_cardinality_buckets_to_minus_one(self, card):
        assert cardinality_bucket(card) == -1

    def test_nan_and_inf_bucket_to_minus_one(self):
        assert cardinality_bucket(float("nan")) == -1
        assert cardinality_bucket(float("inf")) == -1

    def test_bad_base_rejected(self):
        with pytest.raises(ValueError):
            cardinality_bucket(10.0, base=1.0)

    @given(st.floats(1e-3, 1e12, allow_nan=False))
    def test_nearby_cardinalities_share_or_neighbor_buckets(self, card):
        a = cardinality_bucket(card)
        b = cardinality_bucket(card * 1.01)
        assert b in (a, a + 1)
