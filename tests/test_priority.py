"""Tests for the priority metrics (§V-A)."""

import pytest

from repro.core.enumeration import EnumerationContext
from repro.core.operations import enumerate_singleton, split, vectorize
from repro.core.priority import make_priority, robopt_priority
from repro.exceptions import EnumerationError
from repro.rheem.platforms import synthetic_registry

from conftest import build_join_plan, build_pipeline


@pytest.fixture
def ctx():
    return EnumerationContext(build_pipeline(2), synthetic_registry(3))


def singleton_enums(ctx):
    return {next(iter(p.scope)): enumerate_singleton(p) for p in split(vectorize(ctx))}


class TestRoboptPriority:
    def test_definition_3(self, ctx):
        enums = singleton_enums(ctx)
        # op 1's child is op 2 in the pipeline.
        value = robopt_priority(enums[1], [enums[2]])
        assert value == enums[1].n_vectors * enums[2].n_vectors

    def test_no_children_priority_is_own_size(self, ctx):
        enums = singleton_enums(ctx)
        assert robopt_priority(enums[3], []) == enums[3].n_vectors

    def test_paper_example_3(self):
        """Join with 3 execution operators, ReduceBy with 2 -> priority 6."""
        plan = build_join_plan()
        reg = synthetic_registry(3)
        ctx = EnumerationContext(plan, reg)
        join_id = next(i for i, op in plan.operators.items() if op.kind_name == "Join")
        reduce_id = next(
            i for i, op in plan.operators.items() if op.kind_name == "ReduceBy"
        )
        enums = singleton_enums(ctx)
        # Mimic the paper's |V_join|=3, |V_reduce|=2 by trimming the child.
        import numpy as np

        trimmed = enums[reduce_id].select(np.array([0, 1]))
        assert robopt_priority(enums[join_id], [trimmed]) == 6


class TestDistancePriorities:
    def test_topdown_prefers_sink_side(self, ctx):
        priority = make_priority("topdown", ctx)
        enums = singleton_enums(ctx)
        sink = ctx.plan.sinks()[0]
        source = ctx.plan.sources()[0]
        assert priority(enums[sink], []) > priority(enums[source], [])

    def test_bottomup_prefers_source_side(self, ctx):
        priority = make_priority("bottomup", ctx)
        enums = singleton_enums(ctx)
        sink = ctx.plan.sinks()[0]
        source = ctx.plan.sources()[0]
        assert priority(enums[source], []) > priority(enums[sink], [])

    def test_distance_priority_uses_scope_max(self, ctx):
        priority = make_priority("bottomup", ctx)
        enums = singleton_enums(ctx)
        from repro.core.operations import merge_enumerations

        merged = merge_enumerations(enums[0], enums[1])
        assert priority(merged, []) == max(
            priority(enums[0], []), priority(enums[1], [])
        )

    def test_unknown_priority_rejected(self, ctx):
        with pytest.raises(EnumerationError):
            make_priority("sideways", ctx)

    def test_make_priority_robopt(self, ctx):
        assert make_priority("robopt", ctx) is robopt_priority
